//! Property test: the structured query engine agrees with a naive
//! in-memory reference implementation on randomized tables and queries.

use proptest::prelude::*;
use quarry::query::engine::{execute, AggFn, Predicate, Query};
use quarry::storage::{Column, DataType, Database, TableSchema, Value};

#[derive(Debug, Clone)]
struct TestRow {
    k: i64,
    cat: String,
    num: i64,
}

fn make_db(rows: &[TestRow]) -> Database {
    let db = Database::in_memory();
    db.create_table(
        TableSchema::new(
            "t",
            vec![
                Column::new("k", DataType::Int),
                Column::new("cat", DataType::Text),
                Column::new("num", DataType::Int),
            ],
            &["k"],
            &["num"],
        )
        .unwrap(),
    )
    .unwrap();
    let tx = db.begin();
    for r in rows {
        db.insert(tx, "t", vec![Value::Int(r.k), r.cat.as_str().into(), Value::Int(r.num)])
            .unwrap();
    }
    db.commit(tx).unwrap();
    db
}

fn row_strategy() -> impl Strategy<Value = Vec<TestRow>> {
    proptest::collection::vec((0i64..500, "[abc]", -50i64..50), 0..40).prop_map(|rows| {
        let mut seen = std::collections::HashSet::new();
        rows.into_iter()
            .filter(|(k, _, _)| seen.insert(*k))
            .map(|(k, cat, num)| TestRow { k, cat, num })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn filter_agrees_with_reference(rows in row_strategy(), threshold in -50i64..50) {
        let db = make_db(&rows);
        let q = Query::scan("t").filter(vec![Predicate::Ge("num".into(), Value::Int(threshold))]);
        let got = execute(&db, &q).unwrap();
        let expect: Vec<i64> = rows.iter().filter(|r| r.num >= threshold).map(|r| r.k).collect();
        let mut got_keys: Vec<i64> = got
            .rows
            .iter()
            .map(|r| r[0].as_f64().unwrap() as i64)
            .collect();
        let mut expect = expect;
        got_keys.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(got_keys, expect);
    }

    #[test]
    fn aggregates_agree_with_reference(rows in row_strategy()) {
        let db = make_db(&rows);
        // COUNT
        let q = Query::scan("t").aggregate(None, AggFn::Count, "num");
        let count = execute(&db, &q).unwrap().scalar().cloned().unwrap();
        prop_assert_eq!(count, Value::Int(rows.len() as i64));
        // SUM / AVG / MIN / MAX over non-empty tables.
        if !rows.is_empty() {
            let sum: i64 = rows.iter().map(|r| r.num).sum();
            let q = Query::scan("t").aggregate(None, AggFn::Sum, "num");
            prop_assert_eq!(
                execute(&db, &q).unwrap().scalar().cloned().unwrap(),
                Value::Float(sum as f64)
            );
            let q = Query::scan("t").aggregate(None, AggFn::Avg, "num");
            let avg = execute(&db, &q).unwrap().scalar().and_then(Value::as_f64).unwrap();
            prop_assert!((avg - sum as f64 / rows.len() as f64).abs() < 1e-9);
            let q = Query::scan("t").aggregate(None, AggFn::Min, "num");
            let min = rows.iter().map(|r| r.num).min().unwrap();
            prop_assert_eq!(execute(&db, &q).unwrap().scalar().cloned().unwrap(), Value::Int(min));
            let q = Query::scan("t").aggregate(None, AggFn::Max, "num");
            let max = rows.iter().map(|r| r.num).max().unwrap();
            prop_assert_eq!(execute(&db, &q).unwrap().scalar().cloned().unwrap(), Value::Int(max));
        }
    }

    #[test]
    fn group_by_agrees_with_reference(rows in row_strategy()) {
        let db = make_db(&rows);
        let q = Query::scan("t").aggregate(Some("cat"), AggFn::Count, "num");
        let got = execute(&db, &q).unwrap();
        let mut expect: std::collections::BTreeMap<String, i64> = Default::default();
        for r in &rows {
            *expect.entry(r.cat.clone()).or_insert(0) += 1;
        }
        prop_assert_eq!(got.rows.len(), expect.len());
        for row in &got.rows {
            let cat = row[0].to_string();
            prop_assert_eq!(row[1].clone(), Value::Int(expect[&cat]), "group {}", cat);
        }
    }

    #[test]
    fn sort_limit_agrees_with_reference(rows in row_strategy(), limit in 0usize..10) {
        let db = make_db(&rows);
        let q = Query::scan("t").sort("num", true, Some(limit)).project(&["num"]);
        let got: Vec<i64> = execute(&db, &q)
            .unwrap()
            .rows
            .iter()
            .map(|r| r[0].as_f64().unwrap() as i64)
            .collect();
        let mut expect: Vec<i64> = rows.iter().map(|r| r.num).collect();
        expect.sort_unstable_by(|a, b| b.cmp(a));
        expect.truncate(limit);
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn index_probe_agrees_with_scan_filter(rows in row_strategy(), needle in -50i64..50) {
        let db = make_db(&rows);
        let tx = db.begin();
        let via_index = db.index_lookup(tx, "t", "num", &Value::Int(needle)).unwrap();
        db.commit(tx).unwrap();
        let q = Query::scan("t").filter(vec![Predicate::Eq("num".into(), Value::Int(needle))]);
        let via_filter = execute(&db, &q).unwrap();
        let norm = |mut v: Vec<Vec<Value>>| {
            v.sort();
            v
        };
        prop_assert_eq!(norm(via_index), norm(via_filter.rows));
    }

    #[test]
    fn join_agrees_with_nested_loop_reference(rows in row_strategy()) {
        let db = make_db(&rows);
        let q = Query::scan("t").join(Query::scan("t"), "cat", "cat");
        let got = execute(&db, &q).unwrap();
        let expect_len: usize = {
            let mut by_cat: std::collections::HashMap<&str, usize> = Default::default();
            for r in &rows {
                *by_cat.entry(r.cat.as_str()).or_insert(0) += 1;
            }
            by_cat.values().map(|n| n * n).sum()
        };
        prop_assert_eq!(got.rows.len(), expect_len);
    }
}
