//! Differential tests for the physical query planner: for every supported
//! predicate shape, index-routed execution must return *bit-identical*
//! rows — including row order — to the forced-full-scan reference
//! configuration, and the façade's result cache must serve the same bytes
//! it first computed.

use quarry::core::{Quarry, QuarryConfig};
use quarry::query::engine::{AggFn, Predicate, Query};
use quarry::query::planner::{execute_with, PlannerConfig};
use quarry::storage::{Column, DataType, Database, TableSchema, Value};

/// A deterministic facts table with indexes on `cat` (12 distinct values)
/// and `score` (dense ints), plus an unindexed `note` column.
fn facts_db(rows: usize) -> Database {
    let db = Database::in_memory();
    db.create_table(
        TableSchema::new(
            "facts",
            vec![
                Column::new("id", DataType::Int),
                Column::new("cat", DataType::Text),
                Column::new("score", DataType::Int),
                Column::new("note", DataType::Text),
            ],
            &["id"],
            &[],
        )
        .unwrap(),
    )
    .unwrap();
    let tx = db.begin();
    for i in 0..rows as i64 {
        db.insert(
            tx,
            "facts",
            vec![
                Value::Int(i),
                Value::Text(format!("cat{}", (i * 7) % 12)),
                Value::Int((i * 13) % 97),
                Value::Text(format!("note {}", (i * 3) % 5)),
            ],
        )
        .unwrap();
    }
    db.commit(tx).unwrap();
    db.create_index("facts", "cat").unwrap();
    db.create_index("facts", "score").unwrap();
    db
}

/// Every supported predicate shape plus the operator combinations above
/// them: eq, range (inclusive and strict), conjunction, no-predicate,
/// projections, joins, aggregates, and sorts.
fn query_shapes() -> Vec<Query> {
    let eq = |c: &str, v: Value| Predicate::Eq(c.into(), v);
    vec![
        // No predicate.
        Query::scan("facts"),
        // Equality on an indexed column.
        Query::scan("facts").filter(vec![eq("cat", "cat3".into())]),
        // Equality on an unindexed column.
        Query::scan("facts").filter(vec![eq("note", "note 2".into())]),
        // Inclusive range.
        Query::scan("facts").filter(vec![
            Predicate::Ge("score".into(), Value::Int(20)),
            Predicate::Le("score".into(), Value::Int(40)),
        ]),
        // Strict range (boundary rows must be residual-filtered out).
        Query::scan("facts").filter(vec![
            Predicate::Gt("score".into(), Value::Int(20)),
            Predicate::Lt("score".into(), Value::Int(40)),
        ]),
        // Half-open ranges.
        Query::scan("facts").filter(vec![Predicate::Ge("score".into(), Value::Int(90))]),
        Query::scan("facts").filter(vec![Predicate::Lt("score".into(), Value::Int(5))]),
        // Conjunction mixing indexed eq, indexed range, and unindexable.
        Query::scan("facts").filter(vec![
            eq("cat", "cat5".into()),
            Predicate::Ge("score".into(), Value::Int(10)),
            Predicate::Contains("note".into(), "note".into()),
        ]),
        // Empty-result equality.
        Query::scan("facts").filter(vec![eq("cat", "catX".into())]),
        // Inverted (empty) range window.
        Query::scan("facts").filter(vec![
            Predicate::Ge("score".into(), Value::Int(50)),
            Predicate::Le("score".into(), Value::Int(10)),
        ]),
        // Ne / In stay unrouted but must agree too.
        Query::scan("facts").filter(vec![Predicate::Ne("cat".into(), "cat1".into())]),
        Query::scan("facts")
            .filter(vec![Predicate::In("cat".into(), vec!["cat1".into(), "cat9".into()])]),
        // Projection above predicates (pushdown target).
        Query::scan("facts").filter(vec![eq("cat", "cat2".into())]).project(&["id", "score"]),
        // Filter above projection (must NOT be pushed into the access).
        Query::scan("facts")
            .project(&["id", "score"])
            .filter(vec![Predicate::Ge("score".into(), Value::Int(30))]),
        // Join with asymmetric input sizes (build-side selection).
        Query::scan("facts").filter(vec![eq("cat", "cat4".into())]).join(
            Query::scan("facts"),
            "cat",
            "cat",
        ),
        Query::scan("facts").join(
            Query::scan("facts").filter(vec![eq("cat", "cat4".into())]),
            "cat",
            "cat",
        ),
        // Aggregates and sorts above index-routed accesses.
        Query::scan("facts").filter(vec![eq("cat", "cat6".into())]).aggregate(
            Some("note"),
            AggFn::Count,
            "id",
        ),
        Query::scan("facts").filter(vec![Predicate::Ge("score".into(), Value::Int(80))]).sort(
            "id",
            true,
            Some(7),
        ),
    ]
}

#[test]
fn index_routed_execution_is_bit_identical_to_full_scan() {
    let db = facts_db(400);
    let reference = PlannerConfig::full_scan();
    // Each toggle alone, and everything on: all must match the reference.
    let configs = [
        PlannerConfig::default(),
        PlannerConfig { use_index: true, ..PlannerConfig::full_scan() },
        PlannerConfig { pushdown: true, ..PlannerConfig::full_scan() },
        PlannerConfig { join_side_selection: true, ..PlannerConfig::full_scan() },
    ];
    for (qi, q) in query_shapes().iter().enumerate() {
        let (expect, _) = execute_with(&db, q, &reference).unwrap();
        for cfg in &configs {
            let (got, _) = execute_with(&db, q, cfg).unwrap();
            assert_eq!(got.columns, expect.columns, "columns diverged: query {qi} cfg {cfg:?}");
            assert_eq!(
                got.rows,
                expect.rows,
                "rows (or row order) diverged: query {qi} ({}) cfg {cfg:?}",
                q.display()
            );
        }
    }
}

#[test]
fn planner_errors_match_reference_errors() {
    let db = facts_db(50);
    let bad = [
        Query::scan("ghost"),
        Query::scan("facts").filter(vec![Predicate::Eq("ghost".into(), Value::Null)]),
        Query::scan("facts").project(&["ghost"]),
        Query::scan("facts")
            .project(&["id"])
            .filter(vec![Predicate::Eq("cat".into(), "cat1".into())]),
        Query::scan("facts").aggregate(None, AggFn::Avg, "note"),
        Query::scan("facts").sort("ghost", false, None),
    ];
    for q in &bad {
        let planned = execute_with(&db, q, &PlannerConfig::default());
        let reference = execute_with(&db, q, &PlannerConfig::full_scan());
        let (Err(p), Err(r)) = (planned, reference) else {
            panic!("both configs must fail: {}", q.display());
        };
        assert_eq!(
            std::mem::discriminant(&p),
            std::mem::discriminant(&r),
            "error kind diverged for {}: {p:?} vs {r:?}",
            q.display()
        );
    }
}

#[test]
fn cached_results_are_bit_identical_to_fresh_execution() {
    let q = Quarry::new(QuarryConfig::default()).unwrap();
    q.db.create_table(
        TableSchema::new(
            "facts",
            vec![Column::new("id", DataType::Int), Column::new("cat", DataType::Text)],
            &["id"],
            &[],
        )
        .unwrap(),
    )
    .unwrap();
    for i in 0..60i64 {
        q.db.insert_autocommit("facts", vec![Value::Int(i), format!("cat{}", i % 6).into()])
            .unwrap();
    }
    q.create_index("facts", "cat").unwrap();

    let query = Query::scan("facts").filter(vec![Predicate::Eq("cat".into(), "cat2".into())]);
    let fresh = q.snapshot().query(&query).unwrap();
    let cached = q.snapshot().query(&query).unwrap();
    assert_eq!(cached, fresh, "cache hit must serve identical bytes");
    assert_eq!(q.query_cache_stats().hits, 1);

    // A write invalidates; a post-write snapshot pins the new table
    // versions, so its re-executed result reflects the write and becomes
    // the cached one.
    q.db.insert_autocommit("facts", vec![Value::Int(1000), "cat2".into()]).unwrap();
    let after_write = q.snapshot().query(&query).unwrap();
    assert_eq!(after_write.rows.len(), fresh.rows.len() + 1);
    let again = q.snapshot().query(&query).unwrap();
    assert_eq!(again, after_write);
    assert_eq!(q.query_cache_stats().hits, 2);
}
