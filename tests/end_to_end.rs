//! Cross-crate integration: the full DGE cycle through the façade.

use quarry::core::{Quarry, QuarryConfig};
use quarry::corpus::{Corpus, CorpusConfig, NoiseConfig};
use quarry::hi::oracle::panel;
use quarry::hi::Crowd;
use quarry::query::engine::{AggFn, Predicate, Query};
use quarry::storage::Value;
use std::collections::HashMap;
use std::sync::Arc;

const PIPELINE: &str = r#"
PIPELINE city_facts
FROM corpus
EXTRACT infobox, rules
WHERE attribute IN ("name", "state", "population", "founded", "july_temp")
RESOLVE BY name
STORE INTO cities KEY name
"#;

fn boot(seed: u64) -> (Quarry, Corpus) {
    let corpus = Corpus::generate(&CorpusConfig {
        seed,
        noise: NoiseConfig::none(),
        ..CorpusConfig::default()
    });
    let mut q = Quarry::new(QuarryConfig::builder().build()).unwrap();
    q.ingest(corpus.docs.clone());
    (q, corpus)
}

#[test]
fn generation_then_exploitation_answers_ground_truth() {
    let (mut q, corpus) = boot(1);
    let stats = q.run_pipeline(PIPELINE).unwrap();
    assert!(stats.rows_stored >= corpus.truth.cities.len());

    // Every city's stored population matches ground truth (zero noise).
    // One read session covers the whole exploitation phase.
    let snap = q.snapshot();
    let mut correct = 0;
    for city in &corpus.truth.cities {
        let query = Query::scan("cities")
            .filter(vec![Predicate::Eq("name".into(), city.name.as_str().into())])
            .project(&["population"]);
        let r = snap.query(&query).unwrap();
        if r.rows.first().map(|row| row[0].clone()) == Some(Value::Int(city.population as i64)) {
            correct += 1;
        }
    }
    assert!(
        correct * 10 >= corpus.truth.cities.len() * 9,
        "{correct}/{} cities answered exactly",
        corpus.truth.cities.len()
    );

    // Aggregate over the derived structure matches an aggregate over truth.
    let query = Query::scan("cities").aggregate(None, AggFn::Max, "july_temp");
    let system_max = snap.query(&query).unwrap().scalar().cloned().unwrap();
    let true_max = corpus.truth.cities.iter().map(|c| c.monthly_temp_f[6]).max().unwrap();
    assert_eq!(system_max, Value::Int(true_max as i64));
}

#[test]
fn keyword_mode_cannot_answer_but_structured_mode_can() {
    let (mut q, corpus) = boot(2);
    q.run_pipeline(PIPELINE).unwrap();
    let city = &corpus.truth.cities[1];

    // Keyword search: pages, not answers. The top hit is (hopefully) the
    // right page, but the user still has to read it.
    let snap = q.snapshot();
    let (hits, candidates) = snap.keyword(&format!("average july_temp {}", city.name), 5);
    assert!(!hits.is_empty());

    // The suggested structured query actually computes the number.
    let top = candidates.first().expect("a candidate");
    let r = snap.query(&top.query).unwrap();
    let vals: Vec<&Value> = r.rows.iter().flatten().collect();
    assert!(
        vals.iter().any(|v| **v == Value::Int(city.monthly_temp_f[6] as i64)
            || v.as_f64() == Some(city.monthly_temp_f[6] as f64)),
        "expected {} in {vals:?}",
        city.monthly_temp_f[6]
    );
}

#[test]
fn hi_wired_through_the_facade() {
    let corpus = Corpus::generate(&CorpusConfig {
        seed: 3,
        n_people: 60,
        duplicate_rate: 0.6,
        noise: NoiseConfig { name_variant: 1.0, ..NoiseConfig::none() },
        ..CorpusConfig::default()
    });
    let person_entity: HashMap<_, _> =
        corpus.truth.people.iter().map(|p| (p.doc, p.entity)).collect();
    let mut q = Quarry::new(QuarryConfig::builder().build()).unwrap();
    q.ingest(corpus.docs.clone());
    q.set_hi(
        Crowd::new(panel(5, &[0.05], 7)),
        Arc::new(move |a, b| {
            person_entity.get(&a) == person_entity.get(&b) && person_entity.contains_key(&a)
        }),
    );
    let stats = q
        .run_pipeline(
            r#"PIPELINE people FROM corpus
EXTRACT infobox
WHERE attribute IN ("name", "birth_year", "employer", "residence")
RESOLVE BY name
CURATE BUDGET 300 VOTES 3
STORE INTO people KEY name"#,
        )
        .unwrap();
    assert!(stats.entities < stats.records, "duplicates merged");
    // Curation only runs when there is an uncertain band.
    if stats.uncertain_pairs > 0 {
        assert!(stats.questions_asked > 0);
        assert!(stats.hi_spent > 0);
    }
}

#[test]
fn lineage_and_audit_complete_the_loop() {
    let (mut q, _) = boot(4);
    q.run_pipeline(PIPELINE).unwrap();
    // Provenance: every row gets a lineage node; most trace to raw spans.
    let nodes = q.record_lineage("cities").unwrap();
    let traced = nodes.iter().filter(|(_, n)| !q.lineage.source_spans(*n).is_empty()).count();
    assert!(traced * 2 >= nodes.len(), "{traced}/{} rows traced", nodes.len());
    // Debugger: clean table → few or no flags.
    let flags = q.audit_table("cities").unwrap();
    assert!(flags.len() <= nodes.len() / 5, "{} flags on clean data", flags.len());
    // Health: all green after activity.
    assert!(q.health_check().iter().all(|(_, s)| *s == quarry::debugger::HealthStatus::Healthy));
}

#[test]
fn dge_log_tells_the_story() {
    let (mut q, corpus) = boot(5);
    q.run_pipeline(PIPELINE).unwrap();
    let snap = q.snapshot();
    snap.keyword("population", 3);
    snap.query(&Query::scan("cities")).unwrap();
    let events = q.dge.events();
    assert!(events.len() >= 4);
    let rendered: Vec<String> = events.iter().map(|e| e.to_string()).collect();
    assert!(rendered[0].contains(&format!("{} docs", corpus.docs.len())));
    assert!(rendered.iter().any(|s| s.contains("pipeline city_facts")));
    assert!(rendered.iter().any(|s| s.contains("keyword")));
}
