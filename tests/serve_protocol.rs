//! Protocol robustness: a hostile or broken peer must get a clean error
//! and must never take the server down.
//!
//! Each case feeds the server raw bytes that violate the framing rules —
//! garbage before the magic, a wrong version, an oversized length prefix,
//! a bad checksum, a truncated frame, a half-written frame that stalls —
//! and asserts (a) the peer receives a best-effort `Protocol` error
//! response where one can be delivered, (b) the offending connection is
//! closed (framing errors) or survives (payload-only errors), and (c) the
//! server keeps serving fresh connections afterwards.

use quarry::core::{Quarry, QuarryConfig};
use quarry::serve::protocol::{
    read_response, write_frame, write_request, DEFAULT_MAX_FRAME, MAGIC, VERSION,
};
use quarry::serve::{Client, ErrorKind, Payload, Request, ServeConfig, Server};
use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::Duration;

fn start_server(cfg: ServeConfig) -> Server {
    let q = Quarry::new(QuarryConfig::default()).unwrap();
    Server::start(q, "127.0.0.1:0", cfg).unwrap()
}

fn raw(addr: SocketAddr) -> TcpStream {
    let s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.set_nodelay(true).unwrap();
    s
}

/// Read the best-effort error reply a session sends before dropping a
/// connection it cannot resynchronise, and return its message.
fn expect_protocol_error(stream: &mut TcpStream, expect_id: u64) -> String {
    let resp = read_response(stream, DEFAULT_MAX_FRAME).unwrap();
    assert_eq!(resp.id, expect_id);
    match resp.payload {
        Payload::Error { kind: ErrorKind::Protocol, message } => message,
        other => panic!("expected a Protocol error, got {other:?}"),
    }
}

/// A fresh connection still serves: the previous abuse did not kill the
/// server (or wedge its worker).
fn assert_alive(addr: SocketAddr) {
    let mut c = Client::connect(addr).unwrap();
    c.ping().unwrap();
}

#[test]
fn garbage_before_magic_gets_a_clean_error() {
    let server = start_server(ServeConfig::default());
    let addr = server.local_addr();
    let mut s = raw(addr);
    s.write_all(b"GET /cities HTTP/1.1\r\nHost: quarry\r\n\r\n").unwrap();
    let msg = expect_protocol_error(&mut s, 0);
    assert!(msg.contains("bad frame magic"), "got: {msg}");
    // The session cannot resync, so the connection is closed…
    assert!(read_response(&mut s, DEFAULT_MAX_FRAME).is_err());
    // …but the server is fine.
    assert_alive(addr);
}

#[test]
fn wrong_version_is_rejected() {
    let server = start_server(ServeConfig::default());
    let addr = server.local_addr();
    let mut s = raw(addr);
    let mut frame = Vec::new();
    frame.extend_from_slice(&MAGIC);
    frame.extend_from_slice(&99u16.to_le_bytes());
    frame.extend_from_slice(&[0u8; 16]); // id + len + crc, all zero
    s.write_all(&frame).unwrap();
    let msg = expect_protocol_error(&mut s, 0);
    assert!(msg.contains("unsupported protocol version 99"), "got: {msg}");
    assert_alive(addr);
}

#[test]
fn oversized_length_prefix_is_rejected_not_allocated() {
    let server = start_server(ServeConfig::default());
    let addr = server.local_addr();
    let mut s = raw(addr);
    let mut frame = Vec::new();
    frame.extend_from_slice(&MAGIC);
    frame.extend_from_slice(&VERSION.to_le_bytes());
    frame.extend_from_slice(&7u64.to_le_bytes());
    frame.extend_from_slice(&u32::MAX.to_le_bytes()); // claims a 4 GiB payload
    frame.extend_from_slice(&0u32.to_le_bytes());
    s.write_all(&frame).unwrap();
    let msg = expect_protocol_error(&mut s, 0);
    assert!(msg.contains("exceeds limit"), "got: {msg}");
    assert_alive(addr);
}

#[test]
fn bad_crc_is_a_torn_frame() {
    let server = start_server(ServeConfig::default());
    let addr = server.local_addr();
    let mut s = raw(addr);
    let mut frame = Vec::new();
    write_request(&mut frame, 3, &Request::Ping).unwrap();
    let last = frame.len() - 1;
    frame[last] ^= 0xFF; // tear the payload; the header's crc no longer matches
    s.write_all(&frame).unwrap();
    let msg = expect_protocol_error(&mut s, 0);
    assert!(msg.contains("checksum mismatch"), "got: {msg}");
    assert_alive(addr);
}

#[test]
fn truncated_frame_is_reported_not_hung() {
    let server = start_server(ServeConfig::default());
    let addr = server.local_addr();
    let mut s = raw(addr);
    let mut frame = Vec::new();
    write_request(&mut frame, 4, &Request::Ping).unwrap();
    s.write_all(&frame[..frame.len() - 3]).unwrap();
    s.shutdown(Shutdown::Write).unwrap(); // EOF mid-payload
    let msg = expect_protocol_error(&mut s, 0);
    assert!(msg.contains("mid-frame"), "got: {msg}");
    assert_alive(addr);
}

#[test]
fn half_written_frame_that_stalls_is_timed_out() {
    // Short read timeout so the session's stall budget (a fixed retry
    // count) elapses quickly.
    let server = start_server(ServeConfig {
        read_timeout: Duration::from_millis(1),
        ..ServeConfig::default()
    });
    let addr = server.local_addr();
    let mut s = raw(addr);
    let mut frame = Vec::new();
    write_request(&mut frame, 5, &Request::Ping).unwrap();
    // Send half the frame and then go silent, keeping the socket open.
    s.write_all(&frame[..frame.len() - 3]).unwrap();
    let msg = expect_protocol_error(&mut s, 0);
    assert!(msg.contains("stalled"), "got: {msg}");
    assert_alive(addr);
}

#[test]
fn future_version_frame_with_valid_crc_gets_a_clean_id_zero_error() {
    // A peer from a *newer* release speaks version VERSION+1 with an
    // otherwise perfectly well-formed frame (real length, real checksum,
    // decodable payload). The server must not guess at forward
    // compatibility: it answers a clean id-0 Protocol error naming the
    // version and closes, leaving the listener healthy.
    let server = start_server(ServeConfig::default());
    let addr = server.local_addr();
    let mut s = raw(addr);

    let mut frame = Vec::new();
    write_request(&mut frame, 9, &Request::Ping).unwrap();
    let future = VERSION + 1;
    frame[4..6].copy_from_slice(&future.to_le_bytes());
    s.write_all(&frame).unwrap();

    let msg = expect_protocol_error(&mut s, 0);
    assert!(msg.contains(&format!("unsupported protocol version {future}")), "got: {msg}");
    // The session cannot trust anything after an unknown version…
    assert!(read_response(&mut s, DEFAULT_MAX_FRAME).is_err());
    // …and current-version peers are unaffected.
    assert_alive(addr);
}

/// A scripted stand-in server: accepts connections, counts every request
/// frame it reads, and replies from a fixed list of payloads (one per
/// request, repeating the last). Lets the retry tests observe exactly
/// how many times a client re-sent something.
struct ScriptedServer {
    addr: SocketAddr,
    requests: std::sync::Arc<std::sync::atomic::AtomicU64>,
    stop: std::sync::Arc<std::sync::atomic::AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

enum ScriptStep {
    Reply(Payload),
    /// Read the request, then drop the connection without replying.
    Hangup,
}

impl ScriptedServer {
    fn start(script: Vec<ScriptStep>) -> ScriptedServer {
        use quarry::serve::protocol::{read_frame, write_response};
        use quarry::serve::Response;
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let requests = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let seen = std::sync::Arc::clone(&requests);
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stopped = std::sync::Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let mut steps = script.into_iter().peekable();
            'conns: for conn in listener.incoming() {
                if stopped.load(std::sync::atomic::Ordering::SeqCst) {
                    return;
                }
                let Ok(mut stream) = conn else { return };
                loop {
                    // Script exhausted: stop *before* blocking on a read
                    // that no step will ever answer.
                    if steps.peek().is_none() {
                        return;
                    }
                    let Ok((id, _)) = read_frame(&mut stream, DEFAULT_MAX_FRAME) else {
                        continue 'conns;
                    };
                    seen.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                    match steps.next() {
                        None | Some(ScriptStep::Hangup) => continue 'conns,
                        Some(ScriptStep::Reply(payload)) => {
                            let resp = Response { id, server_micros: 0, lsn: 0, payload };
                            if write_response(&mut stream, &resp).is_err() {
                                continue 'conns;
                            }
                        }
                    }
                }
            }
        });
        ScriptedServer { addr, requests, stop, handle: Some(handle) }
    }

    fn requests(&self) -> u64 {
        self.requests.load(std::sync::atomic::Ordering::SeqCst)
    }
}

impl Drop for ScriptedServer {
    fn drop(&mut self) {
        // Unblock the accept loop if it is still waiting.
        self.stop.store(true, std::sync::atomic::Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[test]
fn overloaded_and_shutting_down_are_never_retried() {
    use quarry::serve::{ClientConfig, ClientError};
    type Check = fn(&ClientError) -> bool;
    // Even with a generous retry budget, server *rejections* must pass
    // through untouched — retrying them would turn backpressure into
    // more pressure, and a draining server into a hammered one.
    let cases: [(Payload, Check); 2] = [
        (Payload::Overloaded, |e| matches!(e, ClientError::Overloaded)),
        (Payload::ShuttingDown, |e| matches!(e, ClientError::ShuttingDown)),
    ];
    for (step, check) in cases {
        let fake = ScriptedServer::start(vec![ScriptStep::Reply(step)]);
        let mut c = Client::connect_with_config(
            fake.addr,
            ClientConfig {
                read_timeout: Duration::from_secs(5),
                reconnect_attempts: 5,
                backoff: Duration::from_millis(1),
            },
        )
        .unwrap();
        let err = c.ping().unwrap_err();
        assert!(check(&err), "rejection surfaced as the wrong error: {err:?}");
        assert_eq!(fake.requests(), 1, "a server rejection was re-sent");
    }
}

#[test]
fn dead_connections_are_retried_up_to_the_configured_bound() {
    use quarry::serve::ClientConfig;
    // Two hangups then an answer: a client allowed 2 reconnects succeeds
    // and the server saw exactly three sends.
    let fake = ScriptedServer::start(vec![
        ScriptStep::Hangup,
        ScriptStep::Hangup,
        ScriptStep::Reply(Payload::Pong),
    ]);
    let mut c = Client::connect_with_config(
        fake.addr,
        ClientConfig {
            read_timeout: Duration::from_secs(5),
            reconnect_attempts: 2,
            backoff: Duration::from_millis(1),
        },
    )
    .unwrap();
    c.ping().unwrap();
    assert_eq!(fake.requests(), 3);

    // Same script, zero reconnects allowed: the first hangup is final.
    let fake = ScriptedServer::start(vec![ScriptStep::Hangup, ScriptStep::Reply(Payload::Pong)]);
    let mut c = Client::connect_with_config(
        fake.addr,
        ClientConfig {
            read_timeout: Duration::from_secs(5),
            reconnect_attempts: 0,
            backoff: Duration::ZERO,
        },
    )
    .unwrap();
    assert!(c.ping().is_err());
    assert_eq!(fake.requests(), 1);
}

#[test]
fn undecodable_payload_fails_the_request_but_keeps_the_connection() {
    let server = start_server(ServeConfig::default());
    let addr = server.local_addr();
    let mut s = raw(addr);
    // Framing is valid (real crc), only the JSON inside is garbage: the
    // stream is still in sync, so the error carries the real request id
    // and the connection keeps serving.
    write_frame(&mut s, 11, b"{\"NoSuchRequest\":true}").unwrap();
    let msg = expect_protocol_error(&mut s, 11);
    assert!(msg.contains("undecodable request"), "got: {msg}");
    write_request(&mut s, 12, &Request::Ping).unwrap();
    let resp = read_response(&mut s, DEFAULT_MAX_FRAME).unwrap();
    assert_eq!(resp.id, 12);
    assert_eq!(resp.payload, Payload::Pong);
}

#[test]
fn malformed_frame_suite_leaves_the_server_healthy() {
    let server = start_server(ServeConfig::default());
    let addr = server.local_addr();

    // Every frame-level abuse in sequence, each on a fresh connection.
    let abuses: Vec<Vec<u8>> = vec![
        b"\x00\x00\x00\x00\x00\x00\x00\x00garbage-garbage-garbage".to_vec(),
        {
            let mut f = Vec::new();
            f.extend_from_slice(&MAGIC);
            f.extend_from_slice(&2u16.to_le_bytes()); // future version
            f.extend_from_slice(&[0u8; 16]);
            f
        },
        {
            let mut f = Vec::new();
            f.extend_from_slice(&MAGIC);
            f.extend_from_slice(&VERSION.to_le_bytes());
            f.extend_from_slice(&1u64.to_le_bytes());
            f.extend_from_slice(&(u32::MAX / 2).to_le_bytes());
            f.extend_from_slice(&0u32.to_le_bytes());
            f
        },
        {
            let mut f = Vec::new();
            write_request(&mut f, 6, &Request::Checkpoint).unwrap();
            f[21] ^= 0x5A; // corrupt the stored crc itself
            f
        },
    ];
    let n_abuses = abuses.len() as u64;
    for bytes in abuses {
        let mut s = raw(addr);
        s.write_all(&bytes).unwrap();
        let _ = expect_protocol_error(&mut s, 0);
        assert_alive(addr);
    }

    // The counter saw every abuse, real requests still flow, and join
    // hands the façade back intact — no worker died along the way.
    let metrics = server.metrics().snapshot();
    assert_eq!(metrics.counter("server.protocol_errors"), n_abuses);
    let mut c = Client::connect(addr).unwrap();
    c.ping().unwrap();
    c.shutdown().unwrap();
    let quarry = server.join();
    drop(quarry);
}
