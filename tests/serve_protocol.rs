//! Protocol robustness: a hostile or broken peer must get a clean error
//! and must never take the server down.
//!
//! Each case feeds the server raw bytes that violate the framing rules —
//! garbage before the magic, a wrong version, an oversized length prefix,
//! a bad checksum, a truncated frame, a half-written frame that stalls —
//! and asserts (a) the peer receives a best-effort `Protocol` error
//! response where one can be delivered, (b) the offending connection is
//! closed (framing errors) or survives (payload-only errors), and (c) the
//! server keeps serving fresh connections afterwards.

use quarry::core::{Quarry, QuarryConfig};
use quarry::serve::protocol::{
    read_response, write_frame, write_request, DEFAULT_MAX_FRAME, MAGIC, VERSION,
};
use quarry::serve::{Client, ErrorKind, Payload, Request, ServeConfig, Server};
use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::Duration;

fn start_server(cfg: ServeConfig) -> Server {
    let q = Quarry::new(QuarryConfig::default()).unwrap();
    Server::start(q, "127.0.0.1:0", cfg).unwrap()
}

fn raw(addr: SocketAddr) -> TcpStream {
    let s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.set_nodelay(true).unwrap();
    s
}

/// Read the best-effort error reply a session sends before dropping a
/// connection it cannot resynchronise, and return its message.
fn expect_protocol_error(stream: &mut TcpStream, expect_id: u64) -> String {
    let resp = read_response(stream, DEFAULT_MAX_FRAME).unwrap();
    assert_eq!(resp.id, expect_id);
    match resp.payload {
        Payload::Error { kind: ErrorKind::Protocol, message } => message,
        other => panic!("expected a Protocol error, got {other:?}"),
    }
}

/// A fresh connection still serves: the previous abuse did not kill the
/// server (or wedge its worker).
fn assert_alive(addr: SocketAddr) {
    let mut c = Client::connect(addr).unwrap();
    c.ping().unwrap();
}

#[test]
fn garbage_before_magic_gets_a_clean_error() {
    let server = start_server(ServeConfig::default());
    let addr = server.local_addr();
    let mut s = raw(addr);
    s.write_all(b"GET /cities HTTP/1.1\r\nHost: quarry\r\n\r\n").unwrap();
    let msg = expect_protocol_error(&mut s, 0);
    assert!(msg.contains("bad frame magic"), "got: {msg}");
    // The session cannot resync, so the connection is closed…
    assert!(read_response(&mut s, DEFAULT_MAX_FRAME).is_err());
    // …but the server is fine.
    assert_alive(addr);
}

#[test]
fn wrong_version_is_rejected() {
    let server = start_server(ServeConfig::default());
    let addr = server.local_addr();
    let mut s = raw(addr);
    let mut frame = Vec::new();
    frame.extend_from_slice(&MAGIC);
    frame.extend_from_slice(&99u16.to_le_bytes());
    frame.extend_from_slice(&[0u8; 16]); // id + len + crc, all zero
    s.write_all(&frame).unwrap();
    let msg = expect_protocol_error(&mut s, 0);
    assert!(msg.contains("unsupported protocol version 99"), "got: {msg}");
    assert_alive(addr);
}

#[test]
fn oversized_length_prefix_is_rejected_not_allocated() {
    let server = start_server(ServeConfig::default());
    let addr = server.local_addr();
    let mut s = raw(addr);
    let mut frame = Vec::new();
    frame.extend_from_slice(&MAGIC);
    frame.extend_from_slice(&VERSION.to_le_bytes());
    frame.extend_from_slice(&7u64.to_le_bytes());
    frame.extend_from_slice(&u32::MAX.to_le_bytes()); // claims a 4 GiB payload
    frame.extend_from_slice(&0u32.to_le_bytes());
    s.write_all(&frame).unwrap();
    let msg = expect_protocol_error(&mut s, 0);
    assert!(msg.contains("exceeds limit"), "got: {msg}");
    assert_alive(addr);
}

#[test]
fn bad_crc_is_a_torn_frame() {
    let server = start_server(ServeConfig::default());
    let addr = server.local_addr();
    let mut s = raw(addr);
    let mut frame = Vec::new();
    write_request(&mut frame, 3, &Request::Ping).unwrap();
    let last = frame.len() - 1;
    frame[last] ^= 0xFF; // tear the payload; the header's crc no longer matches
    s.write_all(&frame).unwrap();
    let msg = expect_protocol_error(&mut s, 0);
    assert!(msg.contains("checksum mismatch"), "got: {msg}");
    assert_alive(addr);
}

#[test]
fn truncated_frame_is_reported_not_hung() {
    let server = start_server(ServeConfig::default());
    let addr = server.local_addr();
    let mut s = raw(addr);
    let mut frame = Vec::new();
    write_request(&mut frame, 4, &Request::Ping).unwrap();
    s.write_all(&frame[..frame.len() - 3]).unwrap();
    s.shutdown(Shutdown::Write).unwrap(); // EOF mid-payload
    let msg = expect_protocol_error(&mut s, 0);
    assert!(msg.contains("mid-frame"), "got: {msg}");
    assert_alive(addr);
}

#[test]
fn half_written_frame_that_stalls_is_timed_out() {
    // Short read timeout so the session's stall budget (a fixed retry
    // count) elapses quickly.
    let server = start_server(ServeConfig {
        read_timeout: Duration::from_millis(1),
        ..ServeConfig::default()
    });
    let addr = server.local_addr();
    let mut s = raw(addr);
    let mut frame = Vec::new();
    write_request(&mut frame, 5, &Request::Ping).unwrap();
    // Send half the frame and then go silent, keeping the socket open.
    s.write_all(&frame[..frame.len() - 3]).unwrap();
    let msg = expect_protocol_error(&mut s, 0);
    assert!(msg.contains("stalled"), "got: {msg}");
    assert_alive(addr);
}

#[test]
fn undecodable_payload_fails_the_request_but_keeps_the_connection() {
    let server = start_server(ServeConfig::default());
    let addr = server.local_addr();
    let mut s = raw(addr);
    // Framing is valid (real crc), only the JSON inside is garbage: the
    // stream is still in sync, so the error carries the real request id
    // and the connection keeps serving.
    write_frame(&mut s, 11, b"{\"NoSuchRequest\":true}").unwrap();
    let msg = expect_protocol_error(&mut s, 11);
    assert!(msg.contains("undecodable request"), "got: {msg}");
    write_request(&mut s, 12, &Request::Ping).unwrap();
    let resp = read_response(&mut s, DEFAULT_MAX_FRAME).unwrap();
    assert_eq!(resp.id, 12);
    assert_eq!(resp.payload, Payload::Pong);
}

#[test]
fn malformed_frame_suite_leaves_the_server_healthy() {
    let server = start_server(ServeConfig::default());
    let addr = server.local_addr();

    // Every frame-level abuse in sequence, each on a fresh connection.
    let abuses: Vec<Vec<u8>> = vec![
        b"\x00\x00\x00\x00\x00\x00\x00\x00garbage-garbage-garbage".to_vec(),
        {
            let mut f = Vec::new();
            f.extend_from_slice(&MAGIC);
            f.extend_from_slice(&2u16.to_le_bytes()); // future version
            f.extend_from_slice(&[0u8; 16]);
            f
        },
        {
            let mut f = Vec::new();
            f.extend_from_slice(&MAGIC);
            f.extend_from_slice(&VERSION.to_le_bytes());
            f.extend_from_slice(&1u64.to_le_bytes());
            f.extend_from_slice(&(u32::MAX / 2).to_le_bytes());
            f.extend_from_slice(&0u32.to_le_bytes());
            f
        },
        {
            let mut f = Vec::new();
            write_request(&mut f, 6, &Request::Checkpoint).unwrap();
            f[21] ^= 0x5A; // corrupt the stored crc itself
            f
        },
    ];
    let n_abuses = abuses.len() as u64;
    for bytes in abuses {
        let mut s = raw(addr);
        s.write_all(&bytes).unwrap();
        let _ = expect_protocol_error(&mut s, 0);
        assert_alive(addr);
    }

    // The counter saw every abuse, real requests still flow, and join
    // hands the façade back intact — no worker died along the way.
    let metrics = server.metrics().snapshot();
    assert_eq!(metrics.counter("server.protocol_errors"), n_abuses);
    let mut c = Client::connect(addr).unwrap();
    c.ping().unwrap();
    c.shutdown().unwrap();
    let quarry = server.join();
    drop(quarry);
}
