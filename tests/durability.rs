//! Durability integration: crawl snapshots, WAL-backed structure, crash
//! recovery, and schema evolution over the recovered store.

use quarry::corpus::{Corpus, CorpusConfig, CrawlConfig, CrawlSimulator};
use quarry::schema::{EvolutionOp, SchemaRegistry, VersionId};
use quarry::storage::{Column, DataType, Database, SnapshotStore, TableSchema, Value};
use std::path::PathBuf;

fn tmpwal(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("quarry-int-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let p = dir.join(format!("{name}-{}.wal", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

#[test]
fn thirty_day_crawl_compresses_and_reconstructs() {
    let corpus = Corpus::generate(&CorpusConfig::tiny(8));
    let snaps = CrawlSimulator::new(
        &corpus,
        CrawlConfig { seed: 2, days: 30, churn: 0.03, new_page_rate: 0.2 },
    )
    .run();
    let mut store = SnapshotStore::new(8);
    for s in &snaps {
        store.put_snapshot(s.docs.iter().map(|d| (d.title.as_str(), d.text.as_str())));
    }
    assert!(store.stats().compression_ratio() > 3.0);
    // Spot-check exact reconstruction of every version of one document.
    let title = &snaps[0].docs[0].title;
    for (day, snap) in snaps.iter().enumerate() {
        let expect = snap.docs.iter().find(|d| &d.title == title).unwrap();
        assert_eq!(store.get(title, day).unwrap(), expect.text, "day {day}");
    }
}

#[test]
fn crash_recovery_preserves_committed_pipeline_output() {
    let p = tmpwal("pipeline-crash");
    let schema = TableSchema::new(
        "cities",
        vec![Column::new("name", DataType::Text), Column::new("population", DataType::Int)],
        &["name"],
        &["population"],
    )
    .unwrap();
    {
        let db = Database::open(&p).unwrap();
        db.create_table(schema.clone()).unwrap();
        let tx = db.begin();
        db.insert(tx, "cities", vec!["Madison".into(), Value::Int(250_000)]).unwrap();
        db.insert(tx, "cities", vec!["Oakton".into(), Value::Int(9_500)]).unwrap();
        db.commit(tx).unwrap();
        let tx2 = db.begin();
        db.insert(tx2, "cities", vec!["Ghost".into(), Value::Int(1)]).unwrap();
        // Crash before commit.
    }
    let db = Database::open(&p).unwrap();
    let rows = db.scan_autocommit("cities").unwrap();
    assert_eq!(rows.len(), 2);
    assert!(rows.iter().all(|r| r[0] != Value::Text("Ghost".into())));
    // The secondary index works post-recovery.
    let tx = db.begin();
    let hits = db.index_lookup(tx, "cities", "population", &Value::Int(9_500)).unwrap();
    assert_eq!(hits.len(), 1);
    db.commit(tx).unwrap();
    std::fs::remove_file(&p).unwrap();
}

#[test]
fn schema_evolution_survives_recovery() {
    let p = tmpwal("evolution-crash");
    let base =
        TableSchema::new("people", vec![Column::new("name", DataType::Text)], &["name"], &[])
            .unwrap();
    let mut registry = SchemaRegistry::new();
    registry.register(base.clone()).unwrap();
    registry
        .evolve(
            "people",
            EvolutionOp::AddColumn {
                column: Column::nullable("employer", DataType::Text),
                default: Value::Null,
            },
        )
        .unwrap();
    {
        let db = Database::open(&p).unwrap();
        db.create_table(base).unwrap();
        db.insert_autocommit("people", vec!["David Smith".into()]).unwrap();
        registry.migrate_database(&db, "people", VersionId(0)).unwrap();
        let tx = db.begin();
        db.update(
            tx,
            "people",
            &["David Smith".into()],
            vec!["David Smith".into(), "Acme Systems".into()],
        )
        .unwrap();
        db.commit(tx).unwrap();
    }
    // Recovery replays DDL (drop + create) and the migrated rows.
    let db = Database::open(&p).unwrap();
    let schema = db.schema("people").unwrap();
    assert_eq!(schema.columns.len(), 2);
    let rows = db.scan_autocommit("people").unwrap();
    assert_eq!(
        rows,
        vec![vec![Value::Text("David Smith".into()), Value::Text("Acme Systems".into()),]]
    );
    std::fs::remove_file(&p).unwrap();
}

#[test]
fn wal_grows_with_work_and_recovery_is_complete_after_many_batches() {
    let p = tmpwal("many-batches");
    {
        let db = Database::open(&p).unwrap();
        db.create_table(
            TableSchema::new(
                "t",
                vec![Column::new("k", DataType::Int), Column::new("v", DataType::Int)],
                &["k"],
                &[],
            )
            .unwrap(),
        )
        .unwrap();
        for batch in 0..20i64 {
            let tx = db.begin();
            for i in 0..10i64 {
                db.insert(tx, "t", vec![Value::Int(batch * 10 + i), Value::Int(batch)]).unwrap();
            }
            if batch % 4 == 3 {
                db.abort(tx).unwrap(); // every fourth batch is abandoned
            } else {
                db.commit(tx).unwrap();
            }
        }
    }
    let db = Database::open(&p).unwrap();
    assert_eq!(db.row_count("t").unwrap(), 15 * 10);
    std::fs::remove_file(&p).unwrap();
}
