//! Durability integration: crawl snapshots, WAL-backed structure, crash
//! recovery, and schema evolution over the recovered store.

use quarry::corpus::{Corpus, CorpusConfig, CrawlConfig, CrawlSimulator};
use quarry::schema::{EvolutionOp, SchemaRegistry, VersionId};
use quarry::storage::{
    Column, CrashPlan, DataType, Database, DurabilityMode, FaultBackend, Op, RealBackend,
    SnapshotStore, TableSchema, Value,
};
use std::sync::Arc;

mod common;
use common::{dump, remove_db_files, tmpwal};

#[test]
fn thirty_day_crawl_compresses_and_reconstructs() {
    let corpus = Corpus::generate(&CorpusConfig::tiny(8));
    let snaps = CrawlSimulator::new(
        &corpus,
        CrawlConfig { seed: 2, days: 30, churn: 0.03, new_page_rate: 0.2 },
    )
    .run();
    let mut store = SnapshotStore::new(8);
    for s in &snaps {
        store.put_snapshot(s.docs.iter().map(|d| (d.title.as_str(), d.text.as_str())));
    }
    assert!(store.stats().compression_ratio() > 3.0);
    // Spot-check exact reconstruction of every version of one document.
    let title = &snaps[0].docs[0].title;
    for (day, snap) in snaps.iter().enumerate() {
        let expect = snap.docs.iter().find(|d| &d.title == title).unwrap();
        assert_eq!(store.get(title, day).unwrap(), expect.text, "day {day}");
    }
}

#[test]
fn crash_recovery_preserves_committed_pipeline_output() {
    let p = tmpwal("pipeline-crash");
    let schema = TableSchema::new(
        "cities",
        vec![Column::new("name", DataType::Text), Column::new("population", DataType::Int)],
        &["name"],
        &["population"],
    )
    .unwrap();
    {
        let db = Database::open(&p).unwrap();
        db.create_table(schema.clone()).unwrap();
        let tx = db.begin();
        db.insert(tx, "cities", vec!["Madison".into(), Value::Int(250_000)]).unwrap();
        db.insert(tx, "cities", vec!["Oakton".into(), Value::Int(9_500)]).unwrap();
        db.commit(tx).unwrap();
        let tx2 = db.begin();
        db.insert(tx2, "cities", vec!["Ghost".into(), Value::Int(1)]).unwrap();
        // Crash before commit.
    }
    let db = Database::open(&p).unwrap();
    let rows = db.scan_autocommit("cities").unwrap();
    assert_eq!(rows.len(), 2);
    assert!(rows.iter().all(|r| r[0] != Value::Text("Ghost".into())));
    // The secondary index works post-recovery.
    let tx = db.begin();
    let hits = db.index_lookup(tx, "cities", "population", &Value::Int(9_500)).unwrap();
    assert_eq!(hits.len(), 1);
    db.commit(tx).unwrap();
    std::fs::remove_file(&p).unwrap();
}

#[test]
fn schema_evolution_survives_recovery() {
    let p = tmpwal("evolution-crash");
    let base =
        TableSchema::new("people", vec![Column::new("name", DataType::Text)], &["name"], &[])
            .unwrap();
    let mut registry = SchemaRegistry::new();
    registry.register(base.clone()).unwrap();
    registry
        .evolve(
            "people",
            EvolutionOp::AddColumn {
                column: Column::nullable("employer", DataType::Text),
                default: Value::Null,
            },
        )
        .unwrap();
    {
        let db = Database::open(&p).unwrap();
        db.create_table(base).unwrap();
        db.insert_autocommit("people", vec!["David Smith".into()]).unwrap();
        registry.migrate_database(&db, "people", VersionId(0)).unwrap();
        let tx = db.begin();
        db.update(
            tx,
            "people",
            &["David Smith".into()],
            vec!["David Smith".into(), "Acme Systems".into()],
        )
        .unwrap();
        db.commit(tx).unwrap();
    }
    // Recovery replays DDL (drop + create) and the migrated rows.
    let db = Database::open(&p).unwrap();
    let schema = db.schema("people").unwrap();
    assert_eq!(schema.columns.len(), 2);
    let rows = db.scan_autocommit("people").unwrap();
    assert_eq!(
        rows,
        vec![vec![Value::Text("David Smith".into()), Value::Text("Acme Systems".into()),]]
    );
    std::fs::remove_file(&p).unwrap();
}

#[test]
fn wal_grows_with_work_and_recovery_is_complete_after_many_batches() {
    let p = tmpwal("many-batches");
    {
        let db = Database::open(&p).unwrap();
        db.create_table(
            TableSchema::new(
                "t",
                vec![Column::new("k", DataType::Int), Column::new("v", DataType::Int)],
                &["k"],
                &[],
            )
            .unwrap(),
        )
        .unwrap();
        for batch in 0..20i64 {
            let tx = db.begin();
            for i in 0..10i64 {
                db.insert(tx, "t", vec![Value::Int(batch * 10 + i), Value::Int(batch)]).unwrap();
            }
            if batch % 4 == 3 {
                db.abort(tx).unwrap(); // every fourth batch is abandoned
            } else {
                db.commit(tx).unwrap();
            }
        }
    }
    let db = Database::open(&p).unwrap();
    assert_eq!(db.row_count("t").unwrap(), 15 * 10);
    std::fs::remove_file(&p).unwrap();
}

// ---------------------------------------------------------------------
// Recovery differential harness
// ---------------------------------------------------------------------
//
// Records a deterministic workload's complete storage-operation stream with
// a fault-injecting backend, then for every crash point k re-runs the
// workload with a plan that kills the process-model at operation k,
// restarts from the surviving files, and asserts the recovered database is
// bit-identical to a reference state at a *step boundary* — the state just
// before or just after the step the crash interrupted, never a hybrid —
// and never earlier than the last step whose commit completed before the
// crash (the durability floor). Torn-write variants re-run write crash
// points persisting only half the crashing write's bytes.
//
// `QUARRY_CRASH_POINTS=n` bounds the sweep to n evenly-spread crash points
// (CI smoke); the checkpoint publication rename and the WAL reset right
// after it are always included. `QUARRY_DURABILITY=full|normal` selects the
// commit durability the sweep runs under — both modes promise the same
// recovery floor in the fault model (flushed bytes survive), with `normal`
// simply skipping the per-commit fsync. `deferred` is deliberately not
// accepted: it trades the floor away, so the differential's invariant does
// not hold for it (its contract is covered by the engine's unit tests).
//
// Two workloads run through the same sweep: the original mixed DML one,
// and a split-heavy one whose multi-kilobyte text rows force the B-tree
// checkpoint builder through overflow chains, oversized index keys, and
// repeated page splits — so the kill and torn-write sweeps cover crashes
// in the middle of multi-page split writes.

type Step = fn(&Database) -> quarry::storage::Result<()>;

fn durability_from_env() -> DurabilityMode {
    match std::env::var("QUARRY_DURABILITY") {
        Err(_) => DurabilityMode::Full,
        Ok(v) => match v.as_str() {
            "full" => DurabilityMode::Full,
            "normal" => DurabilityMode::Normal,
            other => panic!("QUARRY_DURABILITY must be full|normal, got {other:?}"),
        },
    }
}

fn people_schema() -> TableSchema {
    TableSchema::new(
        "people",
        vec![
            Column::new("name", DataType::Text),
            Column::new("age", DataType::Int),
            Column::nullable("city", DataType::Text),
        ],
        &["name"],
        &["age"],
    )
    .unwrap()
}

fn events_schema() -> TableSchema {
    TableSchema::new(
        "events",
        vec![Column::new("id", DataType::Int), Column::new("kind", DataType::Text)],
        &["id"],
        &[],
    )
    .unwrap()
}

fn person(name: &str, age: i64, city: &str) -> Vec<Value> {
    vec![name.into(), Value::Int(age), city.into()]
}

/// The recorded workload: each step is one atomic unit (one committed
/// transaction, one auto-committed DDL statement, or one checkpoint), so
/// every step boundary is a legal recovery target.
fn workload_steps() -> Vec<Step> {
    vec![
        |db| db.create_table(people_schema()),
        |db| {
            let tx = db.begin();
            db.insert(tx, "people", person("ada", 36, "london"))?;
            db.insert(tx, "people", person("alan", 41, "cambridge"))?;
            db.insert(tx, "people", person("grace", 37, "arlington"))?;
            db.commit(tx)
        },
        |db| {
            let tx = db.begin();
            db.insert(tx, "people", person("edsger", 40, "austin"))?;
            db.insert(tx, "people", person("barbara", 52, "cambridge"))?;
            db.commit(tx)
        },
        |db| {
            let tx = db.begin();
            db.update(tx, "people", &["ada".into()], person("ada", 37, "london"))?;
            db.commit(tx)
        },
        |db| {
            let tx = db.begin();
            db.delete(tx, "people", &["alan".into()])?;
            db.commit(tx)
        },
        |db| db.create_index("people", "city"),
        |db| {
            // An aborted transaction: logical state unchanged, log grows.
            let tx = db.begin();
            db.insert(tx, "people", person("ghost", 1, "nowhere"))?;
            db.abort(tx)
        },
        |db| {
            let tx = db.begin();
            db.insert(tx, "people", person("kurt", 71, "princeton"))?;
            db.insert(tx, "people", person("alonzo", 92, "princeton"))?;
            db.commit(tx)
        },
        |db| db.checkpoint(),
        |db| {
            let tx = db.begin();
            db.insert(tx, "people", person("john", 53, "princeton"))?;
            db.commit(tx)
        },
        |db| {
            let tx = db.begin();
            db.update(tx, "people", &["grace".into()], person("grace", 85, "arlington"))?;
            db.delete(tx, "people", &["edsger".into()])?;
            db.commit(tx)
        },
        |db| db.create_table(events_schema()),
        |db| {
            let tx = db.begin();
            db.insert(tx, "events", vec![Value::Int(1), "login".into()])?;
            db.insert(tx, "events", vec![Value::Int(2), "edit".into()])?;
            db.commit(tx)
        },
        |db| db.checkpoint(),
        |db| {
            let tx = db.begin();
            db.insert(tx, "events", vec![Value::Int(3), "logout".into()])?;
            db.commit(tx)
        },
        |db| {
            let tx = db.begin();
            db.delete(tx, "events", &[Value::Int(1)])?;
            db.update(tx, "people", &["kurt".into()], person("kurt", 72, "princeton"))?;
            db.commit(tx)
        },
        |db| {
            let tx = db.begin();
            db.insert(tx, "people", person("emmy", 53, "bryn mawr"))?;
            db.commit(tx)
        },
    ]
}

fn docs_schema() -> TableSchema {
    TableSchema::new(
        "docs",
        vec![
            Column::new("id", DataType::Int),
            Column::new("tag", DataType::Text),
            Column::new("body", DataType::Text),
        ],
        &["id"],
        &["tag"],
    )
    .unwrap()
}

/// A deterministic multi-kilobyte body: a distinct per-id prefix (so the
/// body index has real ordering work to do) padded to `kb` kilobytes —
/// past the B-tree's inline-value limit, so checkpoint builds spill these
/// rows into overflow chains spanning several pages.
fn big_body(id: i64, kb: usize) -> String {
    let mut s = format!("doc-{id:04}:");
    while s.len() < kb * 1024 {
        s.push_str("the quick brown fox jumps over the lazy dog ");
    }
    s
}

/// One document row; body size cycles 1..=7 KiB so the row tree holds a
/// mix of inline and overflow values.
fn doc(id: i64) -> Vec<Value> {
    let kb = 1 + (id % 4) as usize * 2;
    vec![Value::Int(id), format!("tag-{}", id % 5).into(), big_body(id, kb).into()]
}

fn insert_docs(db: &Database, lo: i64, hi: i64) -> quarry::storage::Result<()> {
    let tx = db.begin();
    for id in lo..hi {
        db.insert(tx, "docs", doc(id))?;
    }
    db.commit(tx)
}

/// The split-heavy workload: enough multi-KB rows that each checkpoint's
/// tree build splits leaves repeatedly and writes multi-page overflow
/// chains, an index over the oversized `body` column (keys past the
/// inline limit), and post-checkpoint churn so the second build merges a
/// base image with an overlay.
fn split_heavy_steps() -> Vec<Step> {
    vec![
        |db| db.create_table(docs_schema()),
        |db| insert_docs(db, 0, 12),
        |db| insert_docs(db, 12, 24),
        |db| insert_docs(db, 24, 36),
        |db| db.checkpoint(),
        |db| {
            let tx = db.begin();
            // Rewrites move rows between inline and overflow sizing.
            db.update(
                tx,
                "docs",
                &[Value::Int(3)],
                vec![Value::Int(3), "tag-3".into(), big_body(3, 6).into()],
            )?;
            db.update(
                tx,
                "docs",
                &[Value::Int(20)],
                vec![Value::Int(20), "tag-0".into(), "tiny".into()],
            )?;
            db.delete(tx, "docs", &[Value::Int(7)])?;
            db.delete(tx, "docs", &[Value::Int(30)])?;
            db.commit(tx)
        },
        |db| db.create_index("docs", "body"),
        |db| insert_docs(db, 36, 44),
        |db| db.checkpoint(),
        |db| {
            let tx = db.begin();
            db.delete(tx, "docs", &[Value::Int(11)])?;
            db.update(
                tx,
                "docs",
                &[Value::Int(40)],
                vec![Value::Int(40), "tag-9".into(), big_body(40, 5).into()],
            )?;
            db.insert(tx, "docs", doc(44))?;
            db.commit(tx)
        },
        |db| insert_docs(db, 45, 48),
    ]
}

/// One crash case: run the workload against a backend that dies at
/// operation `k` (optionally tearing that write), restart from the
/// surviving files with the real backend, and check the recovered state
/// against the reference states.
fn run_crash_case(
    k: u64,
    tear: Option<usize>,
    steps: &[Step],
    states: &[String],
    cum: &[u64],
    label: &str,
) {
    let p = tmpwal(&format!("recdiff-{label}"));
    let plan = CrashPlan { crash_at: k, tear_bytes: tear };
    let fb = FaultBackend::with_plan(RealBackend, plan);
    if let Ok(mut db) = Database::open_with(Arc::new(fb.clone()), &p) {
        db.set_durability(durability_from_env());
        for step in steps {
            if step(&db).is_err() {
                break;
            }
        }
    }
    assert!(fb.crashed(), "{label}: plan at op {k} of {} never fired", cum.last().unwrap());
    assert_eq!(fb.op_count(), k, "{label}: op stream diverged from the recording");

    // Restart: recover from whatever survived, with the real filesystem.
    let db = Database::open(&p).unwrap();
    let got = dump(&db);
    drop(db);
    remove_db_files(&p);

    // The crash hit op k; find the step that contains it. cum[0] is the
    // op count of opening the database, cum[i] the count after step i.
    let s = cum.iter().position(|&c| c >= k).expect("k is within the recorded stream");
    // Atomicity: recovered state is the state just before or just after
    // the interrupted step — never a hybrid. Durability: every step that
    // finished (and synced) before the crash is the floor; recovering less
    // would match an earlier reference state and fail here too.
    let allowed: &[usize] = if s == 0 { &[0] } else { &[s - 1, s] };
    assert!(
        allowed.iter().any(|&j| states[j] == got),
        "{label}: crash at op {k} (step {s}) recovered a state matching neither the pre-step \
         nor the post-step reference.\nrecovered:\n{got}\npre:\n{}\npost:\n{}",
        &states[allowed[0]],
        &states[*allowed.last().unwrap()],
    );
}

/// The full differential: record the workload's op stream, then sweep
/// kill and torn-write crashes across it. `label` keeps the scratch files
/// of concurrently-running sweeps apart.
fn differential_sweep(steps: &[Step], label: &str) {
    // Reference states: the workload replayed on an in-memory database,
    // dumped after every step prefix (checkpoint is a no-op there, which is
    // correct — it does not change logical state).
    let reference = Database::in_memory();
    let mut states = vec![dump(&reference)];
    for step in steps {
        step(&reference).unwrap();
        states.push(dump(&reference));
    }

    // Recording run: capture the full operation stream and each step's
    // cumulative operation count.
    let p = tmpwal(&format!("recdiff-{label}-record"));
    let rec = FaultBackend::recording(RealBackend);
    let mut db = Database::open_with(Arc::new(rec.clone()), &p).unwrap();
    db.set_durability(durability_from_env());
    let mut cum = vec![rec.op_count()];
    for step in steps {
        step(&db).unwrap();
        cum.push(rec.op_count());
    }
    // Capture the stream before dumping: dump() itself runs (read-only)
    // transactions whose commit records would otherwise pad the count.
    let ops = rec.ops();
    let total = rec.op_count();
    assert_eq!(ops.len() as u64, total);
    assert_eq!(total, *cum.last().unwrap());
    assert_eq!(dump(&db), *states.last().unwrap(), "fault-free run must match the reference");
    drop(db);
    remove_db_files(&p);

    // The two checkpoint publications (renames) and the WAL resets right
    // after them are the crash points the atomic-checkpoint design exists
    // for; always include them.
    let mut must_test: Vec<u64> = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        if let Op::Rename { .. } = op {
            must_test.push(i as u64 + 1); // the rename itself
            if (i as u64 + 2) <= total {
                must_test.push(i as u64 + 2); // the reset that follows
            }
        }
    }
    assert!(!must_test.is_empty(), "workload must exercise checkpoint publication");

    // Crash points: full sweep by default; QUARRY_CRASH_POINTS=n picks n
    // evenly-spread points (plus the must-test set) for bounded CI runs.
    let mut ks: Vec<u64> = match std::env::var("QUARRY_CRASH_POINTS") {
        Ok(v) => {
            let n: u64 = v.parse().expect("QUARRY_CRASH_POINTS must be an integer");
            let n = n.clamp(1, total);
            (1..=n).map(|i| (i * total) / n).collect()
        }
        Err(_) => (1..=total).collect(),
    };
    ks.extend(&must_test);
    ks.sort_unstable();
    ks.dedup();

    for &k in &ks {
        run_crash_case(k, None, steps, &states, &cum, &format!("{label}-kill-{k}"));
    }

    // Torn-write variants: crash mid-append, persisting half the bytes of
    // the crashing write — replay must drop the torn record.
    let mut torn_cases = 0;
    for &k in &ks {
        if let Op::Write { bytes, .. } = &ops[(k - 1) as usize] {
            if *bytes >= 2 {
                run_crash_case(
                    k,
                    Some(bytes / 2),
                    steps,
                    &states,
                    &cum,
                    &format!("{label}-tear-{k}"),
                );
                torn_cases += 1;
            }
        }
    }
    assert!(torn_cases > 0, "sweep must include at least one torn write");
}

#[test]
fn recovery_differential() {
    differential_sweep(&workload_steps(), "base");
}

/// Same invariant, split-heavy workload: every crash point — including
/// kills and torn writes landing mid-way through the multi-page overflow
/// chains and leaf splits of a B-tree checkpoint build — recovers to a
/// step boundary at or above the durability floor.
#[test]
fn recovery_differential_split_heavy() {
    differential_sweep(&split_heavy_steps(), "split");
}
