//! Admission control and graceful shutdown, made deterministic with the
//! server's request hook: a hook that parks a chosen request holds it
//! "in flight" for exactly as long as the test wants, with no sleeps or
//! timing races.

use quarry::core::{Quarry, QuarryConfig};
use quarry::query::Query;
use quarry::serve::{Client, ClientError, Request, ServeConfig, Server};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

const PIPELINE: &str = r#"
PIPELINE towns FROM corpus
EXTRACT infobox
RESOLVE BY name
STORE INTO towns KEY name
"#;

/// A latch the hook blocks on: `entered` tells the test a request is now
/// in flight; `release()` lets it proceed.
struct Gate {
    entered: mpsc::Sender<()>,
    released: Mutex<bool>,
    cv: Condvar,
}

impl Gate {
    fn new() -> (Arc<Gate>, mpsc::Receiver<()>) {
        let (tx, rx) = mpsc::channel();
        (Arc::new(Gate { entered: tx, released: Mutex::new(false), cv: Condvar::new() }), rx)
    }

    fn wait(&self) {
        self.entered.send(()).unwrap();
        let mut open = self.released.lock().unwrap();
        while !*open {
            open = self.cv.wait(open).unwrap();
        }
    }

    fn release(&self) {
        *self.released.lock().unwrap() = true;
        self.cv.notify_all();
    }
}

/// Server over an empty corpus whose hook parks every `Qdl` request on
/// `gate` (other request kinds pass straight through).
fn gated_server(gate: Arc<Gate>, max_in_flight: usize) -> Server {
    let q = Quarry::new(QuarryConfig::default()).unwrap();
    let cfg = ServeConfig {
        workers: 4,
        max_in_flight,
        request_hook: Some(Arc::new(move |req: &Request| {
            if matches!(req, Request::Qdl(_)) {
                gate.wait();
            }
        })),
        ..ServeConfig::default()
    };
    Server::start(q, "127.0.0.1:0", cfg).unwrap()
}

#[test]
fn second_request_is_rejected_overloaded_not_queued() {
    let (gate, entered) = Gate::new();
    let server = gated_server(Arc::clone(&gate), 1);
    let addr = server.local_addr();

    // First request occupies the single admission slot…
    let slow = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.qdl(PIPELINE)
    });
    entered.recv_timeout(Duration::from_secs(10)).unwrap();
    assert_eq!(server.in_flight(), 1);

    // …so an independent client is rejected immediately — an explicit
    // Overloaded, not an unbounded queue or a hang.
    let mut c2 = Client::connect(addr).unwrap();
    match c2.ping() {
        Err(ClientError::Overloaded) => {}
        other => panic!("expected Overloaded, got {other:?}"),
    }
    assert_eq!(server.metrics().snapshot().counter("server.overloaded"), 1);

    // Releasing the slot restores service for the same client.
    gate.release();
    slow.join().unwrap().unwrap();
    c2.ping().unwrap();
    assert_eq!(server.in_flight(), 0);
}

#[test]
fn rejection_latency_is_bounded_while_a_request_is_stuck() {
    // Overload rejections must not wait on the stuck request: they are
    // answered before execution, off the admission counter alone.
    let (gate, entered) = Gate::new();
    let server = gated_server(Arc::clone(&gate), 1);
    let addr = server.local_addr();

    let slow = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.qdl(PIPELINE)
    });
    entered.recv_timeout(Duration::from_secs(10)).unwrap();

    let mut rejected = 0;
    let start = std::time::Instant::now();
    for _ in 0..5 {
        let mut c = Client::connect(addr).unwrap();
        if matches!(c.ping(), Err(ClientError::Overloaded)) {
            rejected += 1;
        }
    }
    let elapsed = start.elapsed();
    assert_eq!(rejected, 5, "all pings rejected while slot is held");
    // Generous bound: five connect+reject round trips over loopback while
    // the one admitted request stays parked the whole time.
    assert!(elapsed < Duration::from_secs(5), "rejections took {elapsed:?}");

    gate.release();
    slow.join().unwrap().unwrap();
}

#[test]
fn graceful_shutdown_drains_the_in_flight_request() {
    let (gate, entered) = Gate::new();
    let server = gated_server(Arc::clone(&gate), 8);
    let addr = server.local_addr();

    // Park a pipeline in flight.
    let slow = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.qdl(PIPELINE)
    });
    entered.recv_timeout(Duration::from_secs(10)).unwrap();

    // Begin shutdown while it is still parked. The Shutdown control frame
    // bypasses admission, so this works even under load.
    let mut ctl = Client::connect(addr).unwrap();
    ctl.shutdown().unwrap();

    // New work is now refused: a fresh request either cannot connect at
    // all (listener already gone — also a valid refusal) or gets an
    // explicit ShuttingDown.
    if let Ok(mut c) = Client::connect(addr) {
        match c.ping() {
            Err(ClientError::ShuttingDown)
            | Err(ClientError::Io(_))
            | Err(ClientError::Frame(_)) => {}
            other => panic!("expected refusal during drain, got {other:?}"),
        }
    }

    // Release the parked request: the drain must deliver its real
    // response (not cut the connection) before the server finishes.
    gate.release();
    let stats = slow.join().unwrap().expect("drained request must get its response");
    assert_eq!(stats.rows_stored, 0, "empty corpus stores no rows");

    // join() returns only after every session thread exited, with the
    // drained request's effects applied to the façade we get back.
    let quarry = server.join();
    assert!(quarry.db.table_names().iter().any(|t| t.as_str() == "towns"), "drained pipeline ran");
}

/// The MVCC split's first obligation: a read request parked *at its
/// execution point* (snapshot already captured) holds no lock another
/// read needs, so a second concurrent read completes while the first is
/// still in flight. Under the old serialize-through-a-facade-mutex
/// design this deadlocked the second read behind the first.
#[test]
fn a_parked_read_does_not_block_a_second_read() {
    let (gate, entered) = Gate::new();
    let first = Arc::new(AtomicBool::new(true));
    let q = Quarry::new(QuarryConfig::default()).unwrap();
    let cfg = ServeConfig {
        workers: 4,
        max_in_flight: 8,
        request_hook: Some(Arc::new({
            let gate = Arc::clone(&gate);
            let first = Arc::clone(&first);
            move |req: &Request| {
                if matches!(req, Request::Query(_)) && first.swap(false, Ordering::SeqCst) {
                    gate.wait();
                }
            }
        })),
        ..ServeConfig::default()
    };
    let server = Server::start(q, "127.0.0.1:0", cfg).unwrap();
    let addr = server.local_addr();

    // Park the first read mid-execution.
    let parked = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.query(&Query::scan("ghost"))
    });
    entered.recv_timeout(Duration::from_secs(10)).unwrap();
    assert_eq!(server.in_flight(), 1);

    // A second read completes while the first stays parked. (The answer
    // is a server-side "no such table" error — which is a *completed*
    // read: the request executed against its snapshot and replied.)
    let mut c2 = Client::connect(addr).unwrap();
    let r2 = c2.query(&Query::scan("ghost"));
    assert!(
        matches!(r2, Err(ClientError::Server { .. })),
        "second read must complete while the first is parked, got {r2:?}"
    );
    assert_eq!(server.in_flight(), 1, "the parked read is still in flight");

    gate.release();
    let r1 = parked.join().unwrap();
    assert!(matches!(r1, Err(ClientError::Server { .. })));
    drop(server.join());
}

/// And the second obligation: a write parked *inside the single-writer
/// critical section* blocks no read — every exploitation mode keeps
/// executing against snapshots while the writer lock is held.
#[test]
fn a_parked_write_does_not_block_reads() {
    let (gate, entered) = Gate::new();
    let server = gated_server(Arc::clone(&gate), 8);
    let addr = server.local_addr();

    // Park a pipeline inside the writer critical section.
    let parked = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.qdl(PIPELINE)
    });
    entered.recv_timeout(Duration::from_secs(10)).unwrap();

    // Reads of every kind complete while the write holds the lock.
    let mut c2 = Client::connect(addr).unwrap();
    c2.stats().expect("stats while a write is parked");
    let (hits, cands) = c2.keyword("anything", 3).expect("keyword while a write is parked");
    assert!(hits.is_empty() && cands.is_empty(), "empty corpus");
    let r = c2.query(&Query::scan("ghost"));
    assert!(matches!(r, Err(ClientError::Server { .. })), "query executed, got {r:?}");

    gate.release();
    parked.join().unwrap().expect("parked pipeline completes after release");
    drop(server.join());
}

#[test]
fn shutdown_is_idempotent_and_in_band() {
    let (gate, _entered) = Gate::new();
    gate.release(); // nothing parked in this test
    let server = gated_server(gate, 8);
    let addr = server.local_addr();

    let mut c = Client::connect(addr).unwrap();
    c.ping().unwrap();
    c.shutdown().unwrap();
    // A second shutdown from the server handle is a no-op, not a panic.
    server.begin_shutdown();
    let quarry = server.join();
    drop(quarry);

    // After join, the port no longer serves the protocol.
    if let Ok(mut c2) = Client::connect(addr) {
        assert!(c2.ping().is_err(), "server still serving after join");
    }
}
