//! Snapshot-isolation properties of the façade's MVCC read sessions.
//!
//! The contract under test: a [`Snapshot`](quarry::core::Snapshot)
//! captured at write-clock LSN `L` observes *every* write committed by
//! `L` and *no* write committed after it — forever, no matter what the
//! single writer does next (more commits, a checkpoint, even a full
//! restart of the system from its WAL).

use proptest::prelude::*;
use quarry::core::{Quarry, QuarryConfig};
use quarry::storage::{Column, DataType, DbSnapshot, TableSchema, Value};

mod common;
use common::{dump, remove_db_files, tmpwal};

/// Canonical dump of a pinned view, format-compatible with
/// [`common::dump`] so a snapshot can be compared bit-for-bit against a
/// live database's logical state.
fn snap_dump(snap: &DbSnapshot) -> String {
    let mut out = String::new();
    for name in snap.table_names() {
        out.push_str(&format!("== {name} ==\n"));
        out.push_str(&format!("schema: {:?}\n", snap.schema(&name).unwrap()));
        out.push_str(&format!("indexes: {:?}\n", snap.indexed_columns(&name).unwrap()));
        for row in snap.scan(&name).unwrap() {
            out.push_str(&format!("row: {row:?}\n"));
        }
    }
    out
}

fn items_quarry() -> Quarry {
    let q = Quarry::new(QuarryConfig::default()).unwrap();
    q.db.create_table(
        TableSchema::new(
            "items",
            vec![Column::new("id", DataType::Int), Column::new("val", DataType::Int)],
            &["id"],
            &[],
        )
        .unwrap(),
    )
    .unwrap();
    q
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64 })]

    /// Prefix property: replay a random write history — each step an
    /// insert, update, delete, or snapshot capture, encoded as
    /// `(kind, key, value)` — observing snapshots at random points.
    /// Every snapshot's dump must equal the live dump taken at its
    /// capture instant — i.e. exactly the writes committed by its LSN,
    /// none after — and must still equal it after the whole history has
    /// run.
    fn snapshots_observe_exactly_their_lsn_prefix(
        ops in proptest::collection::vec((0usize..4, 0i64..24, 0i64..1000), 1..40)
    ) {
        let q = items_quarry();
        let mut observed: Vec<(u64, String)> = Vec::new();
        let mut snaps = Vec::new();
        for &(kind, k, v) in &ops {
            match kind {
                0 => {
                    let _ = q.db.insert_autocommit("items", vec![Value::Int(k), Value::Int(0)]);
                }
                1 => {
                    let tx = q.db.begin();
                    let done = q.db.update(tx, "items", &[Value::Int(k)],
                        vec![Value::Int(k), Value::Int(v)]).is_ok();
                    if done { q.db.commit(tx).unwrap() } else { q.db.abort(tx).unwrap() }
                }
                2 => {
                    let tx = q.db.begin();
                    let done = q.db.delete(tx, "items", &[Value::Int(k)]).is_ok();
                    if done { q.db.commit(tx).unwrap() } else { q.db.abort(tx).unwrap() }
                }
                _ => {
                    let snap = q.snapshot();
                    prop_assert_eq!(&snap_dump(snap.db()), &dump(&q.db),
                        "a fresh snapshot must equal the live state");
                    observed.push((snap.lsn(), snap_dump(snap.db())));
                    snaps.push(snap);
                }
            }
        }
        // After the full history: every held snapshot still dumps its
        // own prefix, and LSN order matches capture order.
        for (snap, (lsn, at_capture)) in snaps.iter().zip(&observed) {
            prop_assert_eq!(snap.lsn(), *lsn);
            prop_assert_eq!(&snap_dump(snap.db()), at_capture,
                "snapshot at LSN {} observed a later write", lsn);
        }
        for pair in observed.windows(2) {
            prop_assert!(pair[0].0 <= pair[1].0, "write clock regressed");
        }
    }
}

/// A held snapshot survives a checkpoint *and* a WAL restart of the rest
/// of the system: its dump stays bit-identical to its capture instant
/// while the recovered database equals the writer's final state.
#[test]
fn held_snapshot_survives_checkpoint_and_wal_restart() {
    let wal = tmpwal("snapshot-isolation");
    let q = Quarry::new(QuarryConfig::builder().wal_path(&wal).build()).unwrap();
    q.db.create_table(
        TableSchema::new(
            "items",
            vec![Column::new("id", DataType::Int), Column::new("val", DataType::Int)],
            &["id"],
            &[],
        )
        .unwrap(),
    )
    .unwrap();
    for i in 0..10 {
        q.db.insert_autocommit("items", vec![Value::Int(i), Value::Int(i * 10)]).unwrap();
    }

    let snap = q.snapshot();
    let pinned = snap_dump(snap.db());
    assert_eq!(pinned, dump(&q.db), "snapshot starts equal to the live state");

    // The writer moves on: more rows, then an atomic WAL checkpoint.
    for i in 10..20 {
        q.db.insert_autocommit("items", vec![Value::Int(i), Value::Int(i * 10)]).unwrap();
    }
    q.checkpoint().unwrap();
    assert_eq!(snap_dump(snap.db()), pinned, "checkpoint must not move a held snapshot");
    let final_state = dump(&q.db);
    assert_ne!(final_state, pinned, "the writer really did commit past the snapshot");

    // Restart from the WAL (checkpoint image + suffix). The recovered
    // database equals the writer's final state; the snapshot — still
    // held across the restart — dumps bit-identically to capture time.
    drop(q);
    let recovered = Quarry::new(QuarryConfig::builder().wal_path(&wal).build()).unwrap();
    assert_eq!(dump(&recovered.db), final_state, "restart must recover the final state");
    assert_eq!(snap_dump(snap.db()), pinned, "restart must not move a held snapshot");
    drop(recovered);
    remove_db_files(&wal);
}
