//! Concurrency stress: the structured store under a mixed workload must
//! behave serializably — transfers conserve totals, scans never observe a
//! torn state, and wait-die always makes progress (no deadlock).

use quarry::storage::{Column, DataType, Database, StorageError, TableSchema, Value};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn accounts_db(n: usize, initial: i64) -> Arc<Database> {
    let db = Arc::new(Database::in_memory());
    db.create_table(
        TableSchema::new(
            "accounts",
            vec![Column::new("id", DataType::Int), Column::new("balance", DataType::Int)],
            &["id"],
            &[],
        )
        .unwrap(),
    )
    .unwrap();
    for i in 0..n {
        db.insert_autocommit("accounts", vec![Value::Int(i as i64), Value::Int(initial)]).unwrap();
    }
    db
}

#[test]
fn transfers_conserve_total_under_contention() {
    let n_accounts = 6usize;
    let initial = 1_000i64;
    let db = accounts_db(n_accounts, initial);
    let transfers_done = Arc::new(AtomicUsize::new(0));
    let threads = 6;
    let per_thread = 40;

    let mut handles = Vec::new();
    for t in 0..threads {
        let db = Arc::clone(&db);
        let done = Arc::clone(&transfers_done);
        handles.push(std::thread::spawn(move || {
            let mut completed = 0;
            let mut attempt = 0usize;
            while completed < per_thread {
                attempt += 1;
                let from = (t + attempt) % n_accounts;
                let to = (t + attempt * 3 + 1) % n_accounts;
                if from == to {
                    continue;
                }
                let tx = db.begin();
                let result = (|| -> Result<(), StorageError> {
                    let a = db.get(tx, "accounts", &[Value::Int(from as i64)])?;
                    let b = db.get(tx, "accounts", &[Value::Int(to as i64)])?;
                    let amount = 7i64;
                    let fa = a[1].as_f64().unwrap() as i64 - amount;
                    let fb = b[1].as_f64().unwrap() as i64 + amount;
                    db.update(
                        tx,
                        "accounts",
                        &[Value::Int(from as i64)],
                        vec![Value::Int(from as i64), Value::Int(fa)],
                    )?;
                    db.update(
                        tx,
                        "accounts",
                        &[Value::Int(to as i64)],
                        vec![Value::Int(to as i64), Value::Int(fb)],
                    )?;
                    Ok(())
                })();
                match result {
                    Ok(()) => {
                        db.commit(tx).unwrap();
                        completed += 1;
                        done.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(_) => {
                        let _ = db.abort(tx); // wait-die victim: retry
                    }
                }
            }
        }));
    }

    // Concurrent auditor: any consistent snapshot must conserve the total.
    let stop = Arc::new(AtomicUsize::new(0));
    let audits = Arc::new(AtomicUsize::new(0));
    let auditor = {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        let audits = Arc::clone(&audits);
        std::thread::spawn(move || {
            let expected = initial * n_accounts as i64;
            while stop.load(Ordering::Relaxed) == 0 {
                let tx = db.begin();
                // A wait-die abort as a reader is fine; just retry later.
                if let Ok(rows) = db.scan(tx, "accounts") {
                    let total: i64 = rows.iter().map(|r| r[1].as_f64().unwrap() as i64).sum();
                    assert_eq!(total, expected, "torn read: {rows:?}");
                    audits.fetch_add(1, Ordering::Relaxed);
                }
                let _ = db.abort(tx);
            }
        })
    };

    for h in handles {
        h.join().unwrap();
    }
    // Deterministic rendezvous instead of racing the workers: with every
    // writer joined the store is quiescent, so the auditor's next scan must
    // succeed. Wait for one post-quiescence audit before stopping — this
    // terminates regardless of scheduling, so the "observed at least one
    // snapshot" assertion below cannot flake on a loaded box.
    let baseline = audits.load(Ordering::Relaxed);
    while audits.load(Ordering::Relaxed) <= baseline {
        std::thread::yield_now();
    }
    stop.store(1, Ordering::Relaxed);
    auditor.join().unwrap();
    assert_eq!(transfers_done.load(Ordering::Relaxed), threads * per_thread);
    assert!(
        audits.load(Ordering::Relaxed) > 0,
        "the auditor must have observed at least one snapshot"
    );

    let rows = db.scan_autocommit("accounts").unwrap();
    let total: i64 = rows.iter().map(|r| r[1].as_f64().unwrap() as i64).sum();
    assert_eq!(total, initial * n_accounts as i64);
}

#[test]
fn mixed_ddl_and_dml_do_not_corrupt() {
    let db = Arc::new(Database::in_memory());
    db.create_table(
        TableSchema::new(
            "log",
            vec![Column::new("id", DataType::Int), Column::new("who", DataType::Text)],
            &["id"],
            &[],
        )
        .unwrap(),
    )
    .unwrap();
    let next = Arc::new(AtomicUsize::new(0));
    let mut handles = Vec::new();
    for t in 0..4 {
        let db = Arc::clone(&db);
        let next = Arc::clone(&next);
        handles.push(std::thread::spawn(move || {
            let mut mine = 0;
            while mine < 50 {
                let id = next.fetch_add(1, Ordering::SeqCst);
                // On a wait-die abort the id is burned; retry with a new one.
                if db
                    .insert_autocommit(
                        "log",
                        vec![Value::Int(id as i64), format!("thread{t}").into()],
                    )
                    .is_ok()
                {
                    mine += 1;
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let rows = db.scan_autocommit("log").unwrap();
    assert_eq!(rows.len(), 200);
    // Primary keys unique.
    let mut ids: Vec<i64> = rows.iter().map(|r| r[0].as_f64().unwrap() as i64).collect();
    let n = ids.len();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), n);
}
