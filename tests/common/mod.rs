//! Helpers shared by the integration suites.
#![allow(dead_code)] // each test binary uses a subset

use quarry::storage::Database;
use std::path::{Path, PathBuf};

/// A unique temp WAL path for `name`, with any stale database files from
/// a previous run of this process id removed.
pub fn tmpwal(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("quarry-int-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let p = dir.join(format!("{name}-{}.wal", std::process::id()));
    remove_db_files(&p);
    p
}

/// Remove a database's WAL plus its checkpoint image and any stale
/// checkpoint build (same naming scheme as the engine).
pub fn remove_db_files(p: &Path) {
    let _ = std::fs::remove_file(p);
    let _ = std::fs::remove_file(p.with_extension("ckpt"));
    let _ = std::fs::remove_file(p.with_extension("ckpt-tmp"));
}

/// Canonical dump of a database's full logical state: every table's schema,
/// rows (in row-id order), and indexed columns. Two equal dumps mean
/// logically identical databases.
pub fn dump(db: &Database) -> String {
    let mut out = String::new();
    for name in db.table_names() {
        out.push_str(&format!("== {name} ==\n"));
        out.push_str(&format!("schema: {:?}\n", db.schema(&name).unwrap()));
        out.push_str(&format!("indexes: {:?}\n", db.indexed_columns(&name).unwrap()));
        for row in db.scan_autocommit(&name).unwrap() {
            out.push_str(&format!("row: {row:?}\n"));
        }
    }
    out
}
