//! Accuracy integration: extraction and entity resolution scored against
//! ground truth, with and without noise, blocking, and human intervention.

use quarry::corpus::{Corpus, CorpusConfig, NoiseConfig};
use quarry::extract::{eval, extract_all, ExtractorSet};
use quarry::hi::oracle::panel;
use quarry::hi::{curate, Crowd, CurateConfig, SelectionPolicy, UncertainItem};
use quarry::integrate::blocking;
use quarry::integrate::matcher::{decide, MatchConfig, MatchDecision, Record};
use quarry::integrate::{pairwise_score, Clustering};
use quarry::storage::Value;
use std::collections::BTreeSet;

#[test]
fn extraction_f1_degrades_gracefully_with_noise() {
    let mut scores = Vec::new();
    for (label, noise) in [
        ("none", NoiseConfig::none()),
        ("default", NoiseConfig::default()),
        (
            "heavy",
            NoiseConfig {
                name_variant: 0.8,
                label_variant: 0.6,
                number_format_variant: 0.8,
                unit_variant: 0.8,
                typo: 0.05,
            },
        ),
    ] {
        let c = Corpus::generate(&CorpusConfig { seed: 9, noise, ..CorpusConfig::default() });
        let s = eval::score(&extract_all(&c, &ExtractorSet::standard()), &c.truth);
        scores.push((label, s.f1));
    }
    assert!(scores[0].1 > 0.9, "clean F1 {:.3}", scores[0].1);
    assert!(scores[0].1 > scores[1].1, "noise must cost accuracy: {scores:?}");
    assert!(scores[1].1 > scores[2].1, "more noise, more cost: {scores:?}");
    assert!(scores[2].1 > 0.3, "heavy noise still extracts something: {scores:?}");
}

fn person_matching_items(corpus: &Corpus) -> Vec<UncertainItem> {
    let people = &corpus.truth.people;
    let cfg = MatchConfig::default();
    let mut items = Vec::new();
    for i in 0..people.len() {
        for j in i + 1..people.len() {
            let (a, b) = (&people[i], &people[j]);
            let ta = &corpus.docs[a.doc.index()].title;
            let tb = &corpus.docs[b.doc.index()].title;
            let rec = |id: usize, t: &str, p: &quarry::corpus::PersonFact| {
                Record::new(
                    id,
                    [
                        ("name", Value::Text(t.to_string())),
                        ("birth_year", Value::Int(p.birth_year as i64)),
                        ("employer", Value::Text(p.employer.clone())),
                        ("residence", Value::Text(p.residence.clone())),
                    ],
                )
            };
            let (d, score) = decide(&rec(i, ta, a), &rec(j, tb, b), &cfg);
            items.push(UncertainItem {
                id: items.len(),
                prompt_left: ta.clone(),
                prompt_right: tb.clone(),
                auto_decision: d == MatchDecision::Match,
                auto_score: score,
                truth: a.entity == b.entity,
            });
        }
    }
    items
}

fn er_f1(
    _items: &[UncertainItem],
    n: usize,
    decisions: &[bool],
    truth_pairs: &[(usize, usize)],
) -> f64 {
    // items are indexed over person-page pairs (i, j) in order.
    let mut matched = Vec::new();
    let mut k = 0;
    for i in 0..n {
        for j in i + 1..n {
            if decisions[k] {
                matched.push((i, j));
            }
            k += 1;
        }
    }
    let predicted = Clustering::from_pairs(n, matched);
    let truth = Clustering::from_pairs(n, truth_pairs.iter().copied());
    pairwise_score(&predicted, &truth).f1
}

#[test]
fn hi_budget_improves_entity_resolution_f1() {
    let corpus = Corpus::generate(&CorpusConfig {
        seed: 31,
        n_people: 80,
        duplicate_rate: 0.5,
        noise: NoiseConfig { name_variant: 1.0, ..NoiseConfig::default() },
        ..CorpusConfig::default()
    });
    let items = person_matching_items(&corpus);
    let n = corpus.truth.people.len();
    let truth_pairs: Vec<(usize, usize)> = (0..n)
        .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
        .filter(|&(i, j)| corpus.truth.people[i].entity == corpus.truth.people[j].entity)
        .collect();

    let auto: Vec<bool> = items.iter().map(|i| i.auto_decision).collect();
    let f1_auto = er_f1(&items, n, &auto, &truth_pairs);

    // 5 votes per question: a single careless answer cannot flip a verdict
    // into a false match (false matches over-merge transitively and cost
    // far more pairwise F1 than a missed match).
    let mut crowd = Crowd::new(panel(5, &[0.05], 3));
    let report = curate(
        &items,
        &mut crowd,
        CurateConfig {
            budget: 1000,
            votes_per_question: 5,
            policy: SelectionPolicy::UncertaintyFirst,
            reputation: None,
        },
    );
    let f1_hi = er_f1(&items, n, &report.decisions, &truth_pairs);
    assert!(f1_hi >= f1_auto, "HI must not hurt: auto {f1_auto:.3} vs HI {f1_hi:.3}");
    assert!(f1_hi > 0.8, "curated ER should be strong, got {f1_hi:.3}");
}

#[test]
fn blocking_preserves_most_true_pairs_while_cutting_work() {
    let corpus = Corpus::generate(&CorpusConfig {
        seed: 17,
        n_people: 120,
        duplicate_rate: 0.5,
        noise: NoiseConfig { name_variant: 1.0, ..NoiseConfig::default() },
        ..CorpusConfig::default()
    });
    let titles: Vec<String> =
        corpus.truth.people.iter().map(|p| corpus.docs[p.doc.index()].title.clone()).collect();
    let truth_pairs: BTreeSet<(usize, usize)> = (0..titles.len())
        .flat_map(|i| ((i + 1)..titles.len()).map(move |j| (i, j)))
        .filter(|&(i, j)| corpus.truth.people[i].entity == corpus.truth.people[j].entity)
        .collect();

    let key = |t: &String| {
        t.split([' ', ','])
            .rfind(|w| w.len() > 1 && w.chars().all(char::is_alphabetic))
            .unwrap_or("")
            .to_lowercase()
    };
    let candidates = blocking::key_blocking(&titles, key);
    let stats = blocking::evaluate(&candidates, &truth_pairs, titles.len());
    assert!(stats.reduction_ratio() > 0.9, "reduction {:.3}", stats.reduction_ratio());
    assert!(stats.pairs_completeness() > 0.6, "completeness {:.3}", stats.pairs_completeness());
}
