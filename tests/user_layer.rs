//! User-layer integration through the façade: forms, browsing, monitors,
//! corrections, and the incentive loop working together.

use quarry::core::{Correction, CorrectionStatus, Quarry, QuarryConfig};
use quarry::corpus::{Corpus, CorpusConfig, NoiseConfig};
use quarry::query::engine::AggFn;
use quarry::query::Query;
use quarry::storage::Value;

const PIPELINE: &str = r#"
PIPELINE cities FROM corpus
EXTRACT infobox, rules
WHERE attribute IN ("name", "state", "population")
RESOLVE BY name
STORE INTO cities KEY name
"#;

fn boot() -> (Quarry, Corpus) {
    let corpus = Corpus::generate(&CorpusConfig {
        seed: 100,
        noise: NoiseConfig::none(),
        ..CorpusConfig::default()
    });
    let mut q = Quarry::new(QuarryConfig::builder().build()).unwrap();
    q.ingest(corpus.docs.clone());
    q.run_pipeline(PIPELINE).unwrap();
    (q, corpus)
}

#[test]
fn suggested_forms_are_editable_and_runnable() {
    let (q, corpus) = boot();
    let city = &corpus.truth.cities[0];
    let forms = q.snapshot().suggest_forms(&format!("population {}", city.name), 3);
    assert!(!forms.is_empty());
    let top = &forms[0];
    assert!(
        top.fields.iter().any(|f| f.prefill == city.name),
        "the city name should be a pre-filled field: {top:?}"
    );
}

#[test]
fn browse_card_reflects_corrections() {
    let (mut q, corpus) = boot();
    let city = &corpus.truth.cities[0];
    q.users.register("editor", false).unwrap();
    for _ in 0..20 {
        q.users.record_contribution("editor", true).unwrap();
    }
    let status = q
        .submit_correction(
            "editor",
            Correction {
                table: "cities".into(),
                key: vec![city.name.as_str().into()],
                column: "population".into(),
                value: Value::Int(777_777),
            },
        )
        .unwrap();
    assert_eq!(status, CorrectionStatus::Applied);
    let card = q.browse("cities", &[city.name.as_str().into()]).unwrap();
    assert!(card.contains("777777"), "{card}");
    // The contributor earned points and tops the leaderboard.
    let lb = q.users.leaderboard();
    assert_eq!(lb[0].0, "editor");
    assert!(lb[0].1 > 0);
}

#[test]
fn monitor_fires_when_a_correction_moves_its_answer() {
    let (mut q, corpus) = boot();
    let city = &corpus.truth.cities[0];
    q.register_monitor("max-pop", Query::scan("cities").aggregate(None, AggFn::Max, "population"));
    q.check_monitors(); // arm with the current answer
    q.users.register("editor", false).unwrap();
    for _ in 0..20 {
        q.users.record_contribution("editor", true).unwrap();
    }
    // Push one city far above every other population.
    let status = q
        .submit_correction(
            "editor",
            Correction {
                table: "cities".into(),
                key: vec![city.name.as_str().into()],
                column: "population".into(),
                value: Value::Int(90_000_000),
            },
        )
        .unwrap();
    assert_eq!(status, CorrectionStatus::Applied);
    // submit_correction re-checks monitors internally; the fire is in the log.
    let fired = q
        .dge
        .events()
        .iter()
        .filter(|e| matches!(e, quarry::core::DgeEvent::MonitorFired { monitor, .. } if monitor == "max-pop"))
        .count();
    assert_eq!(fired, 2, "armed once, fired once on the correction");
}

#[test]
fn untrusted_corrections_stay_pending() {
    let (mut q, corpus) = boot();
    q.users.register("rando", false).unwrap();
    let city = &corpus.truth.cities[1];
    let status = q
        .submit_correction(
            "rando",
            Correction {
                table: "cities".into(),
                key: vec![city.name.as_str().into()],
                column: "population".into(),
                value: Value::Int(1),
            },
        )
        .unwrap();
    assert!(matches!(status, CorrectionStatus::Pending { .. }));
    assert_eq!(q.feedback.len(), 1);
    // The stored value is untouched.
    let tx = q.db.begin();
    let row = q.db.get(tx, "cities", &[city.name.as_str().into()]).unwrap();
    q.db.commit(tx).unwrap();
    let pi = q.db.schema("cities").unwrap().column_index("population").unwrap();
    assert_ne!(row[pi], Value::Int(1));
}
