//! Differential soak: the serving layer must be a transparent transport.
//!
//! The same query/QDL workload is driven (a) directly through the
//! `Quarry` façade and (b) through `quarry_serve::Client` from four
//! concurrent threads against an in-process server, and every outcome —
//! rows, orderings, error kinds *and* messages — must be bit-identical.
//! The workload is restricted to idempotent pipelines and deterministic
//! reads, so its outcomes are independent of how the four client streams
//! interleave. A mid-soak `Checkpoint` plus a full server restart from
//! the WAL must recover a logically identical database.

use quarry::core::{Quarry, QuarryConfig, QuarryError, SharedQuarry};
use quarry::query::engine::{AggFn, Query};
use quarry::query::Predicate;
use quarry::serve::{Client, ClientError, ServeConfig, Server};
use quarry::storage::{Column, DataType, TableSchema, Value};
use quarry_corpus::{Corpus, CorpusConfig, NoiseConfig};
use std::time::Duration;

mod common;
use common::{dump, remove_db_files, tmpwal};

const PIPELINE: &str = r#"
PIPELINE cities FROM corpus
EXTRACT infobox, rules
WHERE attribute IN ("name", "state", "population", "founded")
RESOLVE BY name
STORE INTO cities KEY name
"#;

fn corpus() -> Corpus {
    Corpus::generate(&CorpusConfig { noise: NoiseConfig::none(), ..CorpusConfig::tiny(33) })
}

fn queries() -> Vec<Query> {
    vec![
        Query::scan("cities").aggregate(None, AggFn::Count, "name"),
        Query::scan("cities")
            .filter(vec![Predicate::Eq("state".into(), "Wisconsin".into())])
            .project(&["name", "population"]),
        Query::scan("cities").sort("population", true, Some(5)).project(&["name"]),
        Query::scan("cities").aggregate(Some("state"), AggFn::Max, "population"),
        // Deterministic failures: a missing table and an unknown column.
        Query::scan("ghost"),
        Query::scan("cities").filter(vec![Predicate::Eq("no_such_column".into(), Value::Null)]),
    ]
}

/// Render an outcome canonically. `Value`'s (and `f64`'s) `Debug` is
/// shortest-round-trip exact, so equal strings mean bit-equal results.
fn render_rows(columns: &[String], rows: &[Vec<Value>]) -> String {
    format!("ok:{columns:?}|{rows:?}")
}

fn facade_error(e: &QuarryError) -> String {
    let kind = match e {
        QuarryError::Parse(_) => "Parse",
        QuarryError::Pipeline(_) => "Pipeline",
        QuarryError::Storage(_) => "Storage",
        QuarryError::Query(_) => "Query",
        QuarryError::Corpus(_) => "Corpus",
        QuarryError::Integrate(_) => "Integrate",
        QuarryError::Lint(_) => "Lint",
    };
    format!("err:{kind}:{e}")
}

fn direct_outcome(q: &Quarry, query: &Query) -> String {
    match q.snapshot().query(query) {
        Ok(r) => render_rows(&r.columns, &r.rows),
        Err(e) => facade_error(&e),
    }
}

fn client_outcome(c: &mut Client, query: &Query) -> String {
    match c.query(query) {
        Ok((columns, rows)) => render_rows(&columns, &rows),
        Err(ClientError::Server { kind, message }) => format!("err:{kind:?}:{message}"),
        Err(other) => format!("transport:{other}"),
    }
}

/// The interleaving-independent half of a pipeline's stats (extractor
/// runs vs cache hits depend on which thread ran first; the stream and
/// stored rows do not).
fn stable_stats(
    extractions: u64,
    records: u64,
    entities: u64,
    rows_stored: u64,
) -> (u64, u64, u64, u64) {
    (extractions, records, entities, rows_stored)
}

#[test]
fn four_concurrent_clients_match_the_facade_bit_for_bit() {
    let corpus = corpus();

    // Reference: the façade, driven serially.
    let mut direct = Quarry::new(QuarryConfig::default()).unwrap();
    direct.ingest(corpus.docs.clone());
    let ref_stats = direct.run_pipeline(PIPELINE).unwrap();
    let ref_stable = stable_stats(
        ref_stats.extractions as u64,
        ref_stats.records as u64,
        ref_stats.entities as u64,
        ref_stats.rows_stored as u64,
    );
    let qs = queries();
    let ref_outcomes: Vec<String> = qs.iter().map(|q| direct_outcome(&direct, q)).collect();
    let (ref_hits, ref_cands) = direct.snapshot().keyword("population Wisconsin", 5);
    let ref_keyword = format!(
        "{:?}|{:?}",
        ref_hits.iter().map(|h| (h.doc.0, h.score)).collect::<Vec<_>>(),
        ref_cands
            .iter()
            .map(|c| (c.query.display(), c.score, c.explanation.clone()))
            .collect::<Vec<_>>()
    );
    let ref_explain = direct.snapshot().explain_query(&qs[1]).unwrap();
    // The reference workload itself is idempotent: re-running the
    // pipeline leaves every outcome unchanged.
    let again = direct.run_pipeline(PIPELINE).unwrap();
    assert_eq!(
        stable_stats(
            again.extractions as u64,
            again.records as u64,
            again.entities as u64,
            again.rows_stored as u64
        ),
        ref_stable
    );
    for (q, expect) in qs.iter().zip(&ref_outcomes) {
        assert_eq!(&direct_outcome(&direct, q), expect);
    }

    // Serve a WAL-backed instance of the same system.
    let wal = tmpwal("serve-differential");
    let mut served = Quarry::new(QuarryConfig::builder().wal_path(&wal).build()).unwrap();
    served.ingest(corpus.docs.clone());
    let server = Server::start(
        served,
        "127.0.0.1:0",
        ServeConfig { workers: 4, max_in_flight: 64, ..ServeConfig::default() },
    )
    .unwrap();
    let addr = server.local_addr();

    // Soak: four threads, same workload, with a mid-soak checkpoint.
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..4 {
            let qs = qs.clone();
            let ref_outcomes = ref_outcomes.clone();
            let ref_keyword = ref_keyword.clone();
            let ref_explain = ref_explain.clone();
            handles.push(scope.spawn(move || {
                let mut c = Client::connect_with(addr, Duration::from_secs(60)).unwrap();
                for round in 0..2 {
                    let stats = c.qdl(PIPELINE).unwrap();
                    assert_eq!(
                        stable_stats(
                            stats.extractions,
                            stats.records,
                            stats.entities,
                            stats.rows_stored
                        ),
                        ref_stable,
                        "thread {t} round {round}"
                    );
                    for (i, q) in qs.iter().enumerate() {
                        assert_eq!(
                            client_outcome(&mut c, q),
                            ref_outcomes[i],
                            "thread {t} round {round} query {i}"
                        );
                    }
                    // Mid-soak checkpoint: runs under the single-writer
                    // lock while concurrent reads keep executing against
                    // their pinned snapshots.
                    c.checkpoint().unwrap();
                    let (hits, cands) = c.keyword("population Wisconsin", 5).unwrap();
                    let got = format!(
                        "{:?}|{:?}",
                        hits.iter().map(|h| (h.doc, h.score)).collect::<Vec<_>>(),
                        cands
                            .iter()
                            .map(|c| (c.query.display(), c.score, c.explanation.clone()))
                            .collect::<Vec<_>>()
                    );
                    assert_eq!(got, ref_keyword, "thread {t} round {round}");
                    assert_eq!(c.explain(&qs[1]).unwrap(), ref_explain, "thread {t} round {round}");
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    });

    // Drain, reclaim the façade, and compare full logical state.
    let mut c = Client::connect(addr).unwrap();
    c.shutdown().unwrap();
    let served = server.join();
    let served_dump = dump(&served.db);
    assert_eq!(served_dump, dump(&direct.db), "served state must equal direct state");
    drop(served);

    // Restart from the WAL (checkpoint + suffix) and verify recovery.
    let mut recovered = Quarry::new(QuarryConfig::builder().wal_path(&wal).build()).unwrap();
    assert_eq!(dump(&recovered.db), served_dump, "restart must recover identical state");

    // The recovered system serves the same answers over the wire.
    recovered.ingest(corpus.docs.clone());
    let server = Server::start(recovered, "127.0.0.1:0", ServeConfig::default()).unwrap();
    let mut c = Client::connect(server.local_addr()).unwrap();
    for (q, expect) in qs.iter().zip(&ref_outcomes) {
        assert_eq!(&client_outcome(&mut c, q), expect, "post-restart query");
    }
    c.shutdown().unwrap();
    drop(server);
    remove_db_files(&wal);
}

/// The MVCC contract under a live writer, checked differentially: every
/// reader snapshot must equal a *serial replay* of the write history up
/// to its captured LSN.
///
/// A single writer commits a known sequence of inserts through
/// [`SharedQuarry::with_writer`], recording the write clock after each
/// commit. Reader threads concurrently capture snapshots (never touching
/// the writer lock) and run a count query twice per snapshot. Afterwards
/// every observation is checked against the history: the count seen at
/// LSN `L` is exactly the count the last write stamped `<= L` produced —
/// i.e. replaying the writes serially up to `L` reproduces the
/// snapshot's view bit for bit — and a held snapshot never drifts.
#[test]
fn concurrent_readers_serially_replay_at_their_captured_lsn() {
    const WRITES: i64 = 20;
    let q = Quarry::new(QuarryConfig::default()).unwrap();
    q.db.create_table(
        TableSchema::new("events", vec![Column::new("id", DataType::Int)], &["id"], &[]).unwrap(),
    )
    .unwrap();
    let shared = SharedQuarry::new(q);

    let count_query = Query::scan("events").aggregate(None, AggFn::Count, "id");
    let count = |snap: &quarry::core::Snapshot| -> i64 {
        match snap.query(&count_query).unwrap().scalar().cloned().unwrap() {
            Value::Int(n) => n,
            other => panic!("count returned {other:?}"),
        }
    };

    // (post-commit LSN, rows committed by then); entry 0 is the baseline.
    let mut history: Vec<(u64, i64)> = vec![(shared.snapshot().lsn(), 0)];
    let observations: Vec<(u64, i64, i64)> = std::thread::scope(|scope| {
        let shared = &shared;
        let readers: Vec<_> = (0..3)
            .map(|_| {
                scope.spawn(move || {
                    let mut seen = Vec::new();
                    let mut last_lsn = 0;
                    for _ in 0..40 {
                        let snap = shared.snapshot();
                        assert!(snap.lsn() >= last_lsn, "write clock went backwards");
                        last_lsn = snap.lsn();
                        // Two reads of one pinned session must agree even
                        // if the writer commits in between.
                        seen.push((snap.lsn(), count(&snap), count(&snap)));
                    }
                    seen
                })
            })
            .collect();
        for i in 0..WRITES {
            shared.with_writer(|q| q.db.insert_autocommit("events", vec![Value::Int(i)]).unwrap());
            history.push((shared.snapshot().lsn(), i + 1));
        }
        readers.into_iter().flat_map(|r| r.join().unwrap()).collect()
    });

    for (lsn, first, second) in observations {
        assert_eq!(first, second, "snapshot at LSN {lsn} drifted between reads");
        let expected = history.iter().rev().find(|(l, _)| *l <= lsn).expect("baseline covers").1;
        assert_eq!(
            first, expected,
            "snapshot at LSN {lsn} must equal serial replay of the first {expected} writes"
        );
    }
    // Sanity: the final state holds every write.
    assert_eq!(count(&shared.snapshot()), WRITES);
}
