//! Differential tests: every parallel entry point must be bit-identical
//! to its sequential counterpart at every thread count, and the
//! executor's instrumentation must report what actually ran.

use quarry::core::{Quarry, QuarryConfig};
use quarry::corpus::{Corpus, CorpusConfig, NoiseConfig};
use quarry::exec::{ExecPool, ExecReport};
use quarry::extract::pipeline::extract_all_with;
use quarry::extract::{extract_all, ExtractorSet};
use quarry::integrate::blocking::all_pairs;
use quarry::integrate::matcher::{decide, MatchConfig, Record};
use quarry::integrate::{score_pairs, SimCache};
use quarry::storage::Value;

fn corpus() -> Corpus {
    Corpus::generate(&CorpusConfig {
        noise: NoiseConfig::default(),
        duplicate_rate: 0.5,
        ..CorpusConfig::tiny(77)
    })
}

#[test]
fn parallel_extraction_is_bit_identical_to_sequential() {
    let c = corpus();
    let set = ExtractorSet::standard();
    let expected = extract_all(&c, &set);
    for threads in [1, 2, 4, 8] {
        let pool = ExecPool::new(threads).with_batch_size(3);
        let mut report = ExecReport::new();
        let got = extract_all_with(&c, &set, &pool, &mut report);
        assert_eq!(got, expected, "threads={threads}");
    }
}

#[test]
fn parallel_pair_scoring_is_bit_identical_to_sequential() {
    let c = corpus();
    // Build name records from ground truth so the matcher sees realistic
    // near-duplicate strings.
    let records: Vec<Record> = c
        .truth
        .people
        .iter()
        .enumerate()
        .map(|(i, p)| {
            Record::new(
                i,
                [
                    ("name", Value::Text(p.name.clone())),
                    ("birth_year", Value::Int(p.birth_year as i64)),
                ],
            )
        })
        .collect();
    let pairs = all_pairs(records.len());
    let cfg = MatchConfig::default();
    let expected: Vec<_> = pairs
        .iter()
        .map(|&(i, j)| {
            let (d, s) = decide(&records[i], &records[j], &cfg);
            ((i, j), d, s)
        })
        .collect();
    for threads in [1, 2, 4, 8] {
        let pool = ExecPool::new(threads).with_batch_size(5);
        let cache = SimCache::default();
        let mut report = ExecReport::new();
        let got = score_pairs(&records, &pairs, &cfg, &pool, Some(&cache), &mut report);
        assert_eq!(got, expected, "threads={threads}");
    }
}

#[test]
fn pipeline_results_identical_across_thread_counts() {
    let c = corpus();
    const SRC: &str = r#"
PIPELINE people FROM corpus
EXTRACT infobox, rules
WHERE attribute IN ("name", "birth_year", "employer", "residence")
RESOLVE BY name
STORE INTO people KEY name
"#;
    let mut reference: Option<(quarry::lang::ExecStats, Vec<Vec<Value>>)> = None;
    for threads in [1, 2, 4, 8] {
        let mut q = Quarry::new(QuarryConfig::builder().threads(threads).build()).unwrap();
        q.ingest(c.docs.clone());
        let stats = q.run_pipeline(SRC).unwrap();
        let rows = q.db.scan_autocommit("people").unwrap();
        match &reference {
            None => reference = Some((stats, rows)),
            Some((ref_stats, ref_rows)) => {
                assert_eq!(&stats, ref_stats, "stats diverged at threads={threads}");
                assert_eq!(&rows, ref_rows, "stored rows diverged at threads={threads}");
            }
        }
    }
}

#[test]
fn exec_report_counts_what_ran() {
    let c = corpus();
    let mut q = Quarry::new(QuarryConfig::builder().threads(2).build()).unwrap();
    q.ingest(c.docs.clone());
    let stats = q
        .run_pipeline(
            "PIPELINE p FROM corpus EXTRACT infobox RESOLVE BY name STORE INTO t KEY name",
        )
        .unwrap();
    let report = q.last_report();

    // The extract stage saw every (uncached) document.
    let extract_stage = report.stage("exec/extract:infobox").expect("extract stage recorded");
    assert_eq!(extract_stage.items, c.docs.len());
    assert!(extract_stage.elapsed.as_nanos() > 0);

    // Per-operator timing: one invocation per extractor run.
    assert_eq!(report.operators["infobox"].invocations, stats.extractor_runs);

    // Pair scoring was recorded, and the similarity cache accounted for
    // every kernel lookup.
    let score_stage = report.stage("integrate/score-pairs").expect("scoring stage recorded");
    assert_eq!(score_stage.items, stats.pairs_scored);
    assert!(
        report.counter("sim_cache_hits") + report.counter("sim_cache_misses") > 0,
        "similarity cache never consulted"
    );

    // A fully cached re-run fans out zero documents.
    q.run_pipeline("PIPELINE p FROM corpus EXTRACT infobox RESOLVE BY name STORE INTO t KEY name")
        .unwrap();
    let report = q.last_report();
    let extract_stage = report.stage("exec/extract:infobox").expect("stage still recorded");
    assert_eq!(extract_stage.items, 0, "cached run must not re-extract");
}

#[test]
fn structured_errors_convert_from_subsystems() {
    use quarry::core::QuarryError;
    use quarry::corpus::CorpusError;
    use quarry::integrate::IntegrateError;

    fn check_corpus(cfg: &CorpusConfig) -> Result<(), QuarryError> {
        cfg.validate()?;
        Ok(())
    }
    fn check_match(cfg: &MatchConfig) -> Result<(), QuarryError> {
        cfg.validate()?;
        Ok(())
    }

    let bad = CorpusConfig { duplicate_rate: 1.5, ..CorpusConfig::tiny(1) };
    assert!(matches!(
        check_corpus(&bad),
        Err(QuarryError::Corpus(CorpusError::InvalidRate { .. }))
    ));
    let bad =
        MatchConfig { match_threshold: 0.5, nonmatch_threshold: 0.6, ..MatchConfig::default() };
    assert!(matches!(
        check_match(&bad),
        Err(QuarryError::Integrate(IntegrateError::InvertedThresholds { .. }))
    ));

    // And the façade rejects an invalid generated-corpus request.
    let mut q = Quarry::new(QuarryConfig::default()).unwrap();
    let bad = CorpusConfig { duplicate_rate: -0.1, ..CorpusConfig::tiny(1) };
    assert!(matches!(q.ingest_generated(&bad), Err(QuarryError::Corpus(_))));
    let ok = q.ingest_generated(&CorpusConfig::tiny(5)).unwrap();
    assert_eq!(ok, q.docs().len());
}
