//! Failover correctness under the crash harness.
//!
//! A primary database runs a deterministic workload over a
//! fault-injecting storage backend while a replica tails its WAL over
//! loopback TCP (the real `quarry-serve` replication transport). For
//! every tested crash point k the primary's backend dies at operation k
//! mid-workload; the replica is then promoted and its full logical dump
//! must be **bit-identical** to a reference state at a *step boundary* —
//! the state just before or just after the step the crash interrupted,
//! never a hybrid. This is the replication twin of the recovery
//! differential in `durability.rs`: there the invariant holds for the
//! crashed node's own restart, here it must survive a network hop and a
//! promotion.
//!
//! The sweep covers every recorded operation by default (plus torn-write
//! variants); `QUARRY_FAILOVER_POINTS=n` bounds it to n evenly-spread
//! points — the checkpoint-publication ops, the reseed-critical window,
//! are always included.

use quarry::serve::replication::{ReplicationClient, ReplicationClientConfig};
use quarry::serve::ReplicationListener;
use quarry::storage::{
    Column, CrashPlan, DataType, Database, DurabilityMode, FaultBackend, Op, RealBackend,
    TableSchema, Value,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

mod common;
use common::{dump, remove_db_files, tmpwal};

type Step = fn(&Database) -> quarry::storage::Result<()>;

fn crew_schema() -> TableSchema {
    TableSchema::new(
        "crew",
        vec![
            Column::new("name", DataType::Text),
            Column::new("rank", DataType::Int),
            Column::nullable("ship", DataType::Text),
        ],
        &["name"],
        &[],
    )
    .unwrap()
}

fn member(name: &str, rank: i64, ship: &str) -> Vec<Value> {
    vec![name.into(), Value::Int(rank), ship.into()]
}

/// The shipped workload. Every step is one atomic unit — one committed
/// transaction, one DDL statement, or one checkpoint — so each step
/// boundary is a legal promotion target.
fn workload_steps() -> Vec<Step> {
    vec![
        |db| db.create_table(crew_schema()),
        |db| {
            let tx = db.begin();
            db.insert(tx, "crew", member("janeway", 1, "voyager"))?;
            db.insert(tx, "crew", member("tuvok", 3, "voyager"))?;
            db.insert(tx, "crew", member("kim", 5, "voyager"))?;
            db.commit(tx)
        },
        |db| db.create_index("crew", "rank"),
        |db| {
            let tx = db.begin();
            db.update(tx, "crew", &["kim".into()], member("kim", 4, "voyager"))?;
            db.delete(tx, "crew", &["tuvok".into()])?;
            db.commit(tx)
        },
        |db| {
            // Aborted work: no logical change, the log still grows.
            let tx = db.begin();
            db.insert(tx, "crew", member("ghost", 0, "nowhere"))?;
            db.abort(tx)
        },
        |db| db.checkpoint(),
        |db| {
            // Post-checkpoint step: the replica has just reseeded under
            // the new epoch; live shipping must resume correctly.
            let tx = db.begin();
            db.insert(tx, "crew", member("seven", 2, "voyager"))?;
            db.insert(tx, "crew", member("paris", 4, "voyager"))?;
            db.commit(tx)
        },
        |db| {
            let tx = db.begin();
            db.update(tx, "crew", &["seven".into()], member("seven", 1, "voyager"))?;
            db.commit(tx)
        },
    ]
}

/// Wait until the replica has applied and acked the primary's complete
/// WAL under the primary's current checkpoint epoch.
fn await_caught_up(client: &ReplicationClient, primary: &Database, deadline: Duration) {
    let until = Instant::now() + deadline;
    loop {
        let epoch = primary.checkpoint_epoch();
        let len = primary.wal_len();
        let pos = client.position();
        if pos.epoch == epoch && pos.offset >= len {
            return;
        }
        assert!(
            Instant::now() < until,
            "replica stuck at {pos:?}; primary epoch {epoch} len {len}"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Wait for the replica's applied position to stop moving: after the
/// primary's crash the tail may still deliver already-flushed frames;
/// promotion should happen after that drains, so the sweep also covers
/// post-step recovery targets.
fn await_settled(client: &ReplicationClient) {
    let mut last = client.position();
    let mut stable_since = Instant::now();
    let until = Instant::now() + Duration::from_secs(2);
    while Instant::now() < until {
        std::thread::sleep(Duration::from_millis(5));
        let now = client.position();
        if now == last {
            if stable_since.elapsed() > Duration::from_millis(40) {
                return;
            }
        } else {
            last = now;
            stable_since = Instant::now();
        }
    }
}

/// One crash case: run the workload on a primary whose backend dies at
/// op `k` (optionally tearing that write) while a live replica tails it,
/// then promote the replica and check its state against the references.
fn run_failover_case(k: u64, tear: Option<usize>, steps: &[Step], states: &[String], cum: &[u64]) {
    let pp = tmpwal(&format!("failover-primary-{k}-{}", tear.is_some()));
    let rp = tmpwal(&format!("failover-replica-{k}-{}", tear.is_some()));

    let plan = CrashPlan { crash_at: k, tear_bytes: tear };
    let fb = FaultBackend::with_plan(RealBackend, plan);
    let opened = Database::open_with(Arc::new(fb.clone()), &pp);

    let replica = Arc::new(Database::open(&rp).unwrap());
    let got = match opened {
        Err(_) => {
            // Crashed inside open: nothing was ever served or shipped.
            dump(&replica)
        }
        Ok(mut db) => {
            db.set_durability(DurabilityMode::Full);
            let db = Arc::new(db);
            let mut listener = ReplicationListener::start(Arc::clone(&db), "127.0.0.1:0").unwrap();
            let mut client = ReplicationClient::start(
                Arc::clone(&replica),
                listener.local_addr(),
                ReplicationClientConfig {
                    reconnect_attempts: 3,
                    backoff: Duration::from_millis(1),
                },
            );
            for step in steps {
                // The explicit sync makes every buffered byte visible to
                // the tail, so the barrier below can require full catch-up.
                if step(&db).and_then(|()| db.sync_wal()).is_err() {
                    break;
                }
                await_caught_up(&client, &db, Duration::from_secs(10));
            }
            assert!(fb.crashed(), "plan at op {k} of {} never fired", cum.last().unwrap());
            assert_eq!(fb.op_count(), k, "op stream diverged from the recording");
            await_settled(&client);
            client.promote().unwrap();
            listener.shutdown();
            dump(&replica)
        }
    };
    drop(replica);
    remove_db_files(&pp);
    remove_db_files(&rp);

    // cum[0] is the op count of opening the database, cum[i] the count
    // after step i; the crash hit the step containing op k.
    let s = cum.iter().position(|&c| c >= k).expect("k is within the recorded stream");
    let allowed: &[usize] = if s == 0 { &[0] } else { &[s - 1, s] };
    assert!(
        allowed.iter().any(|&j| states[j] == got),
        "crash at op {k} (step {s}, tear {tear:?}): promoted replica matches neither the \
         pre-step nor the post-step reference.\npromoted:\n{got}\npre:\n{}\npost:\n{}",
        &states[allowed[0]],
        &states[*allowed.last().unwrap()],
    );
}

#[test]
fn promoted_replica_recovers_to_a_step_boundary_at_every_crash_point() {
    let steps = workload_steps();

    // Reference states: the workload replayed on an in-memory database,
    // dumped after every step prefix.
    let reference = Database::in_memory();
    let mut states = vec![dump(&reference)];
    for step in &steps {
        step(&reference).unwrap();
        states.push(dump(&reference));
    }

    // Recording run (no replication attached — the listener performs no
    // mutating backend ops, so the op stream is identical either way).
    let p = tmpwal("failover-record");
    let rec = FaultBackend::recording(RealBackend);
    let mut db = Database::open_with(Arc::new(rec.clone()), &p).unwrap();
    db.set_durability(DurabilityMode::Full);
    let mut cum = vec![rec.op_count()];
    for step in &steps {
        step(&db).unwrap();
        db.sync_wal().unwrap(); // mirrored in the crash runs
        cum.push(rec.op_count());
    }
    let ops = rec.ops();
    let total = rec.op_count();
    assert_eq!(dump(&db), *states.last().unwrap(), "fault-free run must match the reference");
    drop(db);
    remove_db_files(&p);

    // Always test the checkpoint publication (rename) and the WAL reset
    // right after it: the window where the replica must reseed.
    let mut must_test: Vec<u64> = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        if let Op::Rename { .. } = op {
            must_test.push(i as u64 + 1);
            if i as u64 + 2 <= total {
                must_test.push(i as u64 + 2);
            }
        }
    }
    assert!(!must_test.is_empty(), "workload must exercise checkpoint publication");

    // Full sweep by default; QUARRY_FAILOVER_POINTS=n picks n
    // evenly-spread points (plus the must-test set) for bounded runs.
    let mut ks: Vec<u64> = match std::env::var("QUARRY_FAILOVER_POINTS") {
        Ok(v) if v == "full" => (1..=total).collect(),
        Ok(v) => {
            let n: u64 = v.parse().expect("QUARRY_FAILOVER_POINTS must be an integer or 'full'");
            let n = n.clamp(1, total);
            (1..=n).map(|i| (i * total) / n).collect()
        }
        Err(_) => (1..=total).collect(),
    };
    ks.extend(&must_test);
    ks.sort_unstable();
    ks.dedup();

    for &k in &ks {
        run_failover_case(k, None, &steps, &states, &cum);
    }

    // Torn-write variants: the crashing write persists half its bytes.
    // The flushed prefix of a frame stream is complete frames plus an
    // incomplete tail, which the replica must hold un-applied.
    let mut torn = 0;
    for &k in &ks {
        if let Op::Write { bytes, .. } = &ops[(k - 1) as usize] {
            if *bytes >= 2 {
                run_failover_case(k, Some(bytes / 2), &steps, &states, &cum);
                torn += 1;
            }
        }
    }
    assert!(torn > 0, "sweep must include at least one torn write");
}
