//! Router differential: a sharded cluster behind the router must answer
//! distributable workloads **bit-identically** to a single-node façade,
//! and the kill → promote → retarget choreography must keep the shard
//! serving its exact pre-failure state.
//!
//! Sums stay bit-identical across shardings because the workload uses
//! integer values far below 2^53: every partial sum is exactly
//! representable, so float addition order cannot change the result.

use quarry::cluster::{Cluster, ClusterConfig};
use quarry::core::{Quarry, QuarryConfig};
use quarry::query::engine::{AggFn, Predicate, Query};
use quarry::serve::{Client, ErrorKind, ServeConfig, Server};
use quarry::storage::{Column, DataType, TableSchema, Value};
use std::time::Duration;

mod common;
use common::tmpwal;

fn people_schema() -> TableSchema {
    TableSchema::new(
        "people",
        vec![
            Column::new("id", DataType::Int),
            Column::new("city", DataType::Text),
            Column::new("score", DataType::Int),
        ],
        &["id"],
        &[],
    )
    .unwrap()
}

fn rows() -> Vec<Vec<Value>> {
    (0..60i64)
        .map(|i| {
            let city = ["madison", "oakton", "princeton"][(i % 3) as usize];
            // Distinct scores so ordering by score is unambiguous.
            vec![Value::Int(i), city.into(), Value::Int(1000 + i * 7)]
        })
        .collect()
}

fn cluster_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join("quarry-int-tests")
        .join(format!("{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn single_node(name: &str) -> Server {
    let q = Quarry::new(QuarryConfig::builder().wal_path(tmpwal(name)).build()).unwrap();
    Server::start(q, "127.0.0.1:0", ServeConfig::default()).unwrap()
}

/// Run one query against both and demand byte-equal results.
fn assert_same(
    label: &str,
    router: &mut Client,
    single: &mut Client,
    q: &Query,
) -> (Vec<String>, Vec<Vec<Value>>) {
    let a = router.query(q).unwrap_or_else(|e| panic!("{label} via router: {e}"));
    let b = single.query(q).unwrap_or_else(|e| panic!("{label} single-node: {e}"));
    assert_eq!(a, b, "{label}: sharded answer diverged from single-node");
    a
}

#[test]
fn sharded_cluster_answers_distributable_queries_bit_identically() {
    let dir = cluster_dir("router-diff");
    let cluster = Cluster::start(
        &dir,
        ClusterConfig { shards: 3, replicas_per_shard: 0, ..Default::default() },
    )
    .unwrap();
    let single = single_node("router-diff-single");
    let mut rc = cluster.client().unwrap();
    let mut sc = Client::connect(single.local_addr()).unwrap();

    for c in [&mut rc, &mut sc] {
        c.create_table(people_schema()).unwrap();
        c.insert_rows("people", rows()).unwrap();
        c.create_index("people", "city").unwrap();
    }

    // Point read: the key filter routes to one owning shard, but the
    // fan-out answer must still be identical.
    for id in [0i64, 17, 42, 59] {
        let q = Query::scan("people").filter(vec![Predicate::Eq("id".into(), Value::Int(id))]);
        let (_, rows) = assert_same("point", &mut rc, &mut sc, &q);
        assert_eq!(rows.len(), 1);
    }

    // Sorted scans (unique sort keys): stable k-way merge vs one sort.
    let q = Query::scan("people").sort("id", false, None);
    let (_, all) = assert_same("sort-id", &mut rc, &mut sc, &q);
    assert_eq!(all.len(), 60);
    let q = Query::scan("people").sort("score", true, Some(10));
    assert_same("top10-score", &mut rc, &mut sc, &q);

    // Aggregates, global and grouped: COUNT sums counts, SUM sums exact
    // integer-valued floats, MIN/MAX compare.
    for agg in [AggFn::Count, AggFn::Sum, AggFn::Min, AggFn::Max] {
        let q = Query::scan("people").aggregate(None, agg, "score");
        assert_same(&format!("global-{agg:?}"), &mut rc, &mut sc, &q);
        let q = Query::scan("people").aggregate(Some("city"), agg, "score");
        assert_same(&format!("grouped-{agg:?}"), &mut rc, &mut sc, &q);
    }

    // Filtered aggregate over the secondary index path.
    let q = Query::scan("people")
        .filter(vec![Predicate::Eq("city".into(), Value::Text("oakton".into()))])
        .aggregate(None, AggFn::Count, "id");
    assert_same("filtered-count", &mut rc, &mut sc, &q);

    // Unsorted scans concatenate in shard order: same multiset, order
    // documented as topology-dependent.
    let (_, mut a) = rc.query(&Query::scan("people")).unwrap();
    let (_, mut b) = sc.query(&Query::scan("people")).unwrap();
    a.sort();
    b.sort();
    assert_eq!(a, b, "unsorted scan multiset diverged");

    // Non-distributable shapes are rejected up front, not answered wrong.
    let avg = Query::scan("people").aggregate(None, AggFn::Avg, "score");
    match rc.query(&avg) {
        Err(quarry::serve::ClientError::Server { kind: ErrorKind::Query, message }) => {
            assert!(message.contains("AVG"), "got: {message}");
        }
        other => panic!("AVG through the router should be rejected, got {other:?}"),
    }
    let join = Query::scan("people").join(Query::scan("people"), "id", "id");
    assert!(matches!(
        rc.query(&join),
        Err(quarry::serve::ClientError::Server { kind: ErrorKind::Query, .. })
    ));
    let inner_limit = Query::scan("people").sort("id", false, Some(3)).project(&["id"]);
    assert!(matches!(
        rc.query(&inner_limit),
        Err(quarry::serve::ClientError::Server { kind: ErrorKind::Query, .. })
    ));

    // Deletes partition by key exactly like inserts.
    let victims: Vec<Vec<Value>> = (0..30i64).map(|i| vec![Value::Int(i * 2)]).collect();
    rc.delete_rows("people", victims.clone()).unwrap();
    sc.delete_rows("people", victims).unwrap();
    let q = Query::scan("people").sort("id", false, None);
    let (_, rest) = assert_same("post-delete", &mut rc, &mut sc, &q);
    assert_eq!(rest.len(), 30);

    // Stats merges every shard under its own prefix, with per-shard LSNs.
    let stats = rc.stats().unwrap();
    for shard in 0..3 {
        assert!(
            stats.counters.contains_key(&format!("shard{shard}.lsn")),
            "missing shard{shard}.lsn in {:?}",
            stats.counters.keys().take(10).collect::<Vec<_>>()
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn replica_promotion_restores_service_with_identical_state() {
    let dir = cluster_dir("router-failover");
    let mut cluster = Cluster::start(
        &dir,
        ClusterConfig { shards: 3, replicas_per_shard: 1, ..Default::default() },
    )
    .unwrap();
    let mut c = cluster.client().unwrap();

    c.create_table(people_schema()).unwrap();
    c.insert_rows("people", rows()).unwrap();

    // Let every replica catch up, then remember each shard's exact state.
    for s in 0..3 {
        assert!(
            cluster.await_replicas_caught_up(s, Duration::from_secs(10)),
            "shard {s} replicas never caught up"
        );
    }
    let sorted = Query::scan("people").sort("id", false, None);
    let before = c.query(&sorted).unwrap();

    // Kill shard 1's primary: requests that need it now fail Unavailable.
    cluster.kill_primary(1);
    match c.query(&sorted) {
        Err(quarry::serve::ClientError::Server { kind: ErrorKind::Unavailable, .. }) => {}
        other => panic!("expected Unavailable with a dead shard, got {other:?}"),
    }

    // Promote its replica; the router is retargeted and the *full* data
    // set — including rows owned by the failed-over shard — is intact.
    cluster.promote(1, 0).unwrap();
    let after = c.query(&sorted).unwrap();
    assert_eq!(before, after, "post-promotion state diverged");

    // The promoted node accepts writes (it is no longer read-only).
    c.insert_rows("people", vec![vec![Value::Int(1000), "madison".into(), Value::Int(9)]]).unwrap();
    let (_, rows) = c.query(&sorted).unwrap();
    assert_eq!(rows.len(), 61);

    // Replica serving reads while tailing stays read-only for clients:
    // direct writes to a replica are rejected.
    let replica_addr = cluster.shards()[0].replicas[0].serve_addr();
    let mut rep = Client::connect(replica_addr).unwrap();
    match rep.insert_rows("people", vec![vec![Value::Int(2000), "x".into(), Value::Int(1)]]) {
        Err(quarry::serve::ClientError::Server { kind: ErrorKind::ReadOnly, .. }) => {}
        other => panic!("replica should reject writes, got {other:?}"),
    }

    cluster.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
