//! Mass collaboration: crowds of imperfect users curating entity matches.
//!
//! §3.2: "it may be highly beneficial to allow a multitude of users,
//! instead of just a single one, to be able to provide feedback, in a mass
//! collaboration fashion" — provided the system manages reputation. This
//! example resolves person duplicates ("David Smith" vs "D. Smith") three
//! ways: automatically, with a noisy crowd majority, and with
//! reputation-weighted voting that learns to discount unreliable users.
//!
//! Run with: `cargo run --example mass_collaboration`

use quarry::corpus::{Corpus, CorpusConfig, NoiseConfig};
use quarry::hi::oracle::panel;
use quarry::hi::{curate, Crowd, CurateConfig, ReputationTracker, SelectionPolicy, UncertainItem};
use quarry::integrate::matcher::{decide, MatchConfig, MatchDecision, Record};
use quarry::storage::Value;

fn main() {
    // People with many duplicate pages under name variants.
    let corpus = Corpus::generate(&CorpusConfig {
        seed: 99,
        n_people: 150,
        duplicate_rate: 0.5,
        noise: NoiseConfig { name_variant: 1.0, ..NoiseConfig::default() },
        ..CorpusConfig::default()
    });

    // Candidate pairs: person pages sharing a surname-ish block.
    let people = &corpus.truth.people;
    let mut items = Vec::new();
    let cfg = MatchConfig::default();
    for i in 0..people.len() {
        for j in i + 1..people.len() {
            let (a, b) = (&people[i], &people[j]);
            let sa = corpus.docs[a.doc.index()].title.clone();
            let sb = corpus.docs[b.doc.index()].title.clone();
            // Cheap block: same last word of the page title.
            if sa.split(' ').next_back() != sb.split(' ').next_back() {
                continue;
            }
            let rec = |id: usize, title: &str, p: &quarry::corpus::PersonFact| {
                Record::new(
                    id,
                    [
                        ("name", Value::Text(title.to_string())),
                        ("birth_year", Value::Int(p.birth_year as i64)),
                        ("employer", Value::Text(p.employer.clone())),
                    ],
                )
            };
            let (d, score) = decide(&rec(i, &sa, a), &rec(j, &sb, b), &cfg);
            items.push(UncertainItem {
                id: items.len(),
                prompt_left: sa,
                prompt_right: sb,
                auto_decision: d == MatchDecision::Match,
                auto_score: score,
                truth: a.entity == b.entity,
            });
        }
    }
    let auto: Vec<bool> = items.iter().map(|i| i.auto_decision).collect();
    println!("candidate pairs: {}", items.len());
    println!("automatic matcher accuracy:            {:.3}", accuracy(&items, &auto));

    // A crowd where 2 of 5 members are careless (40% error).
    let rates = [0.05, 0.4, 0.05, 0.4, 0.1];
    let budget = items.len() as u32 * 3;

    let mut crowd = Crowd::new(panel(5, &rates, 1));
    let majority = curate(
        &items,
        &mut crowd,
        CurateConfig {
            budget,
            votes_per_question: 3,
            policy: SelectionPolicy::UncertaintyFirst,
            reputation: None,
        },
    );
    println!(
        "crowd majority (3 votes, noisy users):  {:.3}  ({} overrides, {} budget)",
        accuracy(&items, &majority.decisions),
        majority.overrides,
        majority.spent
    );

    let mut crowd = Crowd::new(panel(5, &rates, 1));
    let weighted = curate(
        &items,
        &mut crowd,
        CurateConfig {
            budget,
            votes_per_question: 3,
            policy: SelectionPolicy::UncertaintyFirst,
            reputation: Some(ReputationTracker::new()),
        },
    );
    println!(
        "reputation-weighted voting:             {:.3}  ({} overrides)",
        accuracy(&items, &weighted.decisions),
        weighted.overrides
    );

    if let Some(rep) = &weighted.reputation {
        println!("\nlearned reliabilities (truth in parentheses):");
        for (uid, err) in rates.iter().enumerate() {
            let r = rep.reliability(quarry::hi::oracle::UserId(uid as u32));
            println!("  user {uid}: estimated {:.2} (true {:.2})", r.mean(), 1.0 - err);
        }
    }
}

fn accuracy(items: &[UncertainItem], decisions: &[bool]) -> f64 {
    items.iter().zip(decisions).filter(|(i, &d)| i.truth == d).count() as f64 / items.len() as f64
}
