//! Incremental, best-effort structure generation (§3.2's job-seeker story).
//!
//! "A user looking for a new job may start out extracting only monthly
//! temperatures from Wikipedia, as he or she only wants to do an average
//! temperature comparison across U.S. cities. Later if the user wants to
//! examine only cities with at least 500,000 people, then he or she may
//! want to also extract city populations, and so on."
//!
//! Run with: `cargo run --example incremental_exploration`

use quarry::core::IncrementalManager;
use quarry::corpus::{Corpus, CorpusConfig};
use quarry::lang::{ExecContext, ExtractorRegistry};
use quarry::query::engine::{execute, AggFn, Predicate, Query};
use quarry::storage::{Database, Value};

fn main() {
    let corpus =
        Corpus::generate(&CorpusConfig { seed: 11, n_cities: 60, ..CorpusConfig::default() });
    let registry = ExtractorRegistry::standard();
    let db = Database::in_memory();
    let mut ctx = ExecContext::new(&corpus.docs, &registry, &db);
    let mut mgr = IncrementalManager::new("cities", "name");
    let extractors = ["infobox", "rules"];

    // Step 1: the user only cares about July temperatures.
    let s1 = mgr
        .ensure(&["july_temp"], &extractors, &mut ctx)
        .expect("run")
        .expect("first run extracts");
    println!(
        "step 1: materialize july_temp          cost {:>7.1} units, {} rows",
        s1.cost_units, s1.rows_stored
    );
    let q = Query::scan("cities").aggregate(None, AggFn::Avg, "july_temp");
    let avg = execute(&db, &q).expect("query").scalar().and_then(Value::as_f64).expect("avg");
    println!("        average July temperature across cities: {avg:.1} °F");

    // Step 2: now filter to big cities — population is needed, on demand.
    let s2 = mgr
        .ensure(&["population"], &extractors, &mut ctx)
        .expect("run")
        .expect("extension extracts");
    println!(
        "step 2: extend with population          cost {:>7.1} units (marginal; cache hits {})",
        s2.cost_units, s2.cache_hits
    );
    let q = Query::scan("cities")
        .filter(vec![Predicate::Ge("population".into(), Value::Int(500_000))])
        .aggregate(None, AggFn::Avg, "july_temp");
    let avg_big =
        execute(&db, &q).expect("query").scalar().and_then(Value::as_f64).unwrap_or(f64::NAN);
    println!("        average July temperature, cities ≥ 500k people: {avg_big:.1} °F");

    // Step 3: a repeated need costs nothing.
    let s3 = mgr.ensure(&["july_temp", "population"], &extractors, &mut ctx).expect("run");
    assert!(s3.is_none(), "already covered");
    println!("step 3: repeat request                  cost     0.0 units (covered)");

    // One-shot comparison: extracting *everything* up front.
    let db2 = Database::in_memory();
    let registry2 = ExtractorRegistry::standard();
    let mut ctx2 = ExecContext::new(&corpus.docs, &registry2, &db2);
    let mut all = IncrementalManager::new("cities", "name");
    let every_attr: Vec<&str> = vec![
        "state",
        "population",
        "founded",
        "area_sq_mi",
        "january_temp",
        "february_temp",
        "march_temp",
        "april_temp",
        "may_temp",
        "june_temp",
        "july_temp",
        "august_temp",
        "september_temp",
        "october_temp",
        "november_temp",
        "december_temp",
    ];
    let s_all = all.ensure(&every_attr, &extractors, &mut ctx2).expect("run").expect("runs");
    println!("\none-shot everything:                    cost {:>7.1} units", s_all.cost_units);
    println!("incremental total for what was needed:  cost {:>7.1} units", mgr.total_cost);
}
