//! Quickstart: the whole paper in sixty lines.
//!
//! Generate a wiki-like corpus, bring up the end-to-end system, run one
//! declarative extraction pipeline, then answer the paper's motivating
//! question — "find the average temperature of Madison" — which keyword
//! search alone cannot.
//!
//! Run with: `cargo run --example quickstart`

use quarry::corpus::{Corpus, CorpusConfig};
use quarry::query::engine::{AggFn, Query};
use quarry::storage::Value;
use quarry::{Quarry, QuarryConfig};

fn main() {
    // 1. A slice of the (synthetic) Web: city/person/company/publication
    //    pages with infoboxes and prose. Ground truth comes along for free.
    let corpus = Corpus::generate(&CorpusConfig { seed: 7, ..CorpusConfig::default() });
    println!(
        "corpus: {} documents, {} bytes, {} true facts",
        corpus.docs.len(),
        corpus.total_bytes(),
        corpus.truth.fact_count()
    );

    // 2. Bring up the system and ingest the crawl.
    let mut quarry = Quarry::new(QuarryConfig::builder().build()).expect("system boots");
    quarry.ingest(corpus.docs.clone());

    // 3. Generate structure declaratively: IE + II in one QDL program.
    let stats = quarry
        .run_pipeline(
            r#"
PIPELINE city_facts
FROM corpus
EXTRACT infobox, rules
WHERE attribute IN ("name", "state", "population", "founded",
                    "january_temp", "july_temp")
RESOLVE BY name
STORE INTO cities KEY name
"#,
        )
        .expect("pipeline runs");
    println!(
        "pipeline: {} extractions → {} entities → {} rows stored",
        stats.extractions, stats.entities, stats.rows_stored
    );

    // 4. Exploit the structure through a read session pinned to the
    //    current state. Keyword search finds *pages*; the derived
    //    structure answers *questions*.
    let city = &corpus.truth.cities[0];
    let session = quarry.snapshot();
    let (hits, candidates) = session.keyword(&format!("average july_temp {}", city.name), 3);
    println!(
        "keyword search: {} page hits, {} suggested structured queries",
        hits.len(),
        candidates.len()
    );

    let q = Query::scan("cities")
        .filter(vec![quarry::query::Predicate::Eq("name".into(), city.name.as_str().into())])
        .aggregate(None, AggFn::Avg, "july_temp");
    let answer = session.query(&q).expect("query runs");
    let got = answer.scalar().and_then(Value::as_f64).expect("one number");
    println!(
        "Q: average July temperature in {}?  system: {:.1} °F   ground truth: {} °F",
        city.name, got, city.monthly_temp_f[6]
    );
    assert_eq!(got as i32, city.monthly_temp_f[6]);
    println!("quickstart OK");
}
