//! §6, "Beyond Unstructured Data": the same extract → verify → store shape
//! over *sensor* data.
//!
//! "Another example is sensor data from which we want to infer real-world
//! events (e.g., someone has entered the room). ... The end system then may
//! end up looking quite similar to the kind of systems we have discussed
//! for unstructured data."
//!
//! Extraction here is an event detector over motion streams (imperfect,
//! because sensors drop out and false-trigger); the HI loop verifies the
//! detector's uncertain events; the verified events land in the structured
//! store and are queried like any other structure.
//!
//! Run with: `cargo run --example beyond_text`

use quarry::corpus::sensor::{generate, SensorConfig, SensorData};
use quarry::hi::oracle::panel;
use quarry::hi::{curate, Crowd, CurateConfig, SelectionPolicy, UncertainItem};
use quarry::query::engine::{execute, AggFn, Query};
use quarry::storage::{Column, DataType, Database, TableSchema, Value};

/// A detected occupancy event with a detector confidence.
#[derive(Debug, Clone)]
struct Event {
    room: u32,
    enter: u32,
    leave: u32,
    confidence: f64,
}

/// Event extraction: a run of motion-positive samples becomes an occupancy
/// event; confidence reflects run length and dropout contamination — short
/// or gappy runs are exactly the ones worth human review.
fn detect(data: &SensorData, n_rooms: u32) -> Vec<Event> {
    let mut events = Vec::new();
    for room in 0..n_rooms {
        let readings: Vec<_> = data.room(room).collect();
        let mut run_start: Option<usize> = None;
        let mut dropouts = 0usize;
        for (i, r) in readings.iter().enumerate() {
            let active = match r.motion {
                Some(m) => m > 0,
                None => {
                    if run_start.is_some() {
                        dropouts += 1;
                    }
                    run_start.is_some() // a dropout inside a run keeps it open
                }
            };
            match (active, run_start) {
                (true, None) => {
                    run_start = Some(i);
                    dropouts = 0;
                }
                (false, Some(s)) => {
                    events.push(event_from_run(&readings, s, i, dropouts, room));
                    run_start = None;
                }
                _ => {}
            }
        }
        if let Some(s) = run_start {
            events.push(event_from_run(&readings, s, readings.len(), dropouts, room));
        }
    }
    events
}

fn event_from_run(
    readings: &[&quarry::corpus::sensor::Reading],
    s: usize,
    e: usize,
    dropouts: usize,
    room: u32,
) -> Event {
    let len = e - s;
    // Long clean runs are confident; 1-sample blips are mostly false triggers.
    let confidence = (0.3 + 0.1 * len as f64 - 0.1 * dropouts as f64).clamp(0.05, 0.95);
    Event { room, enter: readings[s].t, leave: readings[e - 1].t + 1, confidence }
}

fn is_true_event(data: &SensorData, ev: &Event) -> bool {
    // An event is correct when it overlaps a true occupancy interval by
    // more than half of its own length.
    let overlap: u32 = data
        .truth
        .iter()
        .filter(|o| o.room == ev.room)
        .map(|o| ev.leave.min(o.leave).saturating_sub(ev.enter.max(o.enter)))
        .sum();
    overlap * 2 > ev.leave - ev.enter
}

fn main() {
    let cfg =
        SensorConfig { seed: 6, n_rooms: 8, samples: 600, dropout: 0.03, false_trigger: 0.03 };
    let data = generate(&cfg);
    println!(
        "sensor streams: {} rooms × {} samples, {} true occupancy intervals",
        cfg.n_rooms,
        cfg.samples,
        data.truth.len()
    );

    // --- Extract events (imperfect, like IE over text). --------------------
    let events = detect(&data, cfg.n_rooms as u32);
    let auto_correct = events.iter().filter(|e| is_true_event(&data, e)).count();
    println!(
        "detector: {} events extracted, {} correct ({:.1}% precision)",
        events.len(),
        auto_correct,
        100.0 * auto_correct as f64 / events.len() as f64
    );

    // --- HI verification of uncertain events (same loop as for text). ------
    let items: Vec<UncertainItem> = events
        .iter()
        .enumerate()
        .map(|(i, ev)| UncertainItem {
            id: i,
            prompt_left: format!("room {} t={}..{}", ev.room, ev.enter, ev.leave),
            prompt_right: "occupied?".into(),
            auto_decision: ev.confidence >= 0.5,
            auto_score: ev.confidence,
            truth: is_true_event(&data, ev),
        })
        .collect();
    let mut crowd = Crowd::new(panel(3, &[0.05], 4));
    let report = curate(
        &items,
        &mut crowd,
        CurateConfig {
            budget: (items.len() * 3) as u32,
            votes_per_question: 3,
            policy: SelectionPolicy::UncertaintyFirst,
            reputation: None,
        },
    );
    let verified: Vec<&Event> =
        events.iter().zip(&report.decisions).filter(|(_, &keep)| keep).map(|(e, _)| e).collect();
    let kept_correct = verified.iter().filter(|e| is_true_event(&data, e)).count();
    println!(
        "after HI review ({} questions): {} events kept, {} correct ({:.1}% precision)",
        report.reviewed.len(),
        verified.len(),
        kept_correct,
        100.0 * kept_correct as f64 / verified.len().max(1) as f64
    );

    // --- Store and exploit, exactly like text-derived structure. -----------
    let db = Database::in_memory();
    db.create_table(
        TableSchema::new(
            "occupancy_events",
            vec![
                Column::new("room", DataType::Int),
                Column::new("enter_t", DataType::Int),
                Column::new("leave_t", DataType::Int),
                Column::new("duration", DataType::Int),
            ],
            &["room", "enter_t"],
            &[],
        )
        .expect("schema"),
    )
    .expect("ddl");
    for ev in &verified {
        let _ = db.insert_autocommit(
            "occupancy_events",
            vec![
                Value::Int(ev.room as i64),
                Value::Int(ev.enter as i64),
                Value::Int(ev.leave as i64),
                Value::Int((ev.leave - ev.enter) as i64),
            ],
        );
    }
    let q = Query::scan("occupancy_events").aggregate(Some("room"), AggFn::Sum, "duration");
    let r = execute(&db, &q).expect("query");
    println!("\nminutes occupied per room (from verified events):");
    for row in r.rows.iter().take(8) {
        println!("  room {}: {} minutes", row[0], row[1]);
    }
    let busiest = Query::scan("occupancy_events")
        .aggregate(Some("room"), AggFn::Sum, "duration")
        .sort("SUM(duration)", true, Some(1));
    let r = execute(&db, &busiest).expect("query");
    println!("busiest room: {} ({} minutes)", r.rows[0][0], r.rows[0][1]);
    println!("\nsame pipeline shape as for text: extract → verify with humans → store → query.");
}
