//! The paper's motivating scenario, end to end.
//!
//! §2: "With keyword search we cannot ask and obtain answers to questions
//! such as 'find the average March–September temperature in Madison,
//! Wisconsin', even though the monthly temperatures appear on the Madison
//! page." This example shows both sides: what keyword search returns, and
//! what the extracted structure answers — plus the guided path between
//! them (keyword → suggested query forms → structured answer).
//!
//! Run with: `cargo run --example wikipedia_temperatures`

use quarry::corpus::{Corpus, CorpusConfig};
use quarry::query::engine::{AggFn, Predicate, Query};
use quarry::storage::Value;
use quarry::{Quarry, QuarryConfig};

const MONTHS: [&str; 12] = [
    "january",
    "february",
    "march",
    "april",
    "may",
    "june",
    "july",
    "august",
    "september",
    "october",
    "november",
    "december",
];

fn main() {
    let corpus =
        Corpus::generate(&CorpusConfig { seed: 42, n_cities: 80, ..CorpusConfig::default() });
    let mut quarry = Quarry::new(QuarryConfig::builder().build()).expect("boot");
    quarry.ingest(corpus.docs.clone());

    // Extract every monthly temperature into a long-form table
    // (city, month, temp) via twelve attribute extractions.
    let month_attrs: Vec<String> = MONTHS.iter().map(|m| format!("\"{m}_temp\"")).collect();
    let src = format!(
        "PIPELINE temps FROM corpus\nEXTRACT infobox, rules\nWHERE attribute IN (\"name\", {})\nRESOLVE BY name\nSTORE INTO city_temps KEY name",
        month_attrs.join(", ")
    );
    let stats = quarry.run_pipeline(&src).expect("pipeline");
    println!("extracted {} rows of monthly temperatures", stats.rows_stored);

    let city = &corpus.truth.cities[0];

    // --- Mode 1: keyword search (what a 2009 search engine gives you). ---
    // All exploitation modes run on one read session pinned to the
    // post-pipeline state.
    let session = quarry.snapshot();
    let (hits, candidates) =
        session.keyword(&format!("average march september temperature {}", city.name), 5);
    println!("\nkeyword mode: top pages for the question:");
    for h in hits.iter().take(3) {
        let title = &corpus.docs[h.doc.index()].title;
        println!("  {:>6.2}  {}", h.score, title);
    }
    println!("  → the page *contains* the numbers, but no answer.");
    println!("  system suggests {} structured-query forms alongside.", candidates.len());

    // --- Mode 2: structured querying over the derived structure. ---
    // March..September = columns march_temp..september_temp; average them
    // by summing the per-month aggregates.
    let mut sum = 0.0;
    let range = &MONTHS[2..=8];
    for m in range {
        let q = Query::scan("city_temps")
            .filter(vec![Predicate::Eq("name".into(), city.name.as_str().into())])
            .aggregate(None, AggFn::Avg, &format!("{m}_temp"));
        let r = session.query(&q).expect("query");
        sum += r.scalar().and_then(Value::as_f64).expect("value");
    }
    let answer = sum / range.len() as f64;
    let truth = city.avg_temp(2, 8);
    println!("\nstructured mode: average March–September temperature in {}:", city.name);
    println!("  system: {answer:.2} °F   ground truth: {truth:.2} °F");
    assert!((answer - truth).abs() < 0.01, "exact structure ⇒ exact answer");

    // --- The seamless transition: choose a suggested form and run it. ---
    let (_, candidates) = session.keyword(&format!("average july_temp {}", city.name), 3);
    let top = &candidates[0];
    println!("\nguided mode: top suggested form: {}", top.query.display());
    let r = session.query(&top.query).expect("form runs");
    println!("  answer: {}", r.rows[0].last().expect("value"));

    let (gen, exploit) = quarry.dge.generation_exploitation_split();
    println!("\nDGE log: {gen} generation events, {exploit} exploitation events");
}
