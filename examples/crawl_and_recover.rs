//! The storage layer under its intended workloads.
//!
//! §4's storage argument, demonstrated live: daily crawl snapshots overlap,
//! so the diff-based store keeps 30 days in a fraction of the raw bytes;
//! the final structure lives in the transactional store, which recovers
//! exactly the committed work after a crash mid-batch.
//!
//! Run with: `cargo run --example crawl_and_recover`

use quarry::corpus::{Corpus, CorpusConfig, CrawlConfig, CrawlSimulator};
use quarry::storage::{Column, DataType, Database, SnapshotStore, TableSchema, Value};

fn main() {
    // --- Part 1: 30 daily snapshots into the delta store. -----------------
    let corpus = Corpus::generate(&CorpusConfig { seed: 5, ..CorpusConfig::default() });
    let crawl = CrawlConfig { seed: 6, days: 30, churn: 0.02, new_page_rate: 0.5 };
    let snapshots = CrawlSimulator::new(&corpus, crawl).run();

    let mut store = SnapshotStore::new(16);
    for snap in &snapshots {
        store.put_snapshot(snap.docs.iter().map(|d| (d.title.as_str(), d.text.as_str())));
    }
    let stats = store.stats();
    println!("crawl: {} snapshots of ~{} docs", snapshots.len(), snapshots[0].docs.len());
    println!(
        "snapshot store: {} logical bytes stored in {} ({}x compression)",
        stats.logical_bytes,
        stats.stored_bytes,
        stats.compression_ratio() as u64
    );
    // Any historical version reconstructs exactly.
    let title = &snapshots[0].docs[0].title;
    let day0 = store.get(title, 0).expect("day 0");
    assert_eq!(day0, snapshots[0].docs[0].text);
    println!("day-0 version of {title:?} reconstructs byte-exact");

    // --- Part 2: crash mid-batch, recover the committed prefix. -----------
    let wal = std::env::temp_dir().join(format!("quarry-example-{}.wal", std::process::id()));
    let _ = std::fs::remove_file(&wal);
    let schema = TableSchema::new(
        "cities",
        vec![Column::new("name", DataType::Text), Column::new("population", DataType::Int)],
        &["name"],
        &[],
    )
    .expect("schema");

    {
        let db = Database::open(&wal).expect("open");
        db.create_table(schema).expect("ddl");
        // Batch 1 commits.
        let tx = db.begin();
        for c in corpus.truth.cities.iter().take(10) {
            db.insert(tx, "cities", vec![c.name.as_str().into(), Value::Int(c.population as i64)])
                .expect("insert");
        }
        db.commit(tx).expect("commit");
        // Batch 2 is in flight when the process "dies".
        let tx = db.begin();
        for c in corpus.truth.cities.iter().skip(10).take(10) {
            db.insert(tx, "cities", vec![c.name.as_str().into(), Value::Int(c.population as i64)])
                .expect("insert");
        }
        // No commit: drop everything on the floor.
    }

    let db = Database::open(&wal).expect("recover");
    let rows = db.scan_autocommit("cities").expect("scan");
    println!("\nafter crash + recovery: {} rows (committed batch only)", rows.len());
    assert_eq!(rows.len(), 10, "exactly the committed prefix survives");
    println!("recovery restored exactly the committed prefix — no more, no less");
    let _ = std::fs::remove_file(&wal);
}
