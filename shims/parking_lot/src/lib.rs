//! Offline shim for `parking_lot` — `Mutex`/`RwLock`/`Condvar` with
//! parking_lot's no-poison API, implemented over std primitives.

use std::sync;

/// Mutex whose `lock()` returns the guard directly (no poison Result).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock; a poisoned std mutex is treated as unlocked,
    /// matching parking_lot's no-poisoning semantics.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// RwLock whose `read()`/`write()` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquire an exclusive lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Condition variable taking `&mut MutexGuard` like parking_lot's.
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// New condvar.
    pub const fn new() -> Condvar {
        Condvar(sync::Condvar::new())
    }

    /// Block until notified, releasing the guard while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // Temporarily move the guard out so std's `wait` can own it.
        replace_with(guard, |g| self.0.wait(g).unwrap_or_else(sync::PoisonError::into_inner));
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// Move-out/move-in on a `&mut` slot; aborts if `f` panics (the guard
/// cannot be duplicated or forged, so there is nothing safe to restore).
fn replace_with<T>(slot: &mut T, f: impl FnOnce(T) -> T) {
    struct Abort;
    impl Drop for Abort {
        fn drop(&mut self) {
            std::process::abort();
        }
    }
    let bomb = Abort;
    unsafe {
        let old = std::ptr::read(slot);
        let new = f(old);
        std::ptr::write(slot, new);
    }
    std::mem::forget(bomb);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(*r1 + *r2, 10);
        }
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        *pair.0.lock() = true;
        pair.1.notify_all();
        t.join().unwrap();
    }
}
