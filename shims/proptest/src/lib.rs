//! Offline shim for `proptest`: deterministic random testing without
//! shrinking.
//!
//! Covers the subset this workspace uses: range strategies, string-pattern
//! strategies (a mini regex sampler), tuples, `collection::vec`, `any`,
//! `prop_map`, `proptest!`/`prop_assert!`/`prop_assert_eq!`, and
//! `ProptestConfig::with_cases`. Failing cases report the error but are
//! not shrunk.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

pub mod pattern;

/// The RNG handed to strategies; deterministic per test function.
pub type TestRng = StdRng;

/// Error raised by `prop_assert!`-style macros inside a test case.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Build a failure with the given message.
    pub fn fail(msg: String) -> Self {
        TestCaseError(msg)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Runner configuration; only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Drives the case loop; panics on the first failing case (no shrinking).
pub struct TestRunner {
    config: ProptestConfig,
    rng: TestRng,
}

impl TestRunner {
    /// New runner with a fixed seed so failures reproduce run-to-run.
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner { config, rng: TestRng::seed_from_u64(0x9E37_79B9_7F4A_7C15) }
    }

    /// Run the property for the configured number of cases.
    pub fn run<F>(&mut self, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        for i in 0..self.config.cases {
            if let Err(e) = case(&mut self.rng) {
                panic!("proptest case {} of {} failed: {e}", i + 1, self.config.cases);
            }
        }
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform produced values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! numeric_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

numeric_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// String literals are regex-subset patterns (see [`pattern`]).
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        pattern::Pattern::compile(self).sample(rng)
    }
}

macro_rules! tuple_strategies {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

/// Full-domain strategies for `any::<T>()`.
pub trait Arbitrary: Sized {
    /// Strategy type covering the whole domain of `Self`.
    type Strategy: Strategy<Value = Self>;

    /// The full-domain strategy.
    fn arbitrary() -> Self::Strategy;
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = RangeInclusive<$t>;
            fn arbitrary() -> Self::Strategy {
                <$t>::MIN..=<$t>::MAX
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Coin-flip strategy backing `any::<bool>()`.
pub struct BoolStrategy;

impl Strategy for BoolStrategy {
    type Value = bool;

    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.gen_bool(0.5)
    }
}

impl Arbitrary for bool {
    type Strategy = BoolStrategy;

    fn arbitrary() -> Self::Strategy {
        BoolStrategy
    }
}

/// The strategy producing any value of `A`.
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Element-count bounds for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange { lo: r.start, hi: r.end.saturating_sub(1) }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange { lo: *r.start(), hi: *r.end() }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy: each element drawn from `element`, length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.hi <= self.size.lo {
                self.size.lo
            } else {
                rand::Rng::gen_range(rng, self.size.lo..=self.size.hi)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The glob import test modules use.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy, TestCaseError,
    };
}

// ---------- macros ----------

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

/// Fail the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left == right`\n  left: {l:?}\n right: {r:?}"
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left == right`\n  left: {l:?}\n right: {r:?}\n {}",
                format!($($fmt)+)
            )));
        }
    }};
}

/// Fail the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left != right`\n  both: {l:?}"
            )));
        }
    }};
}

/// Define property tests; each `fn` becomes a `#[test]` looping over
/// random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let mut runner = $crate::TestRunner::new($cfg);
            runner.run(|rng| {
                $(let $pat = $crate::Strategy::sample(&($strat), rng);)*
                #[allow(unused_mut)]
                let mut case = || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                };
                case()
            });
        }
        $crate::__proptest_fns!(($cfg); $($rest)*);
    };
    (($cfg:expr);) => {};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vecs_sample_in_bounds() {
        let mut runner = crate::TestRunner::new(ProptestConfig::with_cases(50));
        runner.run(|rng| {
            let x = Strategy::sample(&(3usize..9), rng);
            prop_assert!((3..9).contains(&x));
            let v = Strategy::sample(&crate::collection::vec(0i64..5, 2..6), rng);
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&e| (0..5).contains(&e)));
            Ok(())
        });
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        fn macro_generates_cases(a in 0u32..100, s in "[ab]{2,4}", f in 0.0f64..=1.0) {
            prop_assert!(a < 100);
            prop_assert!((2..=4).contains(&s.len()));
            prop_assert!(s.chars().all(|c| c == 'a' || c == 'b'));
            prop_assert!((0.0..=1.0).contains(&f), "f was {}", f);
        }

        fn tuples_and_maps_compose(pairs in crate::collection::vec((0usize..10, "[xy]"), 0..8)) {
            let total = pairs.len();
            let mapped = crate::collection::vec(0usize..3, 1..4).prop_map(|v| v.len());
            prop_assert!(total < 8);
            let _ = mapped;
        }
    }
}
