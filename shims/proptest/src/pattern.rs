//! Mini regex-subset sampler backing string strategies.
//!
//! Supports the constructs used by this workspace's property tests:
//! literals, classes `[a-z0-9_. ]` (ranges + literal chars + `\n`-style
//! escapes), groups `(...)`, the `\PC` printable-character class, and the
//! quantifiers `?`, `*`, `+`, `{n}`, `{m,n}`.

use crate::TestRng;
use rand::Rng;

/// Unbounded quantifiers (`*`, `+`) are capped at this many repeats.
const UNBOUNDED_CAP: u32 = 8;

#[derive(Debug, Clone)]
enum Node {
    Lit(char),
    /// Flattened set of candidate characters.
    Class(Vec<char>),
    /// `\PC`: any printable (non-control) character.
    Printable,
    Group(Vec<(Node, u32, u32)>),
}

/// A compiled pattern: a sequence of (node, min, max) repetitions.
#[derive(Debug, Clone)]
pub struct Pattern {
    seq: Vec<(Node, u32, u32)>,
}

/// Printable sample pool for `\PC`; mixes ASCII with multi-byte scalars so
/// byte-offset handling gets exercised.
const PRINTABLE_EXTRAS: &[char] = &['é', 'ß', 'ü', 'Ω', '中', '–', '¡', '☃'];

impl Pattern {
    /// Compile `src`, panicking on constructs outside the supported subset
    /// (a test-authoring error, not a runtime condition).
    pub fn compile(src: &str) -> Pattern {
        let chars: Vec<char> = src.chars().collect();
        let mut pos = 0usize;
        let seq = parse_seq(&chars, &mut pos, src);
        if pos != chars.len() {
            panic!("unbalanced pattern {src:?} at char {pos}");
        }
        Pattern { seq }
    }

    /// Draw one string matching the pattern.
    pub fn sample(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        sample_seq(&self.seq, rng, &mut out);
        out
    }
}

fn sample_seq(seq: &[(Node, u32, u32)], rng: &mut TestRng, out: &mut String) {
    for (node, lo, hi) in seq {
        let count = if hi <= lo { *lo } else { rng.gen_range(*lo..=*hi) };
        for _ in 0..count {
            sample_node(node, rng, out);
        }
    }
}

fn sample_node(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Lit(c) => out.push(*c),
        Node::Class(chars) => out.push(chars[rng.gen_range(0..chars.len())]),
        Node::Printable => {
            // Mostly ASCII printable, occasionally a multi-byte scalar.
            if rng.gen_bool(0.9) {
                out.push(rng.gen_range(0x20u32..0x7F) as u8 as char);
            } else {
                out.push(PRINTABLE_EXTRAS[rng.gen_range(0..PRINTABLE_EXTRAS.len())]);
            }
        }
        Node::Group(seq) => sample_seq(seq, rng, out),
    }
}

fn parse_seq(chars: &[char], pos: &mut usize, src: &str) -> Vec<(Node, u32, u32)> {
    let mut seq = Vec::new();
    while *pos < chars.len() && chars[*pos] != ')' {
        let node = parse_atom(chars, pos, src);
        let (lo, hi) = parse_quantifier(chars, pos, src);
        seq.push((node, lo, hi));
    }
    seq
}

fn parse_atom(chars: &[char], pos: &mut usize, src: &str) -> Node {
    match chars[*pos] {
        '(' => {
            *pos += 1;
            let inner = parse_seq(chars, pos, src);
            if chars.get(*pos) != Some(&')') {
                panic!("unclosed group in pattern {src:?}");
            }
            *pos += 1;
            Node::Group(inner)
        }
        '[' => {
            *pos += 1;
            let mut set = Vec::new();
            while *pos < chars.len() && chars[*pos] != ']' {
                let c = if chars[*pos] == '\\' {
                    *pos += 1;
                    escape_char(chars, pos, src)
                } else {
                    let c = chars[*pos];
                    *pos += 1;
                    c
                };
                // Range `a-z` (a trailing or leading '-' is a literal).
                if chars.get(*pos) == Some(&'-') && chars.get(*pos + 1).is_some_and(|&n| n != ']') {
                    let hi = chars[*pos + 1];
                    *pos += 2;
                    for v in (c as u32)..=(hi as u32) {
                        if let Some(ch) = char::from_u32(v) {
                            set.push(ch);
                        }
                    }
                } else {
                    set.push(c);
                }
            }
            if chars.get(*pos) != Some(&']') {
                panic!("unclosed class in pattern {src:?}");
            }
            *pos += 1;
            if set.is_empty() {
                panic!("empty class in pattern {src:?}");
            }
            Node::Class(set)
        }
        '\\' => {
            *pos += 1;
            if chars.get(*pos) == Some(&'P') && chars.get(*pos + 1) == Some(&'C') {
                *pos += 2;
                Node::Printable
            } else {
                Node::Lit(escape_char(chars, pos, src))
            }
        }
        '.' => {
            *pos += 1;
            Node::Printable
        }
        c => {
            *pos += 1;
            Node::Lit(c)
        }
    }
}

fn escape_char(chars: &[char], pos: &mut usize, src: &str) -> char {
    let c = *chars.get(*pos).unwrap_or_else(|| panic!("dangling escape in pattern {src:?}"));
    *pos += 1;
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        other => other, // \\, \., \-, \[ ...
    }
}

fn parse_quantifier(chars: &[char], pos: &mut usize, src: &str) -> (u32, u32) {
    match chars.get(*pos) {
        Some('?') => {
            *pos += 1;
            (0, 1)
        }
        Some('*') => {
            *pos += 1;
            (0, UNBOUNDED_CAP)
        }
        Some('+') => {
            *pos += 1;
            (1, UNBOUNDED_CAP)
        }
        Some('{') => {
            *pos += 1;
            let lo = parse_int(chars, pos, src);
            let hi = if chars.get(*pos) == Some(&',') {
                *pos += 1;
                parse_int(chars, pos, src)
            } else {
                lo
            };
            if chars.get(*pos) != Some(&'}') {
                panic!("unclosed quantifier in pattern {src:?}");
            }
            *pos += 1;
            (lo, hi)
        }
        _ => (1, 1),
    }
}

fn parse_int(chars: &[char], pos: &mut usize, src: &str) -> u32 {
    let start = *pos;
    while chars.get(*pos).is_some_and(|c| c.is_ascii_digit()) {
        *pos += 1;
    }
    if *pos == start {
        panic!("expected number in quantifier of pattern {src:?}");
    }
    chars[start..*pos].iter().collect::<String>().parse().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> TestRng {
        TestRng::seed_from_u64(7)
    }

    #[test]
    fn classes_ranges_and_quantifiers() {
        let p = Pattern::compile("[a-c_]{2,5}");
        let mut r = rng();
        for _ in 0..50 {
            let s = p.sample(&mut r);
            assert!((2..=5).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| matches!(c, 'a'..='c' | '_')), "{s:?}");
        }
    }

    #[test]
    fn groups_and_optionals() {
        let p = Pattern::compile("[a-z](-?[a-z]){0,5}");
        let mut r = rng();
        for _ in 0..50 {
            let s = p.sample(&mut r);
            assert!(!s.is_empty());
            assert!(!s.starts_with('-'));
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c == '-'));
        }
    }

    #[test]
    fn printable_class_excludes_controls() {
        let p = Pattern::compile("\\PC{0,40}");
        let mut r = rng();
        for _ in 0..50 {
            let s = p.sample(&mut r);
            assert!(!s.chars().any(char::is_control), "{s:?}");
        }
    }

    #[test]
    fn newline_escape_inside_and_outside_classes() {
        let p = Pattern::compile("([a-z ]{0,5}\n){1,3}");
        let mut r = rng();
        let s = p.sample(&mut r);
        assert!(s.ends_with('\n'));
        let p2 = Pattern::compile("[a-z .!?\n]{1,10}");
        let s2 = p2.sample(&mut r);
        assert!(s2.chars().all(|c| matches!(c, 'a'..='z' | ' ' | '.' | '!' | '?' | '\n')));
    }
}
