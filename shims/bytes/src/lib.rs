//! Offline shim for `bytes` — `Bytes` (cheaply clonable immutable buffer)
//! and `BytesMut` (growable buffer), the subset the storage crate uses.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// Immutable shared byte buffer.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Bytes {
        Bytes(Arc::from(&[][..]))
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes(Arc::from(data))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.0.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes(Arc::from(v))
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes(Arc::from(s))
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes(Arc::from(s.as_bytes()))
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes(Arc::from(s.into_bytes()))
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Bytes {
        Bytes(Arc::from(b.0))
    }
}

/// Growable byte buffer.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> BytesMut {
        BytesMut(Vec::new())
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.0.extend_from_slice(data);
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_round_trip() {
        let b = Bytes::copy_from_slice(b"alpha");
        assert_eq!(&*b, b"alpha");
        assert_eq!(b, Bytes::from("alpha"));
        assert_eq!(b.len(), 5);
        let c = b.clone();
        assert_eq!(c, b);
    }

    #[test]
    fn bytes_mut_builds_frames() {
        let mut m = BytesMut::with_capacity(16);
        m.extend_from_slice(&42u32.to_le_bytes());
        m.extend_from_slice(b"xy");
        assert_eq!(m.len(), 6);
        let frozen = m.freeze();
        assert_eq!(&frozen[4..], b"xy");
    }

    #[test]
    fn debug_escapes() {
        assert_eq!(format!("{:?}", Bytes::from("a\nb")), "b\"a\\nb\"");
    }
}
