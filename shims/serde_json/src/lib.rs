//! Offline shim for `serde_json`, backed by the `serde` shim's JSON tree.

#![forbid(unsafe_code)]

use serde::json;
use serde::{Deserialize, Serialize};

/// JSON (de)serialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(json::to_string(&value.to_json()))
}

/// Serialize to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserialize from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let tree = json::parse(s).map_err(Error)?;
    T::from_json(&tree).map_err(Error)
}

/// Deserialize from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error(e.to_string()))?;
    from_str(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn string_round_trip() {
        let v = vec![(1u32, "a".to_string()), (2, "b".to_string())];
        let s = to_string(&v).unwrap();
        assert_eq!(s, r#"[[1,"a"],[2,"b"]]"#);
        let back: Vec<(u32, String)> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn map_round_trip() {
        let mut m = BTreeMap::new();
        m.insert("k".to_string(), 3.25f64);
        let s = to_string(&m).unwrap();
        assert_eq!(s, r#"{"k":3.25}"#);
        let back: BTreeMap<String, f64> = from_str(&s).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn errors_are_reported() {
        let r: Result<Vec<u64>, Error> = from_str("{broken");
        assert!(r.is_err());
    }
}
