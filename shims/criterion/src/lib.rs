//! Offline shim for `criterion`: wall-clock micro-benchmarking with the
//! same macro/builder surface, minus statistical analysis and plotting.
//!
//! Each benchmark warms up, calibrates an iteration count per sample from
//! the warm-up timing, then times `sample_size` samples and reports the
//! median ns/iter with the min..max spread.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark harness configuration and entry point.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    /// `cargo test` runs harness=false bench targets with `--test`: run
    /// everything once, skip timing.
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
            test_mode,
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Total time budget for the timed samples.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Calibration time before sampling starts.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = self.make_bencher();
        f(&mut b);
        b.report(id);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = self.make_bencher();
        f(&mut b, input);
        b.report(&id.0);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string() }
    }

    fn make_bencher(&self) -> Bencher {
        Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            test_mode: self.test_mode,
            samples_ns: Vec::new(),
        }
    }
}

/// A group of benchmarks reported under a shared prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(2);
        self
    }

    /// Override the measurement time for this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.measurement_time = t;
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = self.criterion.make_bencher();
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Run one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = self.criterion.make_bencher();
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.0));
        self
    }

    /// Close the group (reporting is per-benchmark; nothing to flush).
    pub fn finish(self) {}
}

/// Benchmark identifier within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }

    /// Parameter-only form (the group supplies the name).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// How `iter_batched` amortizes setup; the shim times per-batch regardless.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// Fresh input every iteration.
    PerIteration,
}

/// Times closures handed to it by a benchmark function.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    test_mode: bool,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Time `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Warm-up doubles as calibration for iters-per-sample.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64;
        let sample_budget = self.measurement_time.as_nanos() as f64 / self.sample_size as f64;
        let iters = ((sample_budget / per_iter.max(1.0)) as u64).max(1);

        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples_ns.push(t0.elapsed().as_nanos() as f64 / iters as f64);
        }
    }

    /// Time `routine` on inputs built (untimed) by `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.test_mode {
            black_box(routine(setup()));
            return;
        }
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        let mut warm_ns: u128 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            warm_ns += t0.elapsed().as_nanos();
            warm_iters += 1;
        }
        let per_iter = warm_ns as f64 / warm_iters.max(1) as f64;
        let sample_budget = self.measurement_time.as_nanos() as f64 / self.sample_size as f64;
        let iters = ((sample_budget / per_iter.max(1.0)) as u64).max(1);

        for _ in 0..self.sample_size {
            let mut elapsed: u128 = 0;
            for _ in 0..iters {
                let input = setup();
                let t0 = Instant::now();
                black_box(routine(input));
                elapsed += t0.elapsed().as_nanos();
            }
            self.samples_ns.push(elapsed as f64 / iters as f64);
        }
    }

    fn report(&mut self, id: &str) {
        if self.test_mode {
            println!("{id:<50} ok (test mode)");
            return;
        }
        if self.samples_ns.is_empty() {
            println!("{id:<50} no samples recorded");
            return;
        }
        self.samples_ns.sort_by(|a, b| a.total_cmp(b));
        let median = self.samples_ns[self.samples_ns.len() / 2];
        let min = self.samples_ns[0];
        let max = self.samples_ns[self.samples_ns.len() - 1];
        println!("{id:<50} time: [{} {} {}]", fmt_ns(min), fmt_ns(median), fmt_ns(max));
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Define a benchmark group function; both the positional and the
/// `name/config/targets` struct forms are supported.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5))
    }

    #[test]
    fn bench_function_runs_routine() {
        let mut ran = 0u64;
        quick().bench_function("shim/self-test", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn groups_and_batched_iter_run() {
        let mut c = quick();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::from_parameter(3), &3u64, |b, &n| {
            b.iter_batched(|| vec![n; 4], |v| v.iter().sum::<u64>(), BatchSize::SmallInput)
        });
        group.finish();
    }
}
