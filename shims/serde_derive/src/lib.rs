//! Offline shim for `serde_derive`: hand-rolled `#[derive(Serialize)]` /
//! `#[derive(Deserialize)]` with no syn/quote dependency.
//!
//! Supports the shapes this workspace uses: non-generic structs (named,
//! tuple, unit) and enums (unit / newtype / tuple / struct variants),
//! generating serde's externally-tagged JSON representation against the
//! `serde` shim's `to_json`/`from_json` traits.

#![forbid(unsafe_code)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = Item::parse(input);
    item.serialize_impl().parse().expect("generated Serialize impl parses")
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = Item::parse(input);
    item.deserialize_impl().parse().expect("generated Deserialize impl parses")
}

// ---------- item model ----------

enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Body {
    Struct(Shape),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    body: Body,
}

// ---------- token-level parsing ----------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Cursor {
        Cursor { tokens: ts.into_iter().collect(), pos: 0 }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn skip_attributes(&mut self) {
        while matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            self.pos += 1; // '#'
            if matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '!') {
                self.pos += 1;
            }
            match self.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    self.pos += 1;
                }
                other => panic!("malformed attribute near {other:?}"),
            }
        }
    }

    fn skip_visibility(&mut self) {
        if matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
            self.pos += 1;
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                self.pos += 1; // pub(crate) / pub(super)
            }
        }
    }

    fn expect_ident(&mut self) -> String {
        match self.bump() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("expected identifier, found {other:?}"),
        }
    }

    /// Skip one type, honoring nested `<...>` (commas inside generics are
    /// not field separators). Groups are atomic token trees already.
    fn skip_type(&mut self) {
        let mut angle_depth = 0i32;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => {
                    angle_depth += 1;
                    self.pos += 1;
                }
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    angle_depth -= 1;
                    self.pos += 1;
                }
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => self.pos += 1,
            }
        }
    }
}

fn parse_named_fields(group: TokenStream) -> Vec<String> {
    let mut c = Cursor::new(group);
    let mut names = Vec::new();
    while c.peek().is_some() {
        c.skip_attributes();
        c.skip_visibility();
        names.push(c.expect_ident());
        match c.bump() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected ':' after field name, found {other:?}"),
        }
        c.skip_type();
        // Separator comma (if any).
        if matches!(c.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            c.pos += 1;
        }
    }
    names
}

fn count_tuple_fields(group: TokenStream) -> usize {
    let mut c = Cursor::new(group);
    let mut count = 0usize;
    while c.peek().is_some() {
        c.skip_attributes();
        c.skip_visibility();
        c.skip_type();
        count += 1;
        if matches!(c.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            c.pos += 1;
        }
    }
    count
}

fn parse_variants(group: TokenStream) -> Vec<Variant> {
    let mut c = Cursor::new(group);
    let mut variants = Vec::new();
    while c.peek().is_some() {
        c.skip_attributes();
        let name = c.expect_ident();
        let shape = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let fields = count_tuple_fields(g.stream());
                c.pos += 1;
                Shape::Tuple(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                c.pos += 1;
                Shape::Named(fields)
            }
            _ => Shape::Unit,
        };
        // Optional discriminant `= expr` (plain enums), then comma.
        if matches!(c.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            c.pos += 1;
            while let Some(t) = c.peek() {
                if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                    break;
                }
                c.pos += 1;
            }
        }
        if matches!(c.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            c.pos += 1;
        }
        variants.push(Variant { name, shape });
    }
    variants
}

impl Item {
    fn parse(input: TokenStream) -> Item {
        let mut c = Cursor::new(input);
        c.skip_attributes();
        c.skip_visibility();
        let kind = c.expect_ident();
        let name = c.expect_ident();
        if matches!(c.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
            panic!("serde shim derive does not support generic type {name}");
        }
        let body = match kind.as_str() {
            "struct" => match c.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Body::Struct(Shape::Named(parse_named_fields(g.stream())))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Body::Struct(Shape::Tuple(count_tuple_fields(g.stream())))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::Struct(Shape::Unit),
                other => panic!("unexpected struct body {other:?}"),
            },
            "enum" => match c.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Body::Enum(parse_variants(g.stream()))
                }
                other => panic!("unexpected enum body {other:?}"),
            },
            other => panic!("cannot derive serde traits for `{other}` items"),
        };
        Item { name, body }
    }

    // ---------- codegen ----------

    fn serialize_impl(&self) -> String {
        let name = &self.name;
        let body = match &self.body {
            Body::Struct(Shape::Unit) => "::serde::json::Json::Null".to_string(),
            Body::Struct(Shape::Tuple(1)) => "::serde::Serialize::to_json(&self.0)".to_string(),
            Body::Struct(Shape::Tuple(n)) => {
                let items: Vec<String> =
                    (0..*n).map(|i| format!("::serde::Serialize::to_json(&self.{i})")).collect();
                format!("::serde::json::Json::Arr(vec![{}])", items.join(", "))
            }
            Body::Struct(Shape::Named(fields)) => {
                obj_literal(fields.iter().map(|f| (f.clone(), format!("&self.{f}"))))
            }
            Body::Enum(variants) => {
                let arms: Vec<String> = variants
                    .iter()
                    .map(|v| {
                        let vn = &v.name;
                        match &v.shape {
                            Shape::Unit => format!(
                                "{name}::{vn} => ::serde::json::Json::Str(::std::string::String::from(\"{vn}\")),"
                            ),
                            Shape::Tuple(1) => format!(
                                "{name}::{vn}(x0) => ::serde::json::Json::Obj(vec![(::std::string::String::from(\"{vn}\"), ::serde::Serialize::to_json(x0))]),"
                            ),
                            Shape::Tuple(n) => {
                                let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                                let items: Vec<String> = (0..*n)
                                    .map(|i| format!("::serde::Serialize::to_json(x{i})"))
                                    .collect();
                                format!(
                                    "{name}::{vn}({b}) => ::serde::json::Json::Obj(vec![(::std::string::String::from(\"{vn}\"), ::serde::json::Json::Arr(vec![{i}]))]),",
                                    b = binds.join(", "),
                                    i = items.join(", ")
                                )
                            }
                            Shape::Named(fields) => {
                                let binds = fields.join(", ");
                                let inner = obj_literal(
                                    fields.iter().map(|f| (f.clone(), f.clone())),
                                );
                                format!(
                                    "{name}::{vn} {{ {binds} }} => ::serde::json::Json::Obj(vec![(::std::string::String::from(\"{vn}\"), {inner})]),"
                                )
                            }
                        }
                    })
                    .collect();
                format!("match self {{ {} }}", arms.join("\n"))
            }
        };
        format!(
            "#[automatically_derived]\n\
             impl ::serde::Serialize for {name} {{\n\
                 fn to_json(&self) -> ::serde::json::Json {{ {body} }}\n\
             }}"
        )
    }

    fn deserialize_impl(&self) -> String {
        let name = &self.name;
        let body = match &self.body {
            Body::Struct(Shape::Unit) => format!("::std::result::Result::Ok({name})"),
            Body::Struct(Shape::Tuple(1)) => {
                format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_json(v)?))")
            }
            Body::Struct(Shape::Tuple(n)) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_json(&arr[{i}])?"))
                    .collect();
                format!(
                    "let arr = v.as_arr().ok_or_else(|| ::std::string::String::from(\"expected array for {name}\"))?;\n\
                     if arr.len() != {n} {{ return ::std::result::Result::Err(::std::string::String::from(\"wrong arity for {name}\")); }}\n\
                     ::std::result::Result::Ok({name}({items}))",
                    items = items.join(", ")
                )
            }
            Body::Struct(Shape::Named(fields)) => format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                named_field_builders(name, "v", fields).join(", ")
            ),
            Body::Enum(variants) => {
                let unit_arms: Vec<String> = variants
                    .iter()
                    .filter(|v| matches!(v.shape, Shape::Unit))
                    .map(|v| {
                        format!("\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),", vn = v.name)
                    })
                    .collect();
                let data_arms: Vec<String> = variants
                    .iter()
                    .filter_map(|v| {
                        let vn = &v.name;
                        match &v.shape {
                            Shape::Unit => None,
                            Shape::Tuple(1) => Some(format!(
                                "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_json(inner)?)),"
                            )),
                            Shape::Tuple(n) => {
                                let items: Vec<String> = (0..*n)
                                    .map(|i| {
                                        format!("::serde::Deserialize::from_json(&arr[{i}])?")
                                    })
                                    .collect();
                                Some(format!(
                                    "\"{vn}\" => {{\n\
                                       let arr = inner.as_arr().ok_or_else(|| ::std::string::String::from(\"expected array for {name}::{vn}\"))?;\n\
                                       if arr.len() != {n} {{ return ::std::result::Result::Err(::std::string::String::from(\"wrong arity for {name}::{vn}\")); }}\n\
                                       ::std::result::Result::Ok({name}::{vn}({items}))\n\
                                     }}",
                                    items = items.join(", ")
                                ))
                            }
                            Shape::Named(fields) => Some(format!(
                                "\"{vn}\" => ::std::result::Result::Ok({name}::{vn} {{ {} }}),",
                                named_field_builders(&format!("{name}::{vn}"), "inner", fields)
                                    .join(", ")
                            )),
                        }
                    })
                    .collect();
                format!(
                    "match v {{\n\
                       ::serde::json::Json::Str(tag) => match tag.as_str() {{\n\
                         {unit}\n\
                         other => ::std::result::Result::Err(format!(\"unknown variant {{other:?}} for {name}\")),\n\
                       }},\n\
                       ::serde::json::Json::Obj(entries) if entries.len() == 1 => {{\n\
                         let (tag, inner) = &entries[0];\n\
                         match tag.as_str() {{\n\
                           {data}\n\
                           other => ::std::result::Result::Err(format!(\"unknown variant {{other:?}} for {name}\")),\n\
                         }}\n\
                       }}\n\
                       other => ::std::result::Result::Err(format!(\"expected variant encoding for {name}, got {{other:?}}\")),\n\
                     }}",
                    unit = unit_arms.join("\n"),
                    data = data_arms.join("\n"),
                )
            }
        };
        format!(
            "#[automatically_derived]\n\
             impl ::serde::Deserialize for {name} {{\n\
                 fn from_json(v: &::serde::json::Json) -> ::std::result::Result<Self, ::std::string::String> {{\n\
                     {body}\n\
                 }}\n\
             }}"
        )
    }
}

/// `Json::Obj(vec![("f", to_json(expr)), ...])`
fn obj_literal(fields: impl Iterator<Item = (String, String)>) -> String {
    let entries: Vec<String> = fields
        .map(|(name, expr)| {
            format!(
                "(::std::string::String::from(\"{name}\"), ::serde::Serialize::to_json({expr}))"
            )
        })
        .collect();
    format!("::serde::json::Json::Obj(vec![{}])", entries.join(", "))
}

/// `f: match src.get("f") { Some(x) => from_json(x)?, None => Err }` per field.
fn named_field_builders(owner: &str, src: &str, fields: &[String]) -> Vec<String> {
    fields
        .iter()
        .map(|f| {
            format!(
                "{f}: match {src}.get(\"{f}\") {{\n\
                   ::std::option::Option::Some(x) => ::serde::Deserialize::from_json(x)?,\n\
                   ::std::option::Option::None => return ::std::result::Result::Err(::std::string::String::from(\"missing field {f} for {owner}\")),\n\
                 }}"
            )
        })
        .collect()
}
