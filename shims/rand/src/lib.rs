//! Offline shim for `rand` 0.8 — the subset this workspace uses.
//!
//! Deterministic per seed (xoshiro256++ seeded through SplitMix64), but the
//! value streams are NOT those of the real crate's `StdRng`; only seeded
//! determinism is preserved.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: 64 random bits at a time.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be seeded.
pub trait SeedableRng: Sized {
    /// Build from a `u64` seed (the only constructor this workspace uses).
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Uniform sample from a range (`0..10`, `0.0..1.0`, `1..=3`, ...).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn unit_f64(bits: u64) -> f64 {
    // 53 high bits → [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that knows how to produce a uniform sample of itself.
pub trait SampleRange<T> {
    /// Draw one sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Element types `gen_range` can sample. The single blanket impl of
/// [`SampleRange`] below is what lets type inference unify `T` with the
/// range's element type, exactly like the real crate's `SampleUniform`.
pub trait SampleUniform: Sized {
    /// Uniform sample from `[lo, hi)` or `[lo, hi]`.
    fn sample_uniform<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform + Clone> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(self.start().clone(), self.end().clone(), true, rng)
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (hi as i128 - lo as i128 + i128::from(inclusive)) as u128;
                assert!(span > 0, "empty gen_range");
                // Widening multiply maps 64 random bits onto the span.
                let hit = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + hit) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                assert!(if inclusive { lo <= hi } else { lo < hi }, "empty gen_range");
                lo + (unit_f64(rng.next_u64()) as $t) * (hi - lo)
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// Named RNG types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for rand's `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the standard way to seed xoshiro.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000), b.gen_range(0..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10..60);
            assert!((10..60).contains(&v));
            let w = rng.gen_range(25..=55);
            assert!((25..=55).contains(&w));
            let f = rng.gen_range(64.0..70.0);
            assert!((64.0..70.0).contains(&f));
            let n = rng.gen_range(-50i64..50);
            assert!((-50..50).contains(&n));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
