//! The JSON tree, writer, and parser backing the serde shim.

use std::fmt::Write as _;

/// An owned JSON value.
///
/// Integers keep exact `i128` representation (covering the full `u64` and
/// `i64` ranges) so WAL records round-trip losslessly; floats use `f64`
/// with shortest-round-trip formatting.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Number without fraction/exponent.
    Int(i128),
    /// Number with fraction or exponent.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object; insertion-ordered (the writer emits in this order).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object entries, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(e) => Some(e),
            _ => None,
        }
    }

    /// Array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// String contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// Render a JSON tree to a compact string.
pub fn to_string(v: &Json) -> String {
    let mut out = String::new();
    write_json(v, &mut out);
    out
}

fn write_json(v: &Json, out: &mut String) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Json::Float(f) => {
            if f.is_finite() {
                // `{:?}` is shortest-round-trip; ensure a fraction or
                // exponent survives so the parser reads a Float back.
                let s = format!("{f:?}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                // serde_json refuses non-finite; a shim can pick null.
                out.push_str("null");
            }
        }
        Json::Str(s) => write_escaped(s, out),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json(item, out);
            }
            out.push(']');
        }
        Json::Obj(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_json(val, out);
            }
            out.push('}');
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON string into a tree.
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at offset {pos}", c as char))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at offset {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(entries));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let value = parse_value(b, pos)?;
                entries.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(entries));
                    }
                    _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
                }
            }
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(format!("unexpected byte {:?} at offset {pos}", *c as char)),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at offset {pos}"))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut float = false;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    if float {
        text.parse::<f64>().map(Json::Float).map_err(|e| format!("bad number {text:?}: {e}"))
    } else {
        text.parse::<i128>().map(Json::Int).map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let mut code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        *pos += 4;
                        // Surrogate pair.
                        if (0xD800..0xDC00).contains(&code)
                            && b.get(*pos + 1) == Some(&b'\\')
                            && b.get(*pos + 2) == Some(&b'u')
                        {
                            if let Some(hex2) = b.get(*pos + 3..*pos + 7) {
                                let hex2 = std::str::from_utf8(hex2).map_err(|e| e.to_string())?;
                                let low =
                                    u32::from_str_radix(hex2, 16).map_err(|e| e.to_string())?;
                                if (0xDC00..0xE000).contains(&low) {
                                    code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                    *pos += 6;
                                }
                            }
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    _ => return Err(format!("bad escape at offset {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte safe).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        for src in ["null", "true", "false", "0", "-12", "3.5", "\"hi\""] {
            let v = parse(src).unwrap();
            assert_eq!(to_string(&v), src);
        }
    }

    #[test]
    fn round_trip_structures() {
        let src = r#"{"a":[1,2.5,"x\n"],"b":{"k":null}}"#;
        let v = parse(src).unwrap();
        assert_eq!(to_string(&v), src);
    }

    #[test]
    fn big_integers_survive() {
        let v = parse(&u64::MAX.to_string()).unwrap();
        assert_eq!(v, Json::Int(u64::MAX as i128));
    }

    #[test]
    fn float_render_keeps_fraction_marker() {
        assert_eq!(to_string(&Json::Float(2.0)), "2.0");
        let back = parse("2.0").unwrap();
        assert_eq!(back, Json::Float(2.0));
    }

    #[test]
    fn unicode_and_escapes() {
        let v = parse(r#""café – ok""#).unwrap();
        assert_eq!(v, Json::Str("café – ok".to_string()));
    }

    #[test]
    fn garbage_rejected() {
        assert!(parse("not json").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
    }
}
