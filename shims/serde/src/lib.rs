//! Offline shim for `serde` — `Serialize`/`Deserialize` as traits over an
//! owned JSON tree ([`json::Json`]), plus the derive macros.
//!
//! This is *not* the serde data model: there is exactly one data format
//! (JSON), which is the only one this workspace uses (via `serde_json`).
//! Derived impls produce serde's externally-tagged enum representation so
//! the bytes on disk match what the real serde_json would write.

#![forbid(unsafe_code)]

pub mod json;

pub use serde_derive::{Deserialize, Serialize};

use json::Json;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::hash::Hash;

/// Serialize into a JSON tree.
pub trait Serialize {
    /// The JSON representation of `self`.
    fn to_json(&self) -> Json;
}

/// Deserialize from a JSON tree.
pub trait Deserialize: Sized {
    /// Rebuild from JSON; `Err` carries a human-readable reason.
    fn from_json(v: &Json) -> Result<Self, String>;
}

/// `serde::de` namespace stub: the owned-deserialization marker alias.
pub mod de {
    /// In this shim every `Deserialize` is owned.
    pub use crate::Deserialize as DeserializeOwned;
}

// ---------- primitive impls ----------

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Json {
                Json::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn from_json(v: &Json) -> Result<Self, String> {
                match v {
                    Json::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| format!("{i} out of range for {}", stringify!($t))),
                    Json::Float(f) if f.fract() == 0.0 => Ok(*f as $t),
                    other => Err(format!("expected integer, got {other:?}")),
                }
            }
        }
    )*};
}

int_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Json {
                Json::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_json(v: &Json) -> Result<Self, String> {
                match v {
                    Json::Float(f) => Ok(*f as $t),
                    Json::Int(i) => Ok(*i as $t),
                    other => Err(format!("expected number, got {other:?}")),
                }
            }
        }
    )*};
}

float_impls!(f32, f64);

impl Serialize for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json(v: &Json) -> Result<Self, String> {
        match v {
            Json::Bool(b) => Ok(*b),
            other => Err(format!("expected bool, got {other:?}")),
        }
    }
}

impl Serialize for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_json(v: &Json) -> Result<Self, String> {
        match v {
            Json::Str(s) => Ok(s.clone()),
            other => Err(format!("expected string, got {other:?}")),
        }
    }
}

impl Serialize for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_json(v: &Json) -> Result<Self, String> {
        match v {
            Json::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(format!("expected single-char string, got {other:?}")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

/// `&'static str` deserializes by leaking — acceptable for a test shim,
/// and required because `Extraction.extractor` is a `&'static str` field.
impl Deserialize for &'static str {
    fn from_json(v: &Json) -> Result<Self, String> {
        match v {
            Json::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(format!("expected string, got {other:?}")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(x) => x.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json(v: &Json) -> Result<Self, String> {
        match v {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_json(v: &Json) -> Result<Self, String> {
        T::from_json(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json(v: &Json) -> Result<Self, String> {
        match v {
            Json::Arr(items) => items.iter().map(T::from_json).collect(),
            other => Err(format!("expected array, got {other:?}")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(Serialize::to_json).collect())
    }
}

macro_rules! tuple_impls {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_json(&self) -> Json {
                Json::Arr(vec![$(self.$n.to_json()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_json(v: &Json) -> Result<Self, String> {
                match v {
                    Json::Arr(items) => {
                        let mut it = items.iter();
                        let out = ($(
                            $t::from_json(
                                it.next().ok_or_else(|| "tuple too short".to_string())?
                            )?,
                        )+);
                        if it.next().is_some() {
                            return Err("tuple too long".to_string());
                        }
                        Ok(out)
                    }
                    other => Err(format!("expected array (tuple), got {other:?}")),
                }
            }
        }
    )*};
}

tuple_impls! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

// ---------- map / set impls ----------

fn key_to_string<K: Serialize>(k: &K) -> String {
    match k.to_json() {
        Json::Str(s) => s,
        Json::Int(i) => i.to_string(),
        Json::Bool(b) => b.to_string(),
        other => panic!("unsupported JSON map key: {other:?}"),
    }
}

fn key_from_string<K: Deserialize>(s: &str) -> Result<K, String> {
    if let Ok(k) = K::from_json(&Json::Str(s.to_string())) {
        return Ok(k);
    }
    if let Ok(i) = s.parse::<i128>() {
        if let Ok(k) = K::from_json(&Json::Int(i)) {
            return Ok(k);
        }
    }
    if let Ok(b) = s.parse::<bool>() {
        if let Ok(k) = K::from_json(&Json::Bool(b)) {
            return Ok(k);
        }
    }
    Err(format!("cannot rebuild map key from {s:?}"))
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_json(&self) -> Json {
        // Deterministic output: sort by rendered key.
        let mut entries: Vec<(String, Json)> =
            self.iter().map(|(k, v)| (key_to_string(k), v.to_json())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Json::Obj(entries)
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_json(v: &Json) -> Result<Self, String> {
        match v {
            Json::Obj(entries) => entries
                .iter()
                .map(|(k, val)| Ok((key_from_string(k)?, V::from_json(val)?)))
                .collect(),
            other => Err(format!("expected object (map), got {other:?}")),
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_json(&self) -> Json {
        Json::Obj(self.iter().map(|(k, v)| (key_to_string(k), v.to_json())).collect())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_json(v: &Json) -> Result<Self, String> {
        match v {
            Json::Obj(entries) => entries
                .iter()
                .map(|(k, val)| Ok((key_from_string(k)?, V::from_json(val)?)))
                .collect(),
            other => Err(format!("expected object (map), got {other:?}")),
        }
    }
}

impl<T: Serialize, S> Serialize for HashSet<T, S> {
    fn to_json(&self) -> Json {
        let mut items: Vec<Json> = self.iter().map(Serialize::to_json).collect();
        items.sort_by_key(json::to_string);
        Json::Arr(items)
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn from_json(v: &Json) -> Result<Self, String> {
        match v {
            Json::Arr(items) => items.iter().map(T::from_json).collect(),
            other => Err(format!("expected array (set), got {other:?}")),
        }
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_json(v: &Json) -> Result<Self, String> {
        match v {
            Json::Arr(items) => items.iter().map(T::from_json).collect(),
            other => Err(format!("expected array (set), got {other:?}")),
        }
    }
}
