#!/usr/bin/env bash
# Run every experiment (E1–E13) in release mode, teeing the combined output
# to experiments_output.txt. Reproduces every number in EXPERIMENTS.md
# (wall-clock columns vary with the machine; shapes should not).
set -euo pipefail
cd "$(dirname "$0")"

BINARIES=(
  e1_structure_vs_keyword
  e2_hi_accuracy
  e3_incremental
  e4_storage
  e5_optimizer
  e6_mapreduce
  e7_debugger
  e8_translation
  e9_provenance
  e10_evolution
  e11_recognize_vs_generate
  e12_recovery
  e13_distant_supervision
)

cargo build -p quarry-bench --release --bins

{
  for bin in "${BINARIES[@]}"; do
    ./target/release/"$bin"
    echo
  done
} | tee experiments_output.txt
