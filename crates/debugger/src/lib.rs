//! The semantic debugger (blueprint Part VI).
//!
//! "If this module has learned that the monthly temperature of a city
//! cannot exceed 130 degrees, then it can flag an extracted temperature of
//! 135 as suspicious." That sentence is this crate's specification:
//!
//! - [`constraints`] — constraint kinds (numeric range, categorical domain,
//!   dominant type, functional dependency) and learning them from data;
//! - [`monitor`] — the debugger itself: learn on trusted data, check
//!   incoming tuples, flag suspicious cells, and score against injected
//!   corruption;
//! - [`health`] — the system-status side of Part VI: component heartbeats,
//!   metric bands, and an alert log for the system manager.

#![forbid(unsafe_code)]

pub mod constraints;
pub mod health;
pub mod monitor;

pub use constraints::{Constraint, LearnConfig};
pub use health::{HealthMonitor, HealthStatus};
pub use monitor::{SemanticDebugger, Suspicion};
