//! The semantic debugger: learn on trusted data, flag suspicious tuples.

use crate::constraints::{learn, Constraint, LearnConfig};
use quarry_storage::Value;
use serde::{Deserialize, Serialize};

/// One flagged cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Suspicion {
    /// Row index in the checked batch.
    pub row: usize,
    /// Attribute flagged.
    pub attribute: String,
    /// Human-readable reason.
    pub reason: String,
}

/// A trained semantic debugger for one table shape.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SemanticDebugger {
    columns: Vec<String>,
    constraints: Vec<Constraint>,
}

impl SemanticDebugger {
    /// Learn constraints from trusted (assumed-clean) serialized rows.
    pub fn learn(
        columns: &[String],
        trusted_rows: &[Vec<String>],
        cfg: &LearnConfig,
    ) -> SemanticDebugger {
        SemanticDebugger {
            columns: columns.to_vec(),
            constraints: learn(columns, trusted_rows, cfg),
        }
    }

    /// The learned constraints.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Check a batch of serialized rows; returns every suspicious cell.
    pub fn check(&self, rows: &[Vec<String>]) -> Vec<Suspicion> {
        let mut out = Vec::new();
        for (ri, row) in rows.iter().enumerate() {
            let view = |attr: &str| -> Option<Value> {
                let j = self.columns.iter().position(|c| c == attr)?;
                let cell = row.get(j)?;
                if cell.trim().is_empty() {
                    return None; // absent attribute: constraints don't apply
                }
                Some(Value::parse_lossy(cell))
            };
            for c in &self.constraints {
                if let Some(reason) = c.check(&view) {
                    out.push(Suspicion {
                        row: ri,
                        attribute: c.flagged_attribute().to_string(),
                        reason,
                    });
                }
            }
        }
        out
    }

    /// Precision/recall of `check(rows)` against a labeled corruption set:
    /// `is_bad(row, attribute)` says whether that cell was actually damaged.
    pub fn score(
        &self,
        rows: &[Vec<String>],
        is_bad: impl Fn(usize, &str) -> bool,
        n_bad: usize,
    ) -> DebuggerScore {
        let flags = self.check(rows);
        let mut unique: Vec<(usize, String)> =
            flags.iter().map(|s| (s.row, s.attribute.clone())).collect();
        unique.sort();
        unique.dedup();
        let tp = unique.iter().filter(|(r, a)| is_bad(*r, a)).count();
        let fp = unique.len() - tp;
        let precision = if unique.is_empty() { 1.0 } else { tp as f64 / unique.len() as f64 };
        let recall = if n_bad == 0 { 1.0 } else { tp as f64 / n_bad as f64 };
        DebuggerScore { precision, recall, flagged: unique.len(), tp, fp }
    }
}

/// Detector quality against labeled corruption.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DebuggerScore {
    /// Fraction of flags that were real errors.
    pub precision: f64,
    /// Fraction of real errors flagged.
    pub recall: f64,
    /// Distinct cells flagged.
    pub flagged: usize,
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use quarry_corpus::corruption::corrupt_table;
    use quarry_corpus::CorruptionConfig;

    fn columns() -> Vec<String> {
        vec!["city".into(), "state".into(), "temp".into(), "population".into()]
    }

    fn clean_rows(n: usize) -> Vec<Vec<String>> {
        let states = ["Wisconsin", "Iowa", "Ohio", "Texas"];
        (0..n)
            .map(|i| {
                vec![
                    format!("city{}", i % 25), // repeated cities give the FD support
                    states[(i % 25) % states.len()].to_string(),
                    format!("{}", 20 + (i % 25) * 3), // temps 20..92
                    format!("{}", 10_000 + (i % 25) * 3_000),
                ]
            })
            .collect()
    }

    #[test]
    fn paper_example_temperature_135_is_flagged() {
        // Training temps top out in the 90s; the learned range (with slack)
        // admits ~110 but flags 135 — the paper's own example.
        let dbg = SemanticDebugger::learn(&columns(), &clean_rows(100), &LearnConfig::default());
        let mut bad = clean_rows(1);
        bad[0][2] = "135".into();
        let flags = dbg.check(&bad);
        assert!(flags.iter().any(|s| s.attribute == "temp"), "expected temp flag, got {flags:?}");
        // 100 °F is within the slack band: no *range* flag (a learned FD
        // city→temp may still fire, which is correct behaviour — the value
        // genuinely contradicts the city's training-time temperature).
        let mut fine = clean_rows(1);
        fine[0][2] = "100".into();
        assert!(dbg.check(&fine).iter().all(|s| !s.reason.contains("outside learned range")));
    }

    #[test]
    fn clean_rows_raise_no_flags() {
        let dbg = SemanticDebugger::learn(&columns(), &clean_rows(100), &LearnConfig::default());
        let flags = dbg.check(&clean_rows(40));
        assert!(flags.is_empty(), "{flags:?}");
    }

    #[test]
    fn wrong_type_and_unknown_state_flagged() {
        let dbg = SemanticDebugger::learn(&columns(), &clean_rows(100), &LearnConfig::default());
        let mut rows = clean_rows(2);
        rows[0][3] = "unknown".into(); // type violation in population
        rows[1][1] = "Atlantis".into(); // out-of-domain state
        let flags = dbg.check(&rows);
        assert!(flags.iter().any(|s| s.row == 0 && s.attribute == "population"));
        assert!(flags.iter().any(|s| s.row == 1 && s.attribute == "state"));
    }

    #[test]
    fn fd_violation_flagged() {
        let dbg = SemanticDebugger::learn(&columns(), &clean_rows(100), &LearnConfig::default());
        let mut rows = clean_rows(1);
        // city0 maps to Wisconsin in training; claim Iowa.
        rows[0][0] = "city0".into();
        rows[0][1] = "Iowa".into();
        let flags = dbg.check(&rows);
        assert!(
            flags.iter().any(|s| s.attribute == "state" && s.reason.contains("FD")),
            "{flags:?}"
        );
    }

    #[test]
    fn detector_scores_well_on_injected_corruption() {
        let dbg = SemanticDebugger::learn(&columns(), &clean_rows(200), &LearnConfig::default());
        let mut rows = clean_rows(120);
        let log = corrupt_table(
            &mut rows,
            &[("city", false), ("state", false), ("temp", true), ("population", true)],
            CorruptionConfig { seed: 5, rate: 0.05 },
        );
        assert!(!log.is_empty());
        let score = dbg.score(&rows, |r, a| log.is_corrupted(r, a), log.len());
        assert!(score.recall > 0.5, "recall {:.3}", score.recall);
        assert!(score.precision > 0.6, "precision {:.3}", score.precision);
    }

    #[test]
    fn score_handles_no_flags_and_no_errors() {
        let dbg = SemanticDebugger::learn(&columns(), &clean_rows(50), &LearnConfig::default());
        let rows = clean_rows(10);
        let s = dbg.score(&rows, |_, _| false, 0);
        assert_eq!(s.precision, 1.0);
        assert_eq!(s.recall, 1.0);
        assert_eq!(s.flagged, 0);
    }
}
