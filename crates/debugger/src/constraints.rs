//! Constraint kinds and constraint learning.

use quarry_storage::{DataType, Value};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// A learned data-quality constraint over one or two attributes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Constraint {
    /// Numeric values of `attribute` must fall within `[lo, hi]`.
    NumericRange {
        /// Constrained attribute.
        attribute: String,
        /// Lower bound (with slack).
        lo: f64,
        /// Upper bound (with slack).
        hi: f64,
    },
    /// Values of `attribute` must come from a closed set.
    CategoricalDomain {
        /// Constrained attribute.
        attribute: String,
        /// Allowed values (lowercased).
        domain: BTreeSet<String>,
    },
    /// Values of `attribute` must parse as this type.
    TypeIs {
        /// Constrained attribute.
        attribute: String,
        /// Required type.
        dtype: DataType,
    },
    /// `lhs` functionally determines `rhs`: rows agreeing on `lhs` must
    /// agree on `rhs`.
    FunctionalDependency {
        /// Determinant attribute.
        lhs: String,
        /// Dependent attribute.
        rhs: String,
        /// The lhs→rhs mapping observed on trusted data.
        mapping: BTreeMap<String, String>,
    },
}

impl Constraint {
    /// The attribute a violation of this constraint points at.
    pub fn flagged_attribute(&self) -> &str {
        match self {
            Constraint::NumericRange { attribute, .. }
            | Constraint::CategoricalDomain { attribute, .. }
            | Constraint::TypeIs { attribute, .. } => attribute,
            Constraint::FunctionalDependency { rhs, .. } => rhs,
        }
    }

    /// Check one row (attribute → value view). Returns a reason when
    /// violated.
    pub fn check(&self, row: &dyn Fn(&str) -> Option<Value>) -> Option<String> {
        match self {
            Constraint::NumericRange { attribute, lo, hi } => {
                let v = row(attribute)?;
                let x = v.as_f64()?;
                if x < *lo || x > *hi {
                    Some(format!("{attribute} = {x} outside learned range [{lo:.1}, {hi:.1}]"))
                } else {
                    None
                }
            }
            Constraint::CategoricalDomain { attribute, domain } => {
                let v = row(attribute)?;
                let s = v.to_string().to_lowercase();
                if domain.contains(&s) {
                    None
                } else {
                    Some(format!(
                        "{attribute} = {s:?} not in learned domain ({} values)",
                        domain.len()
                    ))
                }
            }
            Constraint::TypeIs { attribute, dtype } => {
                let v = row(attribute)?;
                if v.is_null() || v.fits(*dtype) {
                    None
                } else {
                    Some(format!("{attribute} = {v} is not {dtype}"))
                }
            }
            Constraint::FunctionalDependency { lhs, rhs, mapping } => {
                let l = row(lhs)?.to_string();
                let r = row(rhs)?.to_string();
                match mapping.get(&l) {
                    Some(expect) if expect != &r => Some(format!(
                        "FD {lhs}→{rhs} violated: {lhs}={l} implies {rhs}={expect}, found {r}"
                    )),
                    _ => None,
                }
            }
        }
    }
}

/// Knobs for constraint learning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LearnConfig {
    /// Slack added around observed numeric ranges, as a fraction of the
    /// observed spread (paper example: temperatures observed up to ~110
    /// should admit 115 but flag 135).
    pub range_slack: f64,
    /// Maximum distinct values for an attribute to count as categorical.
    pub max_domain: usize,
    /// Minimum fraction of values that must parse as a type to learn a
    /// type constraint.
    pub type_majority: f64,
    /// Minimum distinct lhs values for an FD to be trusted.
    pub fd_min_support: usize,
}

impl Default for LearnConfig {
    fn default() -> Self {
        LearnConfig { range_slack: 0.25, max_domain: 40, type_majority: 0.95, fd_min_support: 3 }
    }
}

/// Learn constraints for each attribute from trusted rows.
///
/// `columns` names the attributes; `rows[i][j]` is attribute `columns[j]`
/// of row `i`, serialized (learning runs upstream of typing, on extraction
/// output).
pub fn learn(columns: &[String], rows: &[Vec<String>], cfg: &LearnConfig) -> Vec<Constraint> {
    let mut out = Vec::new();
    let n = rows.len();
    if n == 0 {
        return out;
    }
    for (j, col) in columns.iter().enumerate() {
        // Empty cells mean "attribute absent for this row" (NULLs in a
        // sparse extracted table); constraints describe present values.
        let values: Vec<&str> =
            rows.iter().map(|r| r[j].as_str()).filter(|v| !v.trim().is_empty()).collect();
        if values.is_empty() {
            continue;
        }
        let n = values.len();
        let numeric: Vec<f64> =
            values.iter().filter_map(|v| v.trim().parse::<f64>().ok()).collect();
        let numeric_frac = numeric.len() as f64 / n as f64;

        if numeric_frac >= cfg.type_majority {
            out.push(Constraint::TypeIs { attribute: col.clone(), dtype: DataType::Float });
            // Robust range: trim ~2% (at least one value when n ≥ 5) from
            // each end before applying slack, so that learning on data that
            // already contains a gross outlier still brackets the bulk —
            // otherwise a min/max range could never flag anything it was
            // trained on.
            let mut sorted = numeric.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            let trim = if sorted.len() >= 5 {
                ((sorted.len() as f64 * 0.02).ceil() as usize).max(1)
            } else {
                0
            };
            let lo = sorted[trim];
            let hi = sorted[sorted.len() - 1 - trim];
            let spread = (hi - lo).max(hi.abs().max(lo.abs()) * 0.05).max(1.0);
            out.push(Constraint::NumericRange {
                attribute: col.clone(),
                lo: lo - cfg.range_slack * spread,
                hi: hi + cfg.range_slack * spread,
            });
        } else {
            let distinct: BTreeSet<String> = values.iter().map(|v| v.to_lowercase()).collect();
            if distinct.len() <= cfg.max_domain && (distinct.len() as f64) < 0.5 * n as f64 {
                out.push(Constraint::CategoricalDomain {
                    attribute: col.clone(),
                    domain: distinct,
                });
            }
        }
    }
    // Single-attribute FDs with enough support and no violations.
    for (a, ca) in columns.iter().enumerate() {
        for (b, cb) in columns.iter().enumerate() {
            if a == b {
                continue;
            }
            let mut mapping: BTreeMap<String, String> = BTreeMap::new();
            let mut holds = true;
            let mut considered = 0usize;
            for r in rows {
                let l = r[a].clone();
                let rv = r[b].clone();
                if l.trim().is_empty() || rv.trim().is_empty() {
                    continue; // absent attributes carry no FD evidence
                }
                considered += 1;
                match mapping.get(&l) {
                    Some(prev) if prev != &rv => {
                        holds = false;
                        break;
                    }
                    Some(_) => {}
                    None => {
                        mapping.insert(l, rv);
                    }
                }
            }
            // An FD where every lhs is unique is vacuous (a key, not a
            // dependency) — require repeated lhs evidence.
            let repeats = considered > mapping.len();
            if holds && repeats && mapping.len() >= cfg.fd_min_support {
                out.push(Constraint::FunctionalDependency {
                    lhs: ca.clone(),
                    rhs: cb.clone(),
                    mapping,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view<'a>(pairs: &'a [(&'a str, Value)]) -> impl Fn(&str) -> Option<Value> + 'a {
        move |a| pairs.iter().find(|(k, _)| *k == a).map(|(_, v)| v.clone())
    }

    #[test]
    fn learns_numeric_range_with_slack() {
        let cols = vec!["temp".to_string()];
        let rows: Vec<Vec<String>> = (20..=110).step_by(10).map(|t| vec![t.to_string()]).collect();
        let cs = learn(&cols, &rows, &LearnConfig::default());
        let range = cs
            .iter()
            .find_map(|c| match c {
                Constraint::NumericRange { lo, hi, .. } => Some((*lo, *hi)),
                _ => None,
            })
            .expect("range learned");
        // The paper example: 115 inside slack, 135 outside.
        assert!(range.1 >= 115.0, "{range:?}");
        assert!(range.1 < 135.0, "{range:?}");
        let c = cs.iter().find(|c| matches!(c, Constraint::NumericRange { .. })).unwrap();
        assert!(c.check(&view(&[("temp", Value::Int(115))])).is_none());
        assert!(c.check(&view(&[("temp", Value::Int(135))])).is_some());
        assert!(c.check(&view(&[("temp", Value::Int(-200))])).is_some());
    }

    #[test]
    fn learns_categorical_domain() {
        let cols = vec!["state".to_string()];
        let mut rows = Vec::new();
        for _ in 0..10 {
            for s in ["Wisconsin", "Iowa", "Ohio"] {
                rows.push(vec![s.to_string()]);
            }
        }
        let cs = learn(&cols, &rows, &LearnConfig::default());
        let dom = cs.iter().find(|c| matches!(c, Constraint::CategoricalDomain { .. })).unwrap();
        assert!(dom.check(&view(&[("state", Value::Text("Iowa".into()))])).is_none());
        assert!(
            dom.check(&view(&[("state", Value::Text("iowa".into()))])).is_none(),
            "case folded"
        );
        assert!(dom.check(&view(&[("state", Value::Text("Atlantis".into()))])).is_some());
    }

    #[test]
    fn high_cardinality_text_learns_no_domain() {
        let cols = vec!["name".to_string()];
        let rows: Vec<Vec<String>> = (0..100).map(|i| vec![format!("name{i}")]).collect();
        let cs = learn(&cols, &rows, &LearnConfig::default());
        assert!(cs.iter().all(|c| !matches!(c, Constraint::CategoricalDomain { .. })));
    }

    #[test]
    fn learns_type_constraint_and_flags_wrong_type() {
        let cols = vec!["population".to_string()];
        let rows: Vec<Vec<String>> = (0..50).map(|i| vec![format!("{}", 1000 * (i + 1))]).collect();
        let cs = learn(&cols, &rows, &LearnConfig::default());
        let ty = cs.iter().find(|c| matches!(c, Constraint::TypeIs { .. })).unwrap();
        assert!(ty.check(&view(&[("population", Value::Int(5))])).is_none());
        assert!(ty.check(&view(&[("population", Value::Text("unknown".into()))])).is_some());
    }

    #[test]
    fn learns_fd_with_support() {
        let cols = vec!["city".to_string(), "state".to_string()];
        let mut rows = Vec::new();
        for _ in 0..5 {
            rows.push(vec!["Madison".to_string(), "Wisconsin".to_string()]);
            rows.push(vec!["Desmoines".to_string(), "Iowa".to_string()]);
            rows.push(vec!["Columbus".to_string(), "Ohio".to_string()]);
        }
        let cs = learn(&cols, &rows, &LearnConfig::default());
        let fd = cs
            .iter()
            .find(|c| matches!(c, Constraint::FunctionalDependency { lhs, .. } if lhs == "city"))
            .expect("fd learned");
        assert!(fd
            .check(&view(&[
                ("city", Value::Text("Madison".into())),
                ("state", Value::Text("Wisconsin".into()))
            ]))
            .is_none());
        let reason = fd
            .check(&view(&[
                ("city", Value::Text("Madison".into())),
                ("state", Value::Text("Iowa".into())),
            ]))
            .expect("violation");
        assert!(reason.contains("FD"));
        // Unseen lhs: no opinion.
        assert!(fd
            .check(&view(&[
                ("city", Value::Text("Gotham".into())),
                ("state", Value::Text("NJ".into()))
            ]))
            .is_none());
    }

    #[test]
    fn vacuous_fds_not_learned() {
        // Every lhs unique → no FD evidence.
        let cols = vec!["id".to_string(), "x".to_string()];
        let rows: Vec<Vec<String>> =
            (0..20).map(|i| vec![i.to_string(), (i * 2).to_string()]).collect();
        let cs = learn(&cols, &rows, &LearnConfig::default());
        assert!(cs.iter().all(|c| !matches!(c, Constraint::FunctionalDependency { .. })));
    }

    #[test]
    fn empty_rows_learn_nothing() {
        assert!(learn(&["a".to_string()], &[], &LearnConfig::default()).is_empty());
    }

    #[test]
    fn missing_attribute_in_row_is_not_a_violation() {
        let c = Constraint::NumericRange { attribute: "temp".into(), lo: 0.0, hi: 100.0 };
        assert!(c.check(&view(&[("other", Value::Int(5))])).is_none());
    }
}
