//! System health monitoring: the other half of blueprint Part VI —
//! "modules to monitor the status of the entire system and alert the system
//! manager if something appears to be wrong".
//!
//! Components report heartbeats and named metrics against declared bands;
//! the monitor derives a status and an alert log. Time is injected by the
//! caller (a tick counter), keeping the module deterministic and testable.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Component status at a point in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HealthStatus {
    /// Heartbeats fresh, metrics in band.
    Healthy,
    /// A metric strayed out of band.
    Degraded,
    /// Heartbeat overdue.
    Unresponsive,
}

/// An alert raised by the monitor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Alert {
    /// Tick when raised.
    pub tick: u64,
    /// Offending component.
    pub component: String,
    /// What happened.
    pub message: String,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Component {
    last_heartbeat: u64,
    /// metric → (lo, hi) band.
    bands: BTreeMap<String, (f64, f64)>,
    /// metric → last value.
    metrics: BTreeMap<String, f64>,
}

/// The health monitor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HealthMonitor {
    components: BTreeMap<String, Component>,
    heartbeat_timeout: u64,
    alerts: Vec<Alert>,
}

impl HealthMonitor {
    /// A monitor that declares a component unresponsive after
    /// `heartbeat_timeout` ticks of silence.
    pub fn new(heartbeat_timeout: u64) -> HealthMonitor {
        assert!(heartbeat_timeout > 0);
        HealthMonitor { components: BTreeMap::new(), heartbeat_timeout, alerts: Vec::new() }
    }

    /// Register a component with metric bands.
    pub fn register(
        &mut self,
        name: &str,
        bands: impl IntoIterator<Item = (&'static str, f64, f64)>,
    ) {
        self.components.insert(
            name.to_string(),
            Component {
                last_heartbeat: 0,
                bands: bands.into_iter().map(|(m, lo, hi)| (m.to_string(), (lo, hi))).collect(),
                metrics: BTreeMap::new(),
            },
        );
    }

    /// Record a heartbeat with current metric values.
    pub fn heartbeat(
        &mut self,
        tick: u64,
        name: &str,
        metrics: impl IntoIterator<Item = (&'static str, f64)>,
    ) {
        let Some(c) = self.components.get_mut(name) else { return };
        c.last_heartbeat = tick;
        for (m, v) in metrics {
            c.metrics.insert(m.to_string(), v);
            if let Some(&(lo, hi)) = c.bands.get(m) {
                if v < lo || v > hi {
                    self.alerts.push(Alert {
                        tick,
                        component: name.to_string(),
                        message: format!("{m} = {v} outside band [{lo}, {hi}]"),
                    });
                }
            }
        }
    }

    /// Evaluate a component's status as of `tick` (raising an alert when a
    /// heartbeat is overdue).
    pub fn status(&mut self, tick: u64, name: &str) -> Option<HealthStatus> {
        let c = self.components.get(name)?;
        if tick.saturating_sub(c.last_heartbeat) > self.heartbeat_timeout {
            self.alerts.push(Alert {
                tick,
                component: name.to_string(),
                message: format!("no heartbeat since tick {}", c.last_heartbeat),
            });
            return Some(HealthStatus::Unresponsive);
        }
        let degraded = c
            .bands
            .iter()
            .any(|(m, &(lo, hi))| c.metrics.get(m).is_some_and(|&v| v < lo || v > hi));
        Some(if degraded { HealthStatus::Degraded } else { HealthStatus::Healthy })
    }

    /// Every alert raised so far.
    pub fn alerts(&self) -> &[Alert] {
        &self.alerts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monitor() -> HealthMonitor {
        let mut m = HealthMonitor::new(5);
        m.register("extractor", [("error_rate", 0.0, 0.2), ("docs_per_tick", 1.0, 1e9)]);
        m
    }

    #[test]
    fn healthy_component() {
        let mut m = monitor();
        m.heartbeat(1, "extractor", [("error_rate", 0.05), ("docs_per_tick", 100.0)]);
        assert_eq!(m.status(3, "extractor"), Some(HealthStatus::Healthy));
        assert!(m.alerts().is_empty());
    }

    #[test]
    fn out_of_band_metric_degrades_and_alerts() {
        let mut m = monitor();
        m.heartbeat(1, "extractor", [("error_rate", 0.5)]);
        assert_eq!(m.status(2, "extractor"), Some(HealthStatus::Degraded));
        assert_eq!(m.alerts().len(), 1);
        assert!(m.alerts()[0].message.contains("error_rate"));
    }

    #[test]
    fn missed_heartbeats_mean_unresponsive() {
        let mut m = monitor();
        m.heartbeat(1, "extractor", [("error_rate", 0.1)]);
        assert_eq!(m.status(10, "extractor"), Some(HealthStatus::Unresponsive));
        assert!(m.alerts().iter().any(|a| a.message.contains("no heartbeat")));
    }

    #[test]
    fn recovery_after_new_heartbeat() {
        let mut m = monitor();
        m.heartbeat(1, "extractor", [("error_rate", 0.9)]);
        assert_eq!(m.status(2, "extractor"), Some(HealthStatus::Degraded));
        m.heartbeat(3, "extractor", [("error_rate", 0.1)]);
        assert_eq!(m.status(4, "extractor"), Some(HealthStatus::Healthy));
    }

    #[test]
    fn unknown_component_is_none() {
        let mut m = monitor();
        assert_eq!(m.status(1, "ghost"), None);
        m.heartbeat(1, "ghost", [("x", 1.0)]); // silently ignored
        assert!(m.alerts().is_empty());
    }
}
