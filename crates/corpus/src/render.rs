//! Page renderer: turns ground-truth facts into wiki-like page text.
//!
//! Each page is an `{{Infobox ...}}` block of `| key = value` lines followed
//! by prose paragraphs restating (a subset of) the same facts in sentences,
//! then filler prose. The noise model decides label variants, name variants,
//! number formats, and typos, so the same fact surfaces differently across
//! pages — the raw material for the integration layer.

use crate::names::MONTHS;
use crate::noise::{self, NoiseConfig};
use crate::truth::{CityFact, CompanyFact, PersonFact, PublicationFact};
use rand::Rng;

/// Alternate infobox labels per canonical attribute name.
///
/// The paper's own example of semantic heterogeneity is `location` vs
/// `address` across two Wikipedia infoboxes; this table generalizes it.
pub const LABEL_VARIANTS: &[(&str, &str)] = &[
    ("population", "residents"),
    ("founded", "established"),
    ("area_sq_mi", "land_area"),
    ("state", "location"),
    ("birth_year", "born"),
    ("employer", "works_for"),
    ("residence", "address"),
    ("headquarters", "hq_city"),
    ("industry", "sector"),
    ("venue", "published_at"),
    ("year", "pub_year"),
];

fn label<'a>(canonical: &'a str, cfg: &NoiseConfig, rng: &mut impl Rng) -> &'a str {
    if rng.gen_bool(cfg.label_variant) {
        if let Some(&(_, alt)) = LABEL_VARIANTS.iter().find(|(c, _)| *c == canonical) {
            return alt;
        }
    }
    canonical
}

const FILLER: &[&str] = &[
    "The surrounding region offers numerous recreational opportunities throughout the year.",
    "Local historians have documented the early settlement period in considerable detail.",
    "Several annual festivals draw visitors from neighboring communities.",
    "The area experienced steady growth following the arrival of the railroad.",
    "Community organizations remain active in civic and cultural affairs.",
    "Recent years have seen renewed interest in preserving historic architecture.",
    "A network of trails connects the downtown district with outlying neighborhoods.",
    "The public library maintains an extensive collection of regional archives.",
];

fn filler(cfg: &NoiseConfig, rng: &mut impl Rng, out: &mut String) {
    let n = rng.gen_range(1..=3);
    for _ in 0..n {
        let mut s = FILLER[rng.gen_range(0..FILLER.len())].to_string();
        if rng.gen_bool(cfg.typo) {
            s = noise::typo(&s, rng);
        }
        out.push_str(&s);
        out.push(' ');
    }
}

/// Render a city page.
pub fn render_city(fact: &CityFact, cfg: &NoiseConfig, rng: &mut impl Rng) -> String {
    let mut t = String::with_capacity(2048);
    let sep = rng.gen_bool(cfg.number_format_variant);
    t.push_str("{{Infobox settlement\n");
    t.push_str(&format!("| name = {}\n", fact.name));
    t.push_str(&format!("| {} = {}\n", label("state", cfg, rng), fact.state));
    t.push_str(&format!(
        "| {} = {}\n",
        label("population", cfg, rng),
        noise::format_number(fact.population, sep)
    ));
    t.push_str(&format!("| {} = {}\n", label("founded", cfg, rng), fact.founded));
    t.push_str(&format!("| {} = {:.1}\n", label("area_sq_mi", cfg, rng), fact.area_sq_mi));
    for (m, temp) in fact.monthly_temp_f.iter().enumerate() {
        let unit = if rng.gen_bool(cfg.unit_variant) { rng.gen_range(1..3u8) } else { 0 };
        t.push_str(&format!(
            "| {}_temp = {}\n",
            MONTHS[m].to_lowercase(),
            noise::format_temp(*temp, unit)
        ));
    }
    t.push_str("}}\n\n");

    // Prose restating the headline facts plus a random subset of temperatures.
    t.push_str(&format!(
        "{} is a city in {}. As of the last census, the population of {} was {}. ",
        fact.name,
        fact.state,
        fact.name,
        noise::format_number(fact.population, sep)
    ));
    t.push_str(&format!(
        "{} was founded in {} and covers {:.1} square miles. ",
        fact.name, fact.founded, fact.area_sq_mi
    ));
    for (m, temp) in fact.monthly_temp_f.iter().enumerate() {
        if rng.gen_bool(0.5) {
            let unit = if rng.gen_bool(cfg.unit_variant) { 2 } else { 0 };
            t.push_str(&format!(
                "In {}, the average temperature in {} is {}. ",
                MONTHS[m],
                fact.name,
                noise::format_temp(*temp, unit)
            ));
        }
    }
    filler(cfg, rng, &mut t);
    t
}

/// Render a person page. `surface_name` is what the page calls the person
/// (possibly an abbreviated variant of the canonical name).
pub fn render_person(
    fact: &PersonFact,
    surface_name: &str,
    cfg: &NoiseConfig,
    rng: &mut impl Rng,
) -> String {
    let mut t = String::with_capacity(1024);
    t.push_str("{{Infobox person\n");
    t.push_str(&format!("| name = {surface_name}\n"));
    t.push_str(&format!("| {} = {}\n", label("birth_year", cfg, rng), fact.birth_year));
    t.push_str(&format!("| {} = {}\n", label("employer", cfg, rng), fact.employer));
    t.push_str(&format!("| {} = {}\n", label("residence", cfg, rng), fact.residence));
    t.push_str("}}\n\n");
    t.push_str(&format!("{surface_name} (born {}) works at {}. ", fact.birth_year, fact.employer));
    let last = fact.name.split(' ').next_back().unwrap_or(surface_name);
    t.push_str(&format!("{last} lives in {}. ", fact.residence));
    filler(cfg, rng, &mut t);
    t
}

/// Render a company page.
pub fn render_company(fact: &CompanyFact, cfg: &NoiseConfig, rng: &mut impl Rng) -> String {
    let mut t = String::with_capacity(1024);
    t.push_str("{{Infobox company\n");
    t.push_str(&format!("| name = {}\n", fact.name));
    t.push_str(&format!("| {} = {}\n", label("founded", cfg, rng), fact.founded));
    t.push_str(&format!("| {} = {}\n", label("headquarters", cfg, rng), fact.headquarters));
    t.push_str(&format!("| {} = {}\n", label("industry", cfg, rng), fact.industry));
    t.push_str("}}\n\n");
    t.push_str(&format!(
        "{} is a {} company headquartered in {}. It was founded in {}. ",
        fact.name, fact.industry, fact.headquarters, fact.founded
    ));
    filler(cfg, rng, &mut t);
    t
}

/// Render a publication page. `surface_authors` are the author mentions as
/// they appear on the page (possibly name variants).
pub fn render_publication(
    fact: &PublicationFact,
    surface_authors: &[String],
    cfg: &NoiseConfig,
    rng: &mut impl Rng,
) -> String {
    let mut t = String::with_capacity(1024);
    t.push_str("{{Infobox publication\n");
    t.push_str(&format!("| title = {}\n", fact.title));
    t.push_str(&format!("| {} = {}\n", label("year", cfg, rng), fact.year));
    t.push_str(&format!("| {} = {}\n", label("venue", cfg, rng), fact.venue));
    t.push_str(&format!("| authors = {}\n", surface_authors.join("; ")));
    t.push_str("}}\n\n");
    t.push_str(&format!("\"{}\" appeared at {} in {}. ", fact.title, fact.venue, fact.year));
    if let Some(first) = surface_authors.first() {
        t.push_str(&format!("The lead author is {first}. "));
    }
    filler(cfg, rng, &mut t);
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::DocId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn city() -> CityFact {
        CityFact {
            doc: DocId(0),
            name: "Madison".into(),
            state: "Wisconsin".into(),
            population: 250_000,
            founded: 1846,
            monthly_temp_f: vec![20, 24, 35, 47, 58, 68, 72, 70, 62, 50, 37, 25],
            area_sq_mi: 77.0,
        }
    }

    #[test]
    fn city_page_contains_all_infobox_temps() {
        let mut rng = StdRng::seed_from_u64(1);
        let text = render_city(&city(), &NoiseConfig::none(), &mut rng);
        for m in MONTHS {
            assert!(text.contains(&format!("{}_temp", m.to_lowercase())), "missing {m}");
        }
        assert!(text.contains("| population = 250000"));
    }

    #[test]
    fn zero_noise_uses_canonical_labels() {
        let mut rng = StdRng::seed_from_u64(1);
        let text = render_city(&city(), &NoiseConfig::none(), &mut rng);
        assert!(text.contains("| state = Wisconsin"));
        assert!(!text.contains("| location ="));
        assert!(!text.contains("| residents ="));
    }

    #[test]
    fn full_label_noise_uses_alternates() {
        let cfg = NoiseConfig { label_variant: 1.0, ..NoiseConfig::none() };
        let mut rng = StdRng::seed_from_u64(1);
        let text = render_city(&city(), &cfg, &mut rng);
        assert!(text.contains("| location = Wisconsin"));
        assert!(text.contains("| residents ="));
    }

    #[test]
    fn person_page_uses_surface_name() {
        let fact = PersonFact {
            doc: DocId(1),
            name: "David Smith".into(),
            birth_year: 1962,
            employer: "Acme Systems".into(),
            residence: "Madison".into(),
            entity: 7,
        };
        let mut rng = StdRng::seed_from_u64(2);
        let text = render_person(&fact, "D. Smith", &NoiseConfig::none(), &mut rng);
        assert!(text.contains("| name = D. Smith"));
        assert!(text.contains("born 1962"));
        assert!(text.contains("Smith lives in Madison"));
    }

    #[test]
    fn company_and_publication_render() {
        let mut rng = StdRng::seed_from_u64(3);
        let cf = CompanyFact {
            doc: DocId(2),
            name: "Acme Systems".into(),
            founded: 1987,
            headquarters: "Madison".into(),
            industry: "software".into(),
        };
        let text = render_company(&cf, &NoiseConfig::none(), &mut rng);
        assert!(text.contains("| headquarters = Madison"));

        let pf = PublicationFact {
            doc: DocId(3),
            title: "A Survey of Entity Resolution".into(),
            year: 2008,
            venue: "CIDR".into(),
            authors: vec!["David Smith".into()],
        };
        let text = render_publication(&pf, &["D. Smith".into()], &NoiseConfig::none(), &mut rng);
        assert!(text.contains("| authors = D. Smith"));
        assert!(text.contains("appeared at CIDR in 2008"));
    }

    #[test]
    fn rendering_is_deterministic() {
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        let cfg = NoiseConfig::default();
        assert_eq!(render_city(&city(), &cfg, &mut a), render_city(&city(), &cfg, &mut b));
    }
}
