//! Synthetic unstructured-data substrate for Quarry.
//!
//! The CIDR 2009 paper's running example is a "slice of the Web" — Wikipedia
//! pages whose prose and infoboxes carry structured facts (monthly
//! temperatures, populations, people, employers). Real Wikipedia has no
//! machine-readable ground truth, so this crate generates a deterministic
//! wiki-like corpus *together with* the ground-truth fact tables, enabling
//! every downstream accuracy measurement (extraction F1, entity-resolution
//! F1, debugger precision/recall, query answer correctness).
//!
//! Everything is seeded: the same [`CorpusConfig`] always yields the same
//! corpus, byte for byte.
//!
//! # Quick start
//!
//! ```
//! use quarry_corpus::{CorpusConfig, Corpus};
//!
//! let corpus = Corpus::generate(&CorpusConfig { n_cities: 5, seed: 42, ..Default::default() });
//! assert_eq!(corpus.truth.cities.len(), 5);
//! let doc = &corpus.docs[0];
//! assert!(doc.text.contains("Infobox"));
//! ```

pub mod corruption;
pub mod crawl;
pub mod generator;
pub mod names;
pub mod noise;
pub mod render;
pub mod sensor;
pub mod truth;
pub mod types;

pub use corruption::{
    apply_log, corrupt_table, CorruptionConfig, CorruptionKind, CorruptionLog, InjectedError,
};
pub use crawl::{CrawlConfig, CrawlSimulator, Snapshot};
pub use generator::{Corpus, CorpusConfig, CorpusError};
pub use noise::NoiseConfig;
pub use truth::{CityFact, CompanyFact, GroundTruth, PersonFact, PublicationFact};
pub use types::{DocId, DocKind, Document};
