//! Ground-truth fact tables retained alongside the generated pages.
//!
//! Every fact that the renderer writes into a page body is first recorded
//! here, so extraction and integration accuracy can be scored exactly.

use crate::types::DocId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// True facts about one city page.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CityFact {
    /// Document carrying the facts.
    pub doc: DocId,
    /// Canonical city name ("Madison").
    pub name: String,
    /// State the city is in.
    pub state: String,
    /// Resident count.
    pub population: u64,
    /// Founding year.
    pub founded: u16,
    /// Mean temperature per month (°F), January..December. Always 12 entries.
    pub monthly_temp_f: Vec<i32>,
    /// Land area in square miles, one decimal of precision.
    pub area_sq_mi: f64,
}

impl CityFact {
    /// Mean temperature over an inclusive month range (0-based, Jan = 0).
    ///
    /// This is the paper's motivating query ("average March–September
    /// temperature in Madison"): the ground-truth answer extraction-based
    /// query answering is scored against.
    pub fn avg_temp(&self, from_month: usize, to_month: usize) -> f64 {
        assert!(from_month <= to_month && to_month < 12, "invalid month range");
        let slice = &self.monthly_temp_f[from_month..=to_month];
        slice.iter().map(|&t| t as f64).sum::<f64>() / slice.len() as f64
    }
}

/// True facts about one person page.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PersonFact {
    /// Document carrying the facts.
    pub doc: DocId,
    /// Canonical full name ("David Smith").
    pub name: String,
    /// Year of birth.
    pub birth_year: u16,
    /// Employer company's canonical name.
    pub employer: String,
    /// City of residence (canonical city name).
    pub residence: String,
    /// Identifier of the real-world person this page describes.
    ///
    /// Several pages may describe the same person under name variants; pages
    /// sharing an `entity` id form a ground-truth duplicate cluster for
    /// entity-resolution scoring.
    pub entity: u32,
}

/// True facts about one company page.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompanyFact {
    /// Document carrying the facts.
    pub doc: DocId,
    /// Canonical company name.
    pub name: String,
    /// Founding year.
    pub founded: u16,
    /// Headquarters city (canonical city name).
    pub headquarters: String,
    /// Industry label.
    pub industry: String,
}

/// True facts about one publication page.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PublicationFact {
    /// Document carrying the facts.
    pub doc: DocId,
    /// Paper title.
    pub title: String,
    /// Publication year.
    pub year: u16,
    /// Venue acronym.
    pub venue: String,
    /// Author canonical names, in order.
    pub authors: Vec<String>,
}

/// All ground truth for a corpus, in document order within each table.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GroundTruth {
    /// City facts, one per city page.
    pub cities: Vec<CityFact>,
    /// Person facts, one per person page (duplicates share `entity`).
    pub people: Vec<PersonFact>,
    /// Company facts, one per company page.
    pub companies: Vec<CompanyFact>,
    /// Publication facts, one per publication page.
    pub publications: Vec<PublicationFact>,
}

impl GroundTruth {
    /// Ground-truth duplicate clusters over person pages: entity id → doc ids.
    ///
    /// Used to score entity resolution: two person pages match iff they share
    /// an entity id.
    pub fn person_clusters(&self) -> BTreeMap<u32, Vec<DocId>> {
        let mut clusters: BTreeMap<u32, Vec<DocId>> = BTreeMap::new();
        for p in &self.people {
            clusters.entry(p.entity).or_default().push(p.doc);
        }
        clusters
    }

    /// Total number of fact *fields* rendered into pages (the denominator of
    /// extraction recall): each scalar field and each monthly temperature
    /// counts as one fact.
    pub fn fact_count(&self) -> usize {
        // city: name, state, population, founded, area + 12 temps = 17
        // person: name, birth_year, employer, residence = 4
        // company: name, founded, headquarters, industry = 4
        // publication: title, year, venue + authors
        self.cities.len() * 17
            + self.people.len() * 4
            + self.companies.len() * 4
            + self.publications.iter().map(|p| 3 + p.authors.len()).sum::<usize>()
    }

    /// Look up the city fact by canonical name.
    pub fn city(&self, name: &str) -> Option<&CityFact> {
        self.cities.iter().find(|c| c.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn city() -> CityFact {
        CityFact {
            doc: DocId(0),
            name: "Madison".into(),
            state: "Wisconsin".into(),
            population: 250_000,
            founded: 1846,
            monthly_temp_f: vec![20, 24, 35, 47, 58, 68, 72, 70, 62, 50, 37, 25],
            area_sq_mi: 77.0,
        }
    }

    #[test]
    fn avg_temp_full_year() {
        let c = city();
        let avg = c.avg_temp(0, 11);
        assert!((avg - 47.333).abs() < 0.01, "{avg}");
    }

    #[test]
    fn avg_temp_march_september_matches_paper_example() {
        let c = city();
        // March..September inclusive = months 2..=8.
        let avg = c.avg_temp(2, 8);
        let expect = (35 + 47 + 58 + 68 + 72 + 70 + 62) as f64 / 7.0;
        assert_eq!(avg, expect);
    }

    #[test]
    #[should_panic(expected = "invalid month range")]
    fn avg_temp_rejects_bad_range() {
        city().avg_temp(5, 12);
    }

    #[test]
    fn person_clusters_group_by_entity() {
        let mut gt = GroundTruth::default();
        for (i, e) in [(0u32, 1u32), (1, 1), (2, 2)] {
            gt.people.push(PersonFact {
                doc: DocId(i),
                name: format!("p{i}"),
                birth_year: 1970,
                employer: "Acme".into(),
                residence: "Madison".into(),
                entity: e,
            });
        }
        let clusters = gt.person_clusters();
        assert_eq!(clusters[&1], vec![DocId(0), DocId(1)]);
        assert_eq!(clusters[&2], vec![DocId(2)]);
    }

    #[test]
    fn fact_count_sums_fields() {
        let mut gt = GroundTruth::default();
        gt.cities.push(city());
        gt.publications.push(PublicationFact {
            doc: DocId(1),
            title: "T".into(),
            year: 2009,
            venue: "CIDR".into(),
            authors: vec!["A".into(), "B".into()],
        });
        assert_eq!(gt.fact_count(), 17 + 5);
    }

    #[test]
    fn city_lookup_by_name() {
        let mut gt = GroundTruth::default();
        gt.cities.push(city());
        assert!(gt.city("Madison").is_some());
        assert!(gt.city("Gotham").is_none());
    }
}
