//! Error injection for evaluating the semantic debugger.
//!
//! The paper's Part-VI example: a module that "has learned that the monthly
//! temperature of a city cannot exceed 130 degrees ... can flag an extracted
//! temperature of 135 as suspicious". To measure that detector we corrupt
//! ground-truth-derived tuples at a known rate and keep a log of exactly
//! which (row, attribute) pairs were damaged.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The kinds of damage injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CorruptionKind {
    /// Numeric value pushed outside its learned plausible range
    /// (e.g. temperature 135 °F, population −4).
    OutOfRange,
    /// Value replaced by one of the wrong type (a word where a number goes).
    WrongType,
    /// Value swapped with another row's value for the same attribute,
    /// breaking functional dependencies without leaving the value domain.
    SwappedValue,
}

impl CorruptionKind {
    /// All kinds in a fixed order.
    pub const ALL: [CorruptionKind; 3] =
        [CorruptionKind::OutOfRange, CorruptionKind::WrongType, CorruptionKind::SwappedValue];
}

/// Configuration for one corruption pass.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CorruptionConfig {
    /// RNG seed.
    pub seed: u64,
    /// Fraction of cells to corrupt, in `[0,1]`.
    pub rate: f64,
}

/// Record of one injected error.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InjectedError {
    /// Row index in the corrupted table.
    pub row: usize,
    /// Attribute (column) name.
    pub attribute: String,
    /// What was done.
    pub kind: CorruptionKind,
    /// The original (correct) serialized value.
    pub original: String,
    /// The corrupted serialized value now in place.
    pub corrupted: String,
}

/// The labels produced by a corruption pass: which cells are bad.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CorruptionLog {
    /// One entry per damaged cell.
    pub errors: Vec<InjectedError>,
}

impl CorruptionLog {
    /// True if the given cell was corrupted.
    pub fn is_corrupted(&self, row: usize, attribute: &str) -> bool {
        self.errors.iter().any(|e| e.row == row && e.attribute == attribute)
    }

    /// Number of injected errors.
    pub fn len(&self) -> usize {
        self.errors.len()
    }

    /// True when nothing was corrupted.
    pub fn is_empty(&self) -> bool {
        self.errors.is_empty()
    }
}

// Splitmix64-style odd multipliers used to fold a cell's coordinates into
// the configured seed.
const ROW_MIX: u64 = 0x9E37_79B9_7F4A_7C15;
const COL_MIX: u64 = 0xC2B2_AE3D_27D4_EB4F;

/// RNG for one cell, derived from `(seed, row, col)` alone. Whether a cell
/// is corrupted — and how — never depends on how many random draws other
/// cells consumed, so adding a column (or changing another cell's damage)
/// cannot reshuffle the rest of the plan.
fn cell_rng(seed: u64, row: usize, col: usize) -> StdRng {
    let mixed =
        seed ^ (row as u64 + 1).wrapping_mul(ROW_MIX) ^ (col as u64 + 1).wrapping_mul(COL_MIX);
    StdRng::seed_from_u64(mixed)
}

/// Corrupt a string-serialized table in place.
///
/// `rows` is a mutable table of serialized cell values; `columns` names each
/// column and says whether it is numeric. Each cell is damaged independently
/// with probability `rate`, using an RNG derived from the seed and the
/// cell's coordinates (see [`cell_rng`]), so the plan is a pure function of
/// `(seed, rate, original table)`. Returns the log of injected errors.
pub fn corrupt_table(
    rows: &mut [Vec<String>],
    columns: &[(&str, bool)],
    config: CorruptionConfig,
) -> CorruptionLog {
    let mut log = CorruptionLog::default();
    let rate = config.rate.clamp(0.0, 1.0);
    if rows.is_empty() || rate == 0.0 {
        return log;
    }
    // Swap sources read from the pristine table so one cell's damage never
    // leaks into another's.
    let pristine: Vec<Vec<String>> = rows.to_vec();

    for row in 0..rows.len() {
        for (col, &(attr, numeric)) in columns.iter().enumerate() {
            let mut rng = cell_rng(config.seed, row, col);
            if !rng.gen_bool(rate) {
                continue;
            }
            let original = pristine[row][col].clone();
            let kind = CorruptionKind::ALL[rng.gen_range(0..CorruptionKind::ALL.len())];
            let corrupted = match kind {
                CorruptionKind::OutOfRange if numeric => {
                    let v: f64 = original.parse().unwrap_or(0.0);
                    // Push far outside any plausible learned range.
                    let blown =
                        if rng.gen_bool(0.5) { v * 100.0 + 1000.0 } else { -v * 100.0 - 1000.0 };
                    format!("{blown:.0}")
                }
                CorruptionKind::OutOfRange => {
                    // Non-numeric column: fall back to an unseen categorical value.
                    format!("__corrupt_{}", rng.gen_range(0..u32::MAX))
                }
                CorruptionKind::WrongType if numeric => "unknown".to_string(),
                CorruptionKind::WrongType => rng.gen_range(10_000..99_999u32).to_string(),
                CorruptionKind::SwappedValue => {
                    let other = rng.gen_range(0..pristine.len());
                    pristine[other][col].clone()
                }
            };
            if corrupted == original {
                continue; // swap landed on an identical value; not an error
            }
            rows[row][col] = corrupted.clone();
            log.errors.push(InjectedError {
                row,
                attribute: attr.to_string(),
                kind,
                original,
                corrupted,
            });
        }
    }
    log
}

/// Re-apply a recorded corruption log to a clean copy of its table.
///
/// Logs are serializable and can outlive the schema they were recorded
/// against, so an entry may name an attribute the current column list no
/// longer has, or a row past the end of the table. Such entries are skipped
/// and returned for inspection rather than panicking.
pub fn apply_log(
    rows: &mut [Vec<String>],
    columns: &[(&str, bool)],
    log: &CorruptionLog,
) -> Vec<InjectedError> {
    let mut skipped = Vec::new();
    for e in &log.errors {
        let col = columns.iter().position(|(n, _)| *n == e.attribute);
        match (col, rows.get_mut(e.row)) {
            (Some(c), Some(r)) if c < r.len() => r[c] = e.corrupted.clone(),
            _ => skipped.push(e.clone()),
        }
    }
    skipped
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> (Vec<Vec<String>>, Vec<(&'static str, bool)>) {
        let rows: Vec<Vec<String>> = (0..50)
            .map(|i| vec![format!("city{i}"), format!("{}", 20 + i), format!("{}", 1000 * (i + 1))])
            .collect();
        (rows, vec![("name", false), ("temp", true), ("population", true)])
    }

    #[test]
    fn zero_rate_corrupts_nothing() {
        let (mut rows, cols) = table();
        let orig = rows.clone();
        let log = corrupt_table(&mut rows, &cols, CorruptionConfig { seed: 1, rate: 0.0 });
        assert!(log.is_empty());
        assert_eq!(rows, orig);
    }

    #[test]
    fn log_matches_actual_damage() {
        let (mut rows, cols) = table();
        let orig = table().0;
        let log = corrupt_table(&mut rows, &cols, CorruptionConfig { seed: 2, rate: 0.1 });
        assert!(!log.is_empty());
        // Replaying the log over a clean copy reproduces the damage exactly.
        let mut replay = table().0;
        assert!(apply_log(&mut replay, &cols, &log).is_empty(), "no entry should be skipped");
        assert_eq!(replay, rows);
        for e in &log.errors {
            let col = cols
                .iter()
                .position(|(n, _)| *n == e.attribute)
                .unwrap_or_else(|| panic!("log names unknown attribute {:?}", e.attribute));
            assert_eq!(rows[e.row][col], e.corrupted);
            assert_eq!(orig[e.row][col], e.original);
            assert_ne!(e.corrupted, e.original);
        }
        // Every changed cell is in the log.
        for (r, (now, before)) in rows.iter().zip(&orig).enumerate() {
            for (c, (nv, bv)) in now.iter().zip(before).enumerate() {
                if nv != bv {
                    assert!(log.is_corrupted(r, cols[c].0), "unlogged damage at ({r},{c})");
                }
            }
        }
    }

    #[test]
    fn log_naming_absent_attribute_is_skipped_not_a_panic() {
        let (mut rows, cols) = table();
        let mut log = corrupt_table(&mut rows, &cols, CorruptionConfig { seed: 2, rate: 0.1 });
        // Simulate a log recorded against an older schema: one entry names a
        // column that no longer exists, another points past the table.
        log.errors.push(InjectedError {
            row: 0,
            attribute: "renamed_away".into(),
            kind: CorruptionKind::WrongType,
            original: "x".into(),
            corrupted: "y".into(),
        });
        log.errors.push(InjectedError {
            row: 9_999,
            attribute: "temp".into(),
            kind: CorruptionKind::OutOfRange,
            original: "20".into(),
            corrupted: "9000".into(),
        });
        let mut replay = table().0;
        let skipped = apply_log(&mut replay, &cols, &log);
        assert_eq!(skipped.len(), 2, "both stale entries skipped: {skipped:?}");
        assert_eq!(replay, rows, "valid entries still applied");
    }

    #[test]
    fn per_cell_plan_is_independent_of_other_columns() {
        // The point of deriving each cell's RNG from (seed, row, col): adding
        // a column must not reshuffle the damage in the existing ones.
        let (mut a, cols) = table();
        let (mut b, _) = table();
        for r in &mut b {
            r.push("constant".to_string());
        }
        let mut cols_b = cols.clone();
        cols_b.push(("extra", false));
        let cfg = CorruptionConfig { seed: 11, rate: 0.2 };
        let la = corrupt_table(&mut a, &cols, cfg);
        let lb = corrupt_table(&mut b, &cols_b, cfg);
        let lb_existing: Vec<_> =
            lb.errors.iter().filter(|e| e.attribute != "extra").cloned().collect();
        assert_eq!(la.errors, lb_existing);
    }

    #[test]
    fn out_of_range_numeric_values_are_extreme() {
        let (mut rows, cols) = table();
        let log = corrupt_table(&mut rows, &cols, CorruptionConfig { seed: 3, rate: 0.3 });
        for e in log.errors.iter().filter(|e| e.kind == CorruptionKind::OutOfRange) {
            if let Ok(v) = e.corrupted.parse::<f64>() {
                assert!(v.abs() > 500.0, "not extreme: {v}");
            }
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let (mut a, cols) = table();
        let (mut b, _) = table();
        let cfg = CorruptionConfig { seed: 7, rate: 0.2 };
        let la = corrupt_table(&mut a, &cols, cfg);
        let lb = corrupt_table(&mut b, &cols, cfg);
        assert_eq!(a, b);
        assert_eq!(la.errors, lb.errors);
    }

    #[test]
    fn empty_table_is_noop() {
        let mut rows: Vec<Vec<String>> = vec![];
        let log = corrupt_table(&mut rows, &[("x", true)], CorruptionConfig { seed: 1, rate: 0.5 });
        assert!(log.is_empty());
    }
}
