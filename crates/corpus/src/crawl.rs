//! Crawl simulator: daily snapshots of a slowly changing document set.
//!
//! The paper's storage-layer discussion assumes "unstructured data retrieved
//! daily from a collection of Web sites", where consecutive snapshots
//! "overlap a lot" and therefore suit a diff-based store. This module
//! produces that workload: snapshot 0 is the corpus as generated; each later
//! snapshot edits a small fraction of pages (sentence tweaks, value bumps,
//! appended paragraphs) and occasionally adds a page.

use crate::generator::Corpus;
use crate::types::{DocId, DocKind, Document};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Crawl workload parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrawlConfig {
    /// RNG seed for the edit stream (independent of the corpus seed).
    pub seed: u64,
    /// Number of snapshots to produce (snapshot 0 = unmodified corpus).
    pub days: usize,
    /// Fraction of documents edited per day, in `[0,1]`.
    pub churn: f64,
    /// Probability per day that one brand-new page appears.
    pub new_page_rate: f64,
}

impl Default for CrawlConfig {
    fn default() -> Self {
        CrawlConfig { seed: 0, days: 30, churn: 0.02, new_page_rate: 0.5 }
    }
}

/// One day's crawl: the full text of every page as of that day.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// 0-based day number.
    pub day: usize,
    /// All documents as of this day.
    pub docs: Vec<Document>,
}

impl Snapshot {
    /// Total bytes across all pages in this snapshot.
    pub fn total_bytes(&self) -> usize {
        self.docs.iter().map(Document::len).sum()
    }
}

/// Iterator-style simulator producing consecutive snapshots.
pub struct CrawlSimulator {
    rng: StdRng,
    config: CrawlConfig,
    current: Vec<Document>,
    day: usize,
    next_id: u32,
}

const APPENDED: &[&str] = &[
    "A recent development project has attracted regional attention.",
    "Updated figures were released by the municipal statistics office.",
    "An editorial review corrected several minor details on this page.",
    "New photographs of the area were contributed this week.",
];

impl CrawlSimulator {
    /// Start a simulation from a generated corpus.
    pub fn new(corpus: &Corpus, config: CrawlConfig) -> Self {
        let next_id = corpus.docs.len() as u32;
        CrawlSimulator {
            rng: StdRng::seed_from_u64(config.seed),
            config,
            current: corpus.docs.clone(),
            day: 0,
            next_id,
        }
    }

    /// Produce the next snapshot, or `None` after `config.days` snapshots.
    pub fn next_snapshot(&mut self) -> Option<Snapshot> {
        if self.day >= self.config.days {
            return None;
        }
        if self.day > 0 {
            self.mutate();
        }
        let snap = Snapshot { day: self.day, docs: self.current.clone() };
        self.day += 1;
        Some(snap)
    }

    /// Collect all snapshots eagerly.
    pub fn run(mut self) -> Vec<Snapshot> {
        let mut out = Vec::with_capacity(self.config.days);
        while let Some(s) = self.next_snapshot() {
            out.push(s);
        }
        out
    }

    fn mutate(&mut self) {
        let n_edits = ((self.current.len() as f64) * self.config.churn).ceil() as usize;
        for _ in 0..n_edits {
            let i = self.rng.gen_range(0..self.current.len());
            let doc = &mut self.current[i];
            match self.rng.gen_range(0..3u8) {
                // Append a sentence at the end (most common wiki edit).
                0 => {
                    doc.text.push_str(APPENDED[self.rng.gen_range(0..APPENDED.len())]);
                    doc.text.push(' ');
                }
                // Tweak one digit of some number in the page (a value update).
                1 => {
                    // SAFETY: the only writes below replace an ASCII digit
                    // byte with another ASCII digit, so the buffer remains
                    // valid UTF-8.
                    let bytes = unsafe { doc.text.as_bytes_mut() };
                    let digit_positions: Vec<usize> = bytes
                        .iter()
                        .enumerate()
                        .filter(|(_, b)| b.is_ascii_digit())
                        .map(|(p, _)| p)
                        .collect();
                    if let Some(&p) =
                        digit_positions.get(self.rng.gen_range(0..digit_positions.len().max(1)))
                    {
                        bytes[p] = b'0' + self.rng.gen_range(0..10u8);
                    }
                }
                // Delete the final sentence (vandalism revert / trim).
                _ => {
                    if let Some(p) = doc.text.trim_end().rfind(". ") {
                        doc.text.truncate(p + 2);
                    }
                }
            }
        }
        if self.rng.gen_bool(self.config.new_page_rate) {
            let id = DocId(self.next_id);
            self.next_id += 1;
            self.current.push(Document {
                id,
                title: format!("New article {}", id.0),
                text: format!(
                    "A newly created stub article, first seen on day {}. {}",
                    self.day,
                    APPENDED[self.rng.gen_range(0..APPENDED.len())]
                ),
                kind: DocKind::City,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{Corpus, CorpusConfig};

    fn snaps(days: usize, churn: f64) -> Vec<Snapshot> {
        let corpus = Corpus::generate(&CorpusConfig::tiny(1));
        CrawlSimulator::new(&corpus, CrawlConfig { seed: 2, days, churn, new_page_rate: 0.3 }).run()
    }

    #[test]
    fn first_snapshot_is_the_corpus() {
        let corpus = Corpus::generate(&CorpusConfig::tiny(1));
        let s = CrawlSimulator::new(&corpus, CrawlConfig::default()).next_snapshot().unwrap();
        assert_eq!(s.day, 0);
        assert_eq!(s.docs, corpus.docs);
    }

    #[test]
    fn produces_requested_number_of_days() {
        assert_eq!(snaps(5, 0.1).len(), 5);
    }

    #[test]
    fn consecutive_snapshots_overlap_heavily() {
        let ss = snaps(3, 0.05);
        let unchanged =
            ss[0].docs.iter().zip(&ss[1].docs).filter(|(a, b)| a.text == b.text).count();
        // With 5% churn, ≥ 80% of docs should be byte-identical day over day.
        assert!(unchanged * 10 >= ss[0].docs.len() * 8, "{unchanged}/{}", ss[0].docs.len());
    }

    #[test]
    fn churn_actually_changes_documents() {
        let ss = snaps(2, 0.5);
        let changed = ss[0].docs.iter().zip(&ss[1].docs).filter(|(a, b)| a.text != b.text).count();
        assert!(changed > 0);
    }

    #[test]
    fn new_pages_get_fresh_ids() {
        let ss = snaps(20, 0.02);
        let last = ss.last().unwrap();
        let mut ids: Vec<u32> = last.docs.iter().map(|d| d.id.0).collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n, "duplicate doc ids after crawl");
        assert!(last.docs.len() >= ss[0].docs.len());
    }

    #[test]
    fn simulation_is_deterministic() {
        let a = snaps(4, 0.1);
        let b = snaps(4, 0.1);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn exhausted_simulator_returns_none() {
        let corpus = Corpus::generate(&CorpusConfig::tiny(1));
        let mut sim =
            CrawlSimulator::new(&corpus, CrawlConfig { days: 1, ..CrawlConfig::default() });
        assert!(sim.next_snapshot().is_some());
        assert!(sim.next_snapshot().is_none());
    }
}
