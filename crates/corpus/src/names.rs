//! Deterministic name pools for the generator.
//!
//! Pools are intentionally larger than any realistic corpus configuration so
//! that entity names rarely collide by accident; *intentional* duplicates
//! (name variants of the same real-world entity) are produced by
//! [`crate::noise`], never here.

use rand::Rng;

/// US-style state names used for city pages.
pub const STATES: &[&str] = &[
    "Wisconsin",
    "Minnesota",
    "Illinois",
    "Iowa",
    "Michigan",
    "Ohio",
    "Indiana",
    "Missouri",
    "Kansas",
    "Nebraska",
    "Colorado",
    "Oregon",
    "Washington",
    "Vermont",
    "Maine",
    "Georgia",
    "Texas",
    "Arizona",
    "Nevada",
    "Montana",
];

/// Month names, January..December.
pub const MONTHS: &[&str] = &[
    "January",
    "February",
    "March",
    "April",
    "May",
    "June",
    "July",
    "August",
    "September",
    "October",
    "November",
    "December",
];

/// Industry labels for company pages.
pub const INDUSTRIES: &[&str] = &[
    "software",
    "biotechnology",
    "manufacturing",
    "publishing",
    "logistics",
    "agriculture",
    "insurance",
    "energy",
    "retail",
    "telecommunications",
];

/// Publication venues.
pub const VENUES: &[&str] =
    &["SIGMOD", "VLDB", "CIDR", "ICDE", "EDBT", "PODS", "KDD", "WWW", "SIGIR", "CIKM"];

const CITY_PREFIX: &[&str] = &[
    "Mad", "Spring", "River", "Oak", "Maple", "Stone", "Clear", "Fair", "Green", "North", "South",
    "East", "West", "Lake", "Cedar", "Pine", "Elm", "Silver", "Golden", "Iron", "Copper", "Bridge",
    "Mill", "Fox", "Eagle", "Deer", "Bear", "Falcon", "Ash", "Birch",
];

const CITY_SUFFIX: &[&str] = &[
    "ison", "field", "ton", "ville", "burg", "port", "wood", "dale", "ford", "haven", "brook",
    "mont", "view", "crest", "shore", "land", "bury", "stead", "gate", "crossing",
];

const FIRST_NAMES: &[&str] = &[
    "David", "Sarah", "Michael", "Laura", "James", "Emily", "Robert", "Anna", "William", "Grace",
    "Thomas", "Julia", "Henry", "Clara", "Samuel", "Alice", "Daniel", "Ruth", "Joseph", "Helen",
    "Charles", "Margaret", "Edward", "Rose", "George", "Ellen", "Frank", "Lucy", "Walter", "Edith",
    "Arthur", "Florence", "Albert", "Martha", "Harold", "Irene", "Carl", "Esther", "Paul",
    "Marion",
];

const LAST_NAMES: &[&str] = &[
    "Smith", "Johnson", "Miller", "Anderson", "Wilson", "Taylor", "Thomas", "Moore", "Jackson",
    "White", "Harris", "Martin", "Thompson", "Walker", "Young", "Allen", "King", "Wright", "Scott",
    "Hill", "Green", "Adams", "Baker", "Nelson", "Carter", "Mitchell", "Turner", "Phillips",
    "Campbell", "Parker", "Evans", "Edwards", "Collins", "Stewart", "Morris", "Murphy", "Cook",
    "Rogers", "Reed", "Morgan",
];

const COMPANY_STEM: &[&str] = &[
    "Acme", "Vertex", "Nimbus", "Quanta", "Solstice", "Aurora", "Keystone", "Summit", "Pinnacle",
    "Horizon", "Beacon", "Cascade", "Meridian", "Zenith", "Atlas", "Polaris", "Vanguard",
    "Frontier", "Sterling", "Crescent", "Harbor", "Granite", "Sierra", "Redwood", "Juniper",
    "Willow", "Falcon", "Orion", "Delta", "Vector",
];

const COMPANY_FORM: &[&str] =
    &["Systems", "Labs", "Industries", "Group", "Corporation", "Works", "Partners", "Holdings"];

const PAPER_TOPIC: &[&str] = &[
    "query optimization",
    "information extraction",
    "schema matching",
    "entity resolution",
    "data provenance",
    "crowdsourced curation",
    "keyword search",
    "data integration",
    "uncertain data",
    "declarative pipelines",
    "incremental view maintenance",
    "text indexing",
];

const PAPER_SHAPE: &[&str] = &[
    "A Survey of {}",
    "Scalable {}",
    "Towards Practical {}",
    "Revisiting {}",
    "Efficient {} at Web Scale",
    "{} with Human Feedback",
    "Principles of {}",
    "Adaptive {}",
];

/// Produce the `i`-th city name (deterministic, collision-free for
/// `i < CITY_PREFIX.len() * CITY_SUFFIX.len()`, i.e. 600 cities).
pub fn city_name(i: usize) -> String {
    let p = CITY_PREFIX[i % CITY_PREFIX.len()];
    let s = CITY_SUFFIX[(i / CITY_PREFIX.len()) % CITY_SUFFIX.len()];
    let gen = i / (CITY_PREFIX.len() * CITY_SUFFIX.len());
    if gen == 0 {
        format!("{p}{s}")
    } else {
        // Beyond 600 cities disambiguate with a roman-ish ordinal suffix.
        format!("{p}{s} {}", gen + 1)
    }
}

/// Produce the `i`-th person full name, plus its parts.
///
/// The (first, last) pairing is a bijection over the two pools that cycles
/// *both* names quickly, so a moderate population already spans all
/// surnames — realistic blocking behaviour (many small surname buckets,
/// not three giant ones).
pub fn person_name(i: usize) -> (String, &'static str, &'static str) {
    let nf = FIRST_NAMES.len();
    let nl = LAST_NAMES.len();
    let first = FIRST_NAMES[i % nf];
    let last = LAST_NAMES[(i % nl + (i / nf) % nl) % nl];
    let gen = i / (nf * nl);
    let full = if gen == 0 {
        format!("{first} {last}")
    } else {
        format!("{first} {last} {}", roman(gen + 1))
    };
    (full, first, last)
}

/// Produce the `i`-th company name.
pub fn company_name(i: usize) -> String {
    let stem = COMPANY_STEM[i % COMPANY_STEM.len()];
    let form = COMPANY_FORM[(i / COMPANY_STEM.len()) % COMPANY_FORM.len()];
    let gen = i / (COMPANY_STEM.len() * COMPANY_FORM.len());
    if gen == 0 {
        format!("{stem} {form}")
    } else {
        format!("{stem} {form} {}", gen + 1)
    }
}

/// Produce the `i`-th publication title.
pub fn paper_title(i: usize, rng: &mut impl Rng) -> String {
    let topic = PAPER_TOPIC[i % PAPER_TOPIC.len()];
    let shape = PAPER_SHAPE[rng.gen_range(0..PAPER_SHAPE.len())];
    shape.replacen("{}", &title_case(topic), 1)
}

fn title_case(s: &str) -> String {
    s.split(' ')
        .map(|w| {
            let mut c = w.chars();
            match c.next() {
                Some(f) => f.to_uppercase().chain(c).collect::<String>(),
                None => String::new(),
            }
        })
        .collect::<Vec<_>>()
        .join(" ")
}

fn roman(mut n: usize) -> String {
    // Only small ordinals are ever needed (generation counter).
    const PAIRS: &[(usize, &str)] = &[(10, "X"), (9, "IX"), (5, "V"), (4, "IV"), (1, "I")];
    let mut out = String::new();
    for &(v, s) in PAIRS {
        while n >= v {
            out.push_str(s);
            n -= v;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn city_names_unique_in_range() {
        let mut names: Vec<_> = (0..600).map(city_name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 600);
    }

    #[test]
    fn city_names_extend_past_pool() {
        assert_ne!(city_name(0), city_name(600));
        assert!(city_name(600).ends_with(" 2"));
    }

    #[test]
    fn person_names_unique_in_range() {
        let mut names: Vec<_> = (0..1600).map(|i| person_name(i).0).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 1600);
    }

    #[test]
    fn person_name_parts_compose() {
        let (full, first, last) = person_name(3);
        assert_eq!(full, format!("{first} {last}"));
    }

    #[test]
    fn company_names_unique_in_range() {
        let mut names: Vec<_> = (0..240).map(company_name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 240);
    }

    #[test]
    fn paper_titles_are_deterministic_per_seed() {
        let mut a = rand::rngs::StdRng::seed_from_u64(1);
        let mut b = rand::rngs::StdRng::seed_from_u64(1);
        assert_eq!(paper_title(5, &mut a), paper_title(5, &mut b));
    }

    #[test]
    fn roman_ordinals() {
        assert_eq!(roman(2), "II");
        assert_eq!(roman(4), "IV");
        assert_eq!(roman(9), "IX");
    }

    #[test]
    fn title_case_capitalizes_each_word() {
        assert_eq!(title_case("query optimization"), "Query Optimization");
    }
}
