//! Core document types shared across the corpus and the rest of Quarry.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Stable identifier of a document within a corpus.
///
/// Identifiers are dense (0..n) so they can double as vector indexes in
/// downstream components (inverted index posting lists, lineage nodes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DocId(pub u32);

impl DocId {
    /// The id as a usize, for indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for DocId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "doc:{}", self.0)
    }
}

/// The template a page was generated from.
///
/// Downstream code must *not* rely on this for extraction decisions (a real
/// system does not know page kinds a priori); it exists for evaluation
/// stratification only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DocKind {
    /// A city page: infobox with population/temperatures, prose restating them.
    City,
    /// A person page: birth year, employer, residence.
    Person,
    /// A company page: founding year, headquarters, industry.
    Company,
    /// A publication page: venue, year, author list.
    Publication,
}

impl DocKind {
    /// All kinds, in generation order.
    pub const ALL: [DocKind; 4] =
        [DocKind::City, DocKind::Person, DocKind::Company, DocKind::Publication];

    /// Lower-case label used in rendered infobox headers.
    pub fn label(self) -> &'static str {
        match self {
            DocKind::City => "settlement",
            DocKind::Person => "person",
            DocKind::Company => "company",
            DocKind::Publication => "publication",
        }
    }
}

/// One unstructured document: a wiki-like page of plain text.
///
/// `text` is the only field an extractor may look at. The infobox is plain
/// text inside the page (a `{{Infobox ...}}` block of `| key = value` lines)
/// mirroring MediaWiki markup; prose paragraphs restate a subset of the same
/// facts in natural-language sentences.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Document {
    /// Corpus-unique id.
    pub id: DocId,
    /// Page title (e.g. "Madison, Wisconsin").
    pub title: String,
    /// Full page text: infobox block followed by prose paragraphs.
    pub text: String,
    /// Generation template (evaluation only; see [`DocKind`]).
    pub kind: DocKind,
}

impl Document {
    /// Approximate size in bytes of the page content.
    pub fn len(&self) -> usize {
        self.text.len()
    }

    /// True when the page body is empty.
    pub fn is_empty(&self) -> bool {
        self.text.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doc_id_display_and_index() {
        let id = DocId(7);
        assert_eq!(id.to_string(), "doc:7");
        assert_eq!(id.index(), 7);
    }

    #[test]
    fn doc_kind_labels_are_distinct() {
        let mut labels: Vec<_> = DocKind::ALL.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 4);
    }

    #[test]
    fn document_len_tracks_text() {
        let d =
            Document { id: DocId(0), title: "T".into(), text: "hello".into(), kind: DocKind::City };
        assert_eq!(d.len(), 5);
        assert!(!d.is_empty());
    }
}
