//! Noise model: the controlled imperfection that makes IE and II non-trivial.
//!
//! The paper's §3.2 argument rests on automatic extraction/integration being
//! imperfect because "semantics is often not adequately captured in the
//! text". This module produces exactly the phenomena it names:
//! name variants ("David Smith" → "D. Smith"), attribute-label variants
//! (`location` vs `address`), unit/format variants, and typos.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Probabilities of each noise phenomenon, all in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseConfig {
    /// Chance a rendered person mention uses an abbreviated variant.
    pub name_variant: f64,
    /// Chance an infobox uses the alternate label for an attribute.
    pub label_variant: f64,
    /// Chance a numeric value is rendered with thousands separators.
    pub number_format_variant: f64,
    /// Chance a temperature is rendered with a spelled-out unit.
    pub unit_variant: f64,
    /// Per-word chance of a single-character typo in prose (never in values).
    pub typo: f64,
}

impl Default for NoiseConfig {
    fn default() -> Self {
        NoiseConfig {
            name_variant: 0.3,
            label_variant: 0.25,
            number_format_variant: 0.3,
            unit_variant: 0.3,
            typo: 0.01,
        }
    }
}

impl NoiseConfig {
    /// A configuration with every probability zero: pages render canonically.
    pub fn none() -> Self {
        NoiseConfig {
            name_variant: 0.0,
            label_variant: 0.0,
            number_format_variant: 0.0,
            unit_variant: 0.0,
            typo: 0.0,
        }
    }

    /// Validate all probabilities are within `[0,1]`.
    pub fn validate(&self) -> Result<(), String> {
        for (label, p) in [
            ("name_variant", self.name_variant),
            ("label_variant", self.label_variant),
            ("number_format_variant", self.number_format_variant),
            ("unit_variant", self.unit_variant),
            ("typo", self.typo),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{label} = {p} outside [0,1]"));
            }
        }
        Ok(())
    }
}

/// Abbreviated person-name variants: "David Smith" → "D. Smith",
/// "Smith, David", or "David R. Smith"-style middle initials.
pub fn name_variant(full: &str, first: &str, last: &str, rng: &mut impl Rng) -> String {
    match rng.gen_range(0..3u8) {
        0 => format!("{}. {}", &first[..1], last),
        1 => format!("{last}, {first}"),
        _ => {
            let mid = (b'A' + rng.gen_range(0..26u8)) as char;
            let _ = full;
            format!("{first} {mid}. {last}")
        }
    }
}

/// Format an integer with or without thousands separators.
pub fn format_number(n: u64, with_separators: bool) -> String {
    if !with_separators {
        return n.to_string();
    }
    let digits = n.to_string();
    let bytes = digits.as_bytes();
    let mut out = String::with_capacity(digits.len() + digits.len() / 3);
    for (i, b) in bytes.iter().enumerate() {
        if i > 0 && (bytes.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(*b as char);
    }
    out
}

/// Render a temperature value with one of the unit spellings extractors must
/// normalize: `70 °F`, `70 F`, or `70 degrees Fahrenheit`.
pub fn format_temp(value: i32, variant: u8) -> String {
    match variant % 3 {
        0 => format!("{value} °F"),
        1 => format!("{value} F"),
        _ => format!("{value} degrees Fahrenheit"),
    }
}

/// Introduce a single-character transposition typo into one word of `s`.
///
/// Words that look numeric or capitalized (likely proper nouns / values) are
/// skipped so that facts stay recoverable; only filler prose degrades.
pub fn typo(s: &str, rng: &mut impl Rng) -> String {
    let words: Vec<&str> = s.split(' ').collect();
    let candidates: Vec<usize> = words
        .iter()
        .enumerate()
        .filter(|(_, w)| w.len() >= 4 && w.chars().all(|c| c.is_ascii_lowercase()))
        .map(|(i, _)| i)
        .collect();
    if candidates.is_empty() {
        return s.to_string();
    }
    let wi = candidates[rng.gen_range(0..candidates.len())];
    let mut out_words: Vec<String> = words.iter().map(|w| w.to_string()).collect();
    let w = &mut out_words[wi];
    let ci = rng.gen_range(0..w.len() - 1);
    let mut chars: Vec<char> = w.chars().collect();
    chars.swap(ci, ci + 1);
    *w = chars.into_iter().collect();
    out_words.join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn default_config_is_valid() {
        assert!(NoiseConfig::default().validate().is_ok());
    }

    #[test]
    fn invalid_probability_rejected() {
        let cfg = NoiseConfig { typo: 1.5, ..NoiseConfig::none() };
        assert!(cfg.validate().unwrap_err().contains("typo"));
    }

    #[test]
    fn name_variants_differ_from_canonical() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..20 {
            let v = name_variant("David Smith", "David", "Smith", &mut rng);
            assert_ne!(v, "David Smith");
            assert!(v.contains("Smith"));
        }
    }

    #[test]
    fn number_formatting() {
        assert_eq!(format_number(1234567, true), "1,234,567");
        assert_eq!(format_number(1234567, false), "1234567");
        assert_eq!(format_number(12, true), "12");
        assert_eq!(format_number(100, true), "100");
        assert_eq!(format_number(1000, true), "1,000");
    }

    #[test]
    fn temp_unit_variants() {
        assert_eq!(format_temp(70, 0), "70 °F");
        assert_eq!(format_temp(70, 1), "70 F");
        assert_eq!(format_temp(-5, 2), "-5 degrees Fahrenheit");
    }

    #[test]
    fn typo_preserves_word_count_and_skips_proper_nouns() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = "Madison enjoys pleasant weather during summer";
        let t = typo(s, &mut rng);
        assert_eq!(t.split(' ').count(), s.split(' ').count());
        assert!(t.contains("Madison"), "proper noun must survive: {t}");
    }

    #[test]
    fn typo_on_empty_or_short_is_identity() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(typo("Hi Bob", &mut rng), "Hi Bob");
        assert_eq!(typo("", &mut rng), "");
    }
}
