//! Corpus generator: facts first, then pages, deterministically from a seed.

use crate::names;
use crate::noise::{self, NoiseConfig};
use crate::render;
use crate::truth::{CityFact, CompanyFact, GroundTruth, PersonFact, PublicationFact};
use crate::types::{DocId, DocKind, Document};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Knobs controlling corpus size and imperfection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusConfig {
    /// RNG seed; everything downstream is a pure function of this config.
    pub seed: u64,
    /// Number of city pages.
    pub n_cities: usize,
    /// Number of distinct real-world people.
    pub n_people: usize,
    /// Fraction of people that get a second page under a name variant
    /// (the ground-truth duplicates for entity resolution).
    pub duplicate_rate: f64,
    /// Number of company pages.
    pub n_companies: usize,
    /// Number of publication pages.
    pub n_publications: usize,
    /// Noise model applied while rendering.
    pub noise: NoiseConfig,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            seed: 0,
            n_cities: 50,
            n_people: 100,
            duplicate_rate: 0.3,
            n_companies: 20,
            n_publications: 40,
            noise: NoiseConfig::default(),
        }
    }
}

/// Invalid corpus configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum CorpusError {
    /// A probability or rate lies outside `[0,1]`.
    InvalidRate {
        /// Which parameter.
        parameter: String,
        /// The offending value.
        value: f64,
    },
}

impl std::fmt::Display for CorpusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CorpusError::InvalidRate { parameter, value } => {
                write!(f, "corpus config: {parameter} = {value} outside [0,1]")
            }
        }
    }
}

impl std::error::Error for CorpusError {}

impl CorpusConfig {
    /// Check every rate and probability is within `[0,1]`.
    pub fn validate(&self) -> Result<(), CorpusError> {
        if !(0.0..=1.0).contains(&self.duplicate_rate) {
            return Err(CorpusError::InvalidRate {
                parameter: "duplicate_rate".into(),
                value: self.duplicate_rate,
            });
        }
        self.noise.validate().map_err(|msg| {
            let (parameter, value) = msg
                .split_once(" = ")
                .and_then(|(p, rest)| {
                    let v = rest.split_whitespace().next()?.parse().ok()?;
                    Some((p.to_string(), v))
                })
                .unwrap_or((msg, f64::NAN));
            CorpusError::InvalidRate { parameter, value }
        })
    }

    /// A small corpus for unit tests and doc examples.
    pub fn tiny(seed: u64) -> Self {
        CorpusConfig {
            seed,
            n_cities: 8,
            n_people: 12,
            duplicate_rate: 0.25,
            n_companies: 5,
            n_publications: 6,
            noise: NoiseConfig::default(),
        }
    }
}

/// A generated corpus: pages plus the ground truth they were rendered from.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// All documents, ids dense in `0..docs.len()`.
    pub docs: Vec<Document>,
    /// The facts each page was rendered from.
    pub truth: GroundTruth,
    /// The configuration that produced this corpus.
    pub config: CorpusConfig,
}

impl Corpus {
    /// Generate a corpus from a configuration. Deterministic in `config`.
    pub fn generate(config: &CorpusConfig) -> Corpus {
        config.noise.validate().expect("invalid noise config");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut docs: Vec<Document> = Vec::new();
        let mut truth = GroundTruth::default();
        fn alloc(docs: &mut Vec<Document>, title: String, text: String, kind: DocKind) -> DocId {
            let id = DocId(docs.len() as u32);
            docs.push(Document { id, title, text, kind });
            id
        }

        // Cities first: other pages reference them.
        for i in 0..config.n_cities {
            let name = names::city_name(i);
            let state = names::STATES[rng.gen_range(0..names::STATES.len())].to_string();
            // Seasonal curve: winter low in [-5, 35], summer amplitude in [25, 55].
            let base = rng.gen_range(-5..=35);
            let amp = rng.gen_range(25..=55);
            let monthly_temp_f: Vec<i32> = (0..12)
                .map(|m| {
                    let phase = (m as f64 - 6.5).abs() / 6.5; // 1 at Jan/Dec, ~0 in July
                    let t = base as f64 + amp as f64 * (1.0 - phase);
                    t.round() as i32 + rng.gen_range(-2..=2)
                })
                .collect();
            let fact = CityFact {
                doc: DocId(docs.len() as u32),
                name: name.clone(),
                state,
                population: rng.gen_range(5_000..2_000_000),
                founded: rng.gen_range(1780..1950),
                monthly_temp_f,
                area_sq_mi: (rng.gen_range(50..5000) as f64) / 10.0,
            };
            let text = render::render_city(&fact, &config.noise, &mut rng);
            let full_title = format!("{}, {}", fact.name, fact.state);
            alloc(&mut docs, full_title, text, DocKind::City);
            truth.cities.push(fact);
        }

        // Companies next: people reference employers.
        for i in 0..config.n_companies {
            let name = names::company_name(i);
            let hq = truth.cities[rng.gen_range(0..truth.cities.len().max(1))].name.clone();
            let fact = CompanyFact {
                doc: DocId(docs.len() as u32),
                name: name.clone(),
                founded: rng.gen_range(1900..2008),
                headquarters: hq,
                industry: names::INDUSTRIES[rng.gen_range(0..names::INDUSTRIES.len())].to_string(),
            };
            let text = render::render_company(&fact, &config.noise, &mut rng);
            alloc(&mut docs, name, text, DocKind::Company);
            truth.companies.push(fact);
        }

        // People; a fraction get a duplicate page under a name variant.
        for i in 0..config.n_people {
            let (full, first, last) = names::person_name(i);
            let employer = if truth.companies.is_empty() {
                "independent".to_string()
            } else {
                truth.companies[rng.gen_range(0..truth.companies.len())].name.clone()
            };
            let residence = truth.cities[rng.gen_range(0..truth.cities.len().max(1))].name.clone();
            let base = PersonFact {
                doc: DocId(docs.len() as u32),
                name: full.clone(),
                birth_year: rng.gen_range(1930..1990),
                employer,
                residence,
                entity: i as u32,
            };
            let text = render::render_person(&base, &full, &config.noise, &mut rng);
            alloc(&mut docs, full.clone(), text, DocKind::Person);
            truth.people.push(base.clone());

            if rng.gen_bool(config.duplicate_rate) {
                let surface = noise::name_variant(&full, first, last, &mut rng);
                let dup = PersonFact { doc: DocId(docs.len() as u32), ..base };
                let text = render::render_person(&dup, &surface, &config.noise, &mut rng);
                alloc(&mut docs, surface, text, DocKind::Person);
                truth.people.push(dup);
            }
        }

        // Publications reference people as authors, sometimes via variants.
        for i in 0..config.n_publications {
            let title = names::paper_title(i, &mut rng);
            let n_authors = rng.gen_range(1..=3.min(config.n_people.max(1)));
            let mut authors = Vec::with_capacity(n_authors);
            let mut surface = Vec::with_capacity(n_authors);
            for _ in 0..n_authors {
                let pi = rng.gen_range(0..config.n_people.max(1));
                let (full, first, last) = names::person_name(pi);
                if rng.gen_bool(config.noise.name_variant) {
                    surface.push(noise::name_variant(&full, first, last, &mut rng));
                } else {
                    surface.push(full.clone());
                }
                authors.push(full);
            }
            let fact = PublicationFact {
                doc: DocId(docs.len() as u32),
                title: title.clone(),
                year: rng.gen_range(1995..2009),
                venue: names::VENUES[rng.gen_range(0..names::VENUES.len())].to_string(),
                authors,
            };
            let text = render::render_publication(&fact, &surface, &config.noise, &mut rng);
            alloc(&mut docs, title, text, DocKind::Publication);
            truth.publications.push(fact);
        }

        Corpus { docs, truth, config: config.clone() }
    }

    /// Total bytes of page text.
    pub fn total_bytes(&self) -> usize {
        self.docs.iter().map(Document::len).sum()
    }

    /// Look up a document by id. Panics if the id is out of range.
    pub fn doc(&self, id: DocId) -> &Document {
        &self.docs[id.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = CorpusConfig::tiny(7);
        let a = Corpus::generate(&cfg);
        let b = Corpus::generate(&cfg);
        assert_eq!(a.docs, b.docs);
        assert_eq!(a.truth.cities, b.truth.cities);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Corpus::generate(&CorpusConfig::tiny(1));
        let b = Corpus::generate(&CorpusConfig::tiny(2));
        assert_ne!(a.docs[0].text, b.docs[0].text);
    }

    #[test]
    fn doc_ids_are_dense_and_match_truth() {
        let c = Corpus::generate(&CorpusConfig::tiny(3));
        for (i, d) in c.docs.iter().enumerate() {
            assert_eq!(d.id.index(), i);
        }
        for cf in &c.truth.cities {
            assert_eq!(c.doc(cf.doc).kind, DocKind::City);
            assert!(c.doc(cf.doc).title.starts_with(&cf.name));
        }
        for pf in &c.truth.people {
            assert_eq!(c.doc(pf.doc).kind, DocKind::Person);
        }
    }

    #[test]
    fn duplicate_rate_produces_clusters() {
        let cfg = CorpusConfig { n_people: 200, duplicate_rate: 0.5, ..CorpusConfig::tiny(11) };
        let c = Corpus::generate(&cfg);
        let clusters = c.truth.person_clusters();
        let multi = clusters.values().filter(|v| v.len() > 1).count();
        assert!(multi > 50, "expected many duplicate clusters, got {multi}");
        assert!(c.truth.people.len() > 200);
    }

    #[test]
    fn zero_duplicate_rate_means_singletons() {
        let cfg = CorpusConfig { duplicate_rate: 0.0, ..CorpusConfig::tiny(4) };
        let c = Corpus::generate(&cfg);
        assert!(c.truth.person_clusters().values().all(|v| v.len() == 1));
    }

    #[test]
    fn temperatures_follow_seasonal_shape() {
        let c = Corpus::generate(&CorpusConfig::tiny(5));
        for city in &c.truth.cities {
            let jan = city.monthly_temp_f[0];
            let jul = city.monthly_temp_f[6];
            assert!(jul > jan, "july {jul} should exceed january {jan}");
            assert_eq!(city.monthly_temp_f.len(), 12);
        }
    }

    #[test]
    fn monthly_temps_within_plausible_bounds() {
        let c = Corpus::generate(&CorpusConfig::tiny(6));
        for city in &c.truth.cities {
            for &t in &city.monthly_temp_f {
                assert!((-20..=130).contains(&t), "temp {t} out of plausible range");
            }
        }
    }

    #[test]
    fn publication_authors_are_real_people() {
        let c = Corpus::generate(&CorpusConfig::tiny(8));
        let names: std::collections::HashSet<_> =
            c.truth.people.iter().map(|p| p.name.as_str()).collect();
        for p in &c.truth.publications {
            for a in &p.authors {
                assert!(names.contains(a.as_str()), "unknown author {a}");
            }
        }
    }

    #[test]
    fn total_bytes_positive() {
        let c = Corpus::generate(&CorpusConfig::tiny(9));
        assert!(c.total_bytes() > 1000);
    }
}
