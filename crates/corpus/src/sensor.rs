//! Sensor-data substrate for the paper's §6 generalization.
//!
//! "Another example is sensor data from which we want to infer real-world
//! events (e.g., someone has entered the room)." The same DGE shape
//! applies: raw readings → extracted events (imperfect) → integration →
//! human verification. This module generates the raw material: per-room
//! motion/temperature streams with ground-truth occupancy intervals, plus
//! the noise (dropouts, spurious triggers) that makes event extraction
//! fallible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Sensor-stream generation knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SensorConfig {
    /// RNG seed.
    pub seed: u64,
    /// Number of rooms (one motion + one temperature sensor each).
    pub n_rooms: usize,
    /// Samples per room (one per minute, say).
    pub samples: usize,
    /// Probability a sample is dropped (sensor dropout).
    pub dropout: f64,
    /// Probability of a spurious motion trigger in an empty room.
    pub false_trigger: f64,
}

impl Default for SensorConfig {
    fn default() -> Self {
        SensorConfig { seed: 0, n_rooms: 8, samples: 600, dropout: 0.02, false_trigger: 0.01 }
    }
}

/// One sensor sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Reading {
    /// Room id.
    pub room: u32,
    /// Sample index (time).
    pub t: u32,
    /// Motion-sensor trigger count in this interval (`None` = dropout).
    pub motion: Option<u8>,
    /// Temperature reading in °F (`None` = dropout).
    pub temp_f: Option<f64>,
}

/// A ground-truth occupancy interval: someone was in `room` during
/// `[enter, leave)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Occupancy {
    /// Room id.
    pub room: u32,
    /// First occupied sample.
    pub enter: u32,
    /// First sample after they left.
    pub leave: u32,
}

/// Generated streams plus ground truth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensorData {
    /// All readings, ordered by (room, t).
    pub readings: Vec<Reading>,
    /// True occupancy intervals.
    pub truth: Vec<Occupancy>,
}

/// Generate sensor streams. Deterministic per config.
pub fn generate(config: &SensorConfig) -> SensorData {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut readings = Vec::with_capacity(config.n_rooms * config.samples);
    let mut truth = Vec::new();
    for room in 0..config.n_rooms as u32 {
        // Occupancy intervals: alternating empty/occupied periods.
        let mut occupied_at = vec![false; config.samples];
        let mut t = rng.gen_range(5..40);
        while t + 5 < config.samples {
            let stay = rng.gen_range(5..40);
            let leave = (t + stay).min(config.samples);
            truth.push(Occupancy { room, enter: t as u32, leave: leave as u32 });
            occupied_at[t..leave].iter_mut().for_each(|o| *o = true);
            t = leave + rng.gen_range(10..60);
        }
        // Render readings: motion fires when occupied (with noise);
        // temperature drifts up while occupied.
        let base_temp: f64 = rng.gen_range(64.0..70.0);
        let mut temp: f64 = base_temp;
        for (i, &occ) in occupied_at.iter().enumerate() {
            temp += if occ { 0.05 } else { -0.02 };
            temp = temp.clamp(base_temp - 1.0, base_temp + 4.0);
            let motion = if rng.gen_bool(config.dropout) {
                None
            } else if occ {
                Some(rng.gen_range(1..5u8))
            } else if rng.gen_bool(config.false_trigger) {
                Some(1)
            } else {
                Some(0)
            };
            let temp_f = if rng.gen_bool(config.dropout) {
                None
            } else {
                Some((temp * 10.0).round() / 10.0)
            };
            readings.push(Reading { room, t: i as u32, motion, temp_f });
        }
    }
    SensorData { readings, truth }
}

impl SensorData {
    /// Readings of one room, time-ordered.
    pub fn room(&self, room: u32) -> impl Iterator<Item = &Reading> {
        self.readings.iter().filter(move |r| r.room == room)
    }

    /// Was `room` truly occupied at time `t`?
    pub fn occupied(&self, room: u32, t: u32) -> bool {
        self.truth.iter().any(|o| o.room == room && (o.enter..o.leave).contains(&t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_sized() {
        let cfg = SensorConfig::default();
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a, b);
        assert_eq!(a.readings.len(), cfg.n_rooms * cfg.samples);
        assert!(!a.truth.is_empty());
    }

    #[test]
    fn occupancy_intervals_are_well_formed_and_disjoint() {
        let d = generate(&SensorConfig::default());
        for o in &d.truth {
            assert!(o.enter < o.leave);
        }
        for room in 0..8u32 {
            let mut intervals: Vec<_> = d.truth.iter().filter(|o| o.room == room).collect();
            intervals.sort_by_key(|o| o.enter);
            for w in intervals.windows(2) {
                assert!(w[0].leave <= w[1].enter, "overlap in room {room}");
            }
        }
    }

    #[test]
    fn motion_tracks_occupancy_statistically() {
        let d = generate(&SensorConfig { dropout: 0.0, false_trigger: 0.0, ..Default::default() });
        for r in &d.readings {
            let occ = d.occupied(r.room, r.t);
            let m = r.motion.unwrap();
            assert_eq!(m > 0, occ, "room {} t {}", r.room, r.t);
        }
    }

    #[test]
    fn noise_produces_dropouts_and_false_triggers() {
        let d = generate(&SensorConfig { dropout: 0.1, false_trigger: 0.1, ..Default::default() });
        let dropouts = d.readings.iter().filter(|r| r.motion.is_none()).count();
        assert!(dropouts > 100, "{dropouts}");
        let spurious =
            d.readings.iter().filter(|r| r.motion == Some(1) && !d.occupied(r.room, r.t)).count();
        assert!(spurious > 50, "{spurious}");
    }

    #[test]
    fn temperature_rises_while_occupied() {
        let d = generate(&SensorConfig { dropout: 0.0, ..Default::default() });
        let o = d.truth.iter().find(|o| o.leave - o.enter > 20).expect("a long stay");
        let temp_at = |t: u32| d.room(o.room).find(|r| r.t == t).and_then(|r| r.temp_f).unwrap();
        assert!(temp_at(o.leave - 1) > temp_at(o.enter), "warmth accumulates");
    }
}
