//! HI question types.
//!
//! Questions follow the paper's "easy to recognize, hard to generate"
//! principle (§3.3): every kind asks a human to *verify or choose*, never to
//! author structure from scratch.

use serde::{Deserialize, Serialize};

/// What the user is being asked to do.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum QuestionKind {
    /// "Do these two records describe the same real-world entity?"
    VerifyMatch {
        /// Rendering of the left record.
        left: String,
        /// Rendering of the right record.
        right: String,
    },
    /// "Is this extracted value correct for this attribute of this page?"
    ValidateValue {
        /// Attribute name.
        attribute: String,
        /// The extracted value.
        value: String,
        /// Context excerpt from the source page.
        context: String,
    },
    /// "Which of these query forms matches your information need?"
    ChooseForm {
        /// Candidate form renderings.
        options: Vec<String>,
    },
    /// "Does this schema attribute correspond to that one?"
    VerifyAttributeMatch {
        /// Left attribute label with sample values.
        left: String,
        /// Right attribute label with sample values.
        right: String,
    },
}

/// A user's answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Answer {
    /// Yes/no verdict (for verify/validate questions).
    Bool(bool),
    /// Selected option index (for choose questions).
    Choice(usize),
}

impl Answer {
    /// Boolean view; panics on a choice answer.
    pub fn as_bool(&self) -> bool {
        match self {
            Answer::Bool(b) => *b,
            Answer::Choice(_) => panic!("choice answer where bool expected"),
        }
    }
}

/// A question with its hidden ground truth.
///
/// The truth is known only because the corpus is synthetic; real systems
/// would not have it. Simulation code uses it to drive user error models and
/// to score outcomes — voting and aggregation code must never look at it
/// (enforced by keeping aggregation functions generic over answers only).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Question {
    /// Caller-assigned id (indexes the caller's item list).
    pub id: usize,
    /// What is being asked.
    pub kind: QuestionKind,
    /// Hidden correct answer.
    pub truth: Answer,
}

impl Question {
    /// Build a yes/no match-verification question.
    pub fn verify_match(id: usize, left: &str, right: &str, truth: bool) -> Question {
        Question {
            id,
            kind: QuestionKind::VerifyMatch { left: left.into(), right: right.into() },
            truth: Answer::Bool(truth),
        }
    }

    /// Build a value-validation question.
    pub fn validate_value(
        id: usize,
        attribute: &str,
        value: &str,
        context: &str,
        truth: bool,
    ) -> Question {
        Question {
            id,
            kind: QuestionKind::ValidateValue {
                attribute: attribute.into(),
                value: value.into(),
                context: context.into(),
            },
            truth: Answer::Bool(truth),
        }
    }

    /// Build a form-choice question.
    pub fn choose_form(id: usize, options: Vec<String>, correct: usize) -> Question {
        assert!(correct < options.len(), "correct option out of range");
        Question { id, kind: QuestionKind::ChooseForm { options }, truth: Answer::Choice(correct) }
    }

    /// Number of possible answers (2 for boolean kinds).
    pub fn n_options(&self) -> usize {
        match &self.kind {
            QuestionKind::ChooseForm { options } => options.len(),
            _ => 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_carry_truth() {
        let q = Question::verify_match(0, "David Smith", "D. Smith", true);
        assert_eq!(q.truth, Answer::Bool(true));
        assert_eq!(q.n_options(), 2);

        let q = Question::choose_form(1, vec!["a".into(), "b".into(), "c".into()], 2);
        assert_eq!(q.truth, Answer::Choice(2));
        assert_eq!(q.n_options(), 3);
    }

    #[test]
    #[should_panic(expected = "correct option out of range")]
    fn choose_form_validates_index() {
        Question::choose_form(0, vec!["a".into()], 3);
    }

    #[test]
    fn answer_as_bool() {
        assert!(Answer::Bool(true).as_bool());
        assert!(!Answer::Bool(false).as_bool());
    }

    #[test]
    #[should_panic(expected = "choice answer")]
    fn as_bool_rejects_choice() {
        Answer::Choice(1).as_bool();
    }
}
