//! Simulated users: noisy oracles with configurable reliability.

use crate::task::{Answer, Question};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// User identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct UserId(pub u32);

/// A simulated user.
///
/// Answers correctly with probability `1 − error_rate`; otherwise answers
/// wrongly (for boolean questions, the flip; for choices, a uniformly random
/// wrong option). An optional `yes_bias` models users who over-confirm:
/// with that probability an erroneous boolean answer is "yes" regardless.
#[derive(Debug, Clone)]
pub struct SimulatedUser {
    /// Identity.
    pub id: UserId,
    /// Probability of answering incorrectly.
    pub error_rate: f64,
    /// Cost in budget units per answered question.
    pub cost_per_answer: u32,
    rng: StdRng,
}

impl SimulatedUser {
    /// Create a user. Determinism: same id/seed/error rate → same answers.
    pub fn new(id: u32, error_rate: f64, seed: u64) -> SimulatedUser {
        assert!((0.0..=1.0).contains(&error_rate), "error rate out of range");
        SimulatedUser {
            id: UserId(id),
            error_rate,
            cost_per_answer: 1,
            rng: StdRng::seed_from_u64(seed ^ (id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Answer a question according to the error model.
    pub fn answer(&mut self, q: &Question) -> Answer {
        let correct = !self.rng.gen_bool(self.error_rate);
        match q.truth {
            Answer::Bool(t) => Answer::Bool(if correct { t } else { !t }),
            Answer::Choice(t) => {
                if correct || q.n_options() < 2 {
                    Answer::Choice(t)
                } else {
                    // Uniform over wrong options.
                    let mut pick = self.rng.gen_range(0..q.n_options() - 1);
                    if pick >= t {
                        pick += 1;
                    }
                    Answer::Choice(pick)
                }
            }
        }
    }
}

/// Build a panel of `n` users with the given per-user error rates cycling,
/// all seeded from `seed`.
pub fn panel(n: usize, error_rates: &[f64], seed: u64) -> Vec<SimulatedUser> {
    assert!(!error_rates.is_empty());
    (0..n).map(|i| SimulatedUser::new(i as u32, error_rates[i % error_rates.len()], seed)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::Question;

    fn q(id: usize, truth: bool) -> Question {
        Question::verify_match(id, "a", "b", truth)
    }

    #[test]
    fn perfect_user_always_correct() {
        let mut u = SimulatedUser::new(0, 0.0, 1);
        for i in 0..50 {
            assert_eq!(u.answer(&q(i, i % 2 == 0)), Answer::Bool(i % 2 == 0));
        }
    }

    #[test]
    fn always_wrong_user_always_flips() {
        let mut u = SimulatedUser::new(0, 1.0, 1);
        for i in 0..50 {
            assert_eq!(u.answer(&q(i, true)), Answer::Bool(false));
        }
    }

    #[test]
    fn error_rate_is_approximately_realized() {
        let mut u = SimulatedUser::new(3, 0.3, 42);
        let n = 2000;
        let wrong = (0..n).filter(|&i| u.answer(&q(i, true)) == Answer::Bool(false)).count();
        let rate = wrong as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.04, "realized {rate}");
    }

    #[test]
    fn choice_errors_pick_wrong_options_uniformly() {
        let mut u = SimulatedUser::new(0, 1.0, 7);
        let q = Question::choose_form(0, vec!["a".into(), "b".into(), "c".into()], 1);
        let mut saw = [0usize; 3];
        for _ in 0..300 {
            if let Answer::Choice(c) = u.answer(&q) {
                saw[c] += 1;
            }
        }
        assert_eq!(saw[1], 0, "never the correct option at error rate 1");
        assert!(saw[0] > 100 && saw[2] > 100, "{saw:?}");
    }

    #[test]
    fn determinism_per_seed() {
        let mut a = SimulatedUser::new(5, 0.4, 9);
        let mut b = SimulatedUser::new(5, 0.4, 9);
        for i in 0..100 {
            assert_eq!(a.answer(&q(i, i % 3 == 0)), b.answer(&q(i, i % 3 == 0)));
        }
    }

    #[test]
    fn panel_cycles_error_rates() {
        let users = panel(5, &[0.1, 0.4], 1);
        assert_eq!(users.len(), 5);
        assert_eq!(users[0].error_rate, 0.1);
        assert_eq!(users[1].error_rate, 0.4);
        assert_eq!(users[2].error_rate, 0.1);
        // Distinct users answer independently.
        let mut u0 = SimulatedUser::new(0, 0.5, 1);
        let mut u1 = SimulatedUser::new(1, 0.5, 1);
        let answers0: Vec<_> = (0..50).map(|i| u0.answer(&q(i, true))).collect();
        let answers1: Vec<_> = (0..50).map(|i| u1.answer(&q(i, true))).collect();
        assert_ne!(answers0, answers1);
    }

    #[test]
    #[should_panic(expected = "error rate out of range")]
    fn invalid_error_rate_rejected() {
        SimulatedUser::new(0, 1.5, 1);
    }
}
