//! Crowds: panels of users answering the same question, with vote
//! aggregation (plain majority, or reputation-weighted).

use crate::oracle::{SimulatedUser, UserId};
use crate::reputation::ReputationTracker;
use crate::task::{Answer, Question};
use std::collections::HashMap;

/// The result of putting one question to a crowd.
#[derive(Debug, Clone, PartialEq)]
pub struct VoteOutcome {
    /// The winning answer.
    pub answer: Answer,
    /// Total weight for the winner / total weight cast.
    pub agreement: f64,
    /// Individual `(user, answer)` ballots.
    pub ballots: Vec<(UserId, Answer)>,
    /// Budget units consumed.
    pub cost: u32,
}

/// A panel of simulated users.
///
/// ```
/// use quarry_hi::oracle::panel;
/// use quarry_hi::{Answer, Crowd, Question};
///
/// let mut crowd = Crowd::new(panel(5, &[0.1], 42));
/// let q = Question::verify_match(0, "David Smith", "D. Smith", true);
/// let outcome = crowd.ask_majority(&q, 5);
/// assert_eq!(outcome.answer, Answer::Bool(true));
/// assert_eq!(outcome.cost, 5);
/// ```
pub struct Crowd {
    users: Vec<SimulatedUser>,
}

impl Crowd {
    /// Wrap a user panel.
    pub fn new(users: Vec<SimulatedUser>) -> Crowd {
        assert!(!users.is_empty(), "a crowd needs at least one user");
        Crowd { users }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// True when the crowd has no members (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }

    /// Ask `k` members (round-robin from `start`) and majority-vote.
    pub fn ask_majority(&mut self, q: &Question, k: usize) -> VoteOutcome {
        self.ask_weighted(q, k, None)
    }

    /// Ask `k` members and aggregate with reputation weights (or uniform
    /// weights when `rep` is `None`). Ties break toward the answer of the
    /// highest-weight ballot.
    pub fn ask_weighted(
        &mut self,
        q: &Question,
        k: usize,
        rep: Option<&ReputationTracker>,
    ) -> VoteOutcome {
        let k = k.clamp(1, self.users.len());
        // Deterministic member choice: rotate by question id so different
        // questions see different sub-panels.
        let n = self.users.len();
        let mut ballots = Vec::with_capacity(k);
        let mut cost = 0u32;
        for i in 0..k {
            let u = &mut self.users[(q.id + i) % n];
            let a = u.answer(q);
            cost += u.cost_per_answer;
            ballots.push((u.id, a));
        }
        let mut tally: HashMap<Answer, f64> = HashMap::new();
        let mut total = 0.0;
        for (uid, a) in &ballots {
            let w = match rep {
                Some(r) => r.weight(*uid).max(1e-6),
                None => 1.0,
            };
            *tally.entry(*a).or_insert(0.0) += w;
            total += w;
        }
        let mut best: Option<(Answer, f64)> = None;
        // Iterate ballots (not the map) so ties break deterministically by
        // ballot order.
        for (_, a) in &ballots {
            let w = tally[a];
            if best.is_none_or(|(_, bw)| w > bw) {
                best = Some((*a, w));
            }
        }
        let (answer, w) = best.expect("k >= 1 ballot");
        VoteOutcome { answer, agreement: if total > 0.0 { w / total } else { 1.0 }, ballots, cost }
    }

    /// Record every ballot of an outcome against a known truth (gold
    /// question) into a reputation tracker.
    pub fn debrief(outcome: &VoteOutcome, truth: Answer, rep: &mut ReputationTracker) {
        for (uid, a) in &outcome.ballots {
            rep.record(*uid, *a == truth);
        }
    }
}

// `Answer` is small and `Copy`; ballots store it by value.

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::panel;

    fn q(id: usize, truth: bool) -> Question {
        Question::verify_match(id, "l", "r", truth)
    }

    fn accuracy(crowd: &mut Crowd, k: usize, rep: Option<&ReputationTracker>, n: usize) -> f64 {
        let mut right = 0;
        for i in 0..n {
            let question = q(i, i % 2 == 0);
            let out = crowd.ask_weighted(&question, k, rep);
            if out.answer == question.truth {
                right += 1;
            }
        }
        right as f64 / n as f64
    }

    #[test]
    fn majority_beats_individual() {
        // Users at 30% error: singly ~70% right; 5-member majority much better.
        let mut single = Crowd::new(panel(1, &[0.3], 11));
        let mut five = Crowd::new(panel(5, &[0.3], 11));
        let a1 = accuracy(&mut single, 1, None, 400);
        let a5 = accuracy(&mut five, 5, None, 400);
        assert!(a5 > a1 + 0.08, "single {a1:.3}, crowd {a5:.3}");
        assert!(a5 > 0.8);
    }

    #[test]
    fn reputation_weighting_suppresses_bad_users() {
        // 2 good users + 3 near-adversarial users: plain majority loses,
        // reputation-weighted voting recovers.
        let users = panel(5, &[0.05, 0.45, 0.45, 0.05, 0.45], 29);
        let mut crowd = Crowd::new(users);
        // Warm-up: learn reputations on 150 gold questions.
        let mut rep = ReputationTracker::new();
        for i in 0..150 {
            let question = q(10_000 + i, i % 2 == 0);
            let out = crowd.ask_majority(&question, 5);
            Crowd::debrief(&out, question.truth, &mut rep);
        }
        let mut crowd2 = Crowd::new(panel(5, &[0.05, 0.45, 0.45, 0.05, 0.45], 31));
        let plain = accuracy(&mut crowd2, 5, None, 300);
        let mut crowd3 = Crowd::new(panel(5, &[0.05, 0.45, 0.45, 0.05, 0.45], 31));
        let weighted = accuracy(&mut crowd3, 5, Some(&rep), 300);
        assert!(weighted > plain, "weighted {weighted:.3} vs plain {plain:.3}");
        assert!(weighted > 0.9, "{weighted:.3}");
    }

    #[test]
    fn outcome_reports_cost_and_ballots() {
        let mut crowd = Crowd::new(panel(4, &[0.0], 1));
        let out = crowd.ask_majority(&q(0, true), 3);
        assert_eq!(out.cost, 3);
        assert_eq!(out.ballots.len(), 3);
        assert_eq!(out.answer, Answer::Bool(true));
        assert_eq!(out.agreement, 1.0);
    }

    #[test]
    fn k_is_clamped_to_crowd_size() {
        let mut crowd = Crowd::new(panel(2, &[0.0], 1));
        let out = crowd.ask_majority(&q(0, false), 10);
        assert_eq!(out.ballots.len(), 2);
    }

    #[test]
    fn debrief_updates_reputation() {
        let mut crowd = Crowd::new(panel(2, &[0.0, 1.0], 5));
        let mut rep = ReputationTracker::new();
        for i in 0..20 {
            let question = q(i, true);
            let out = crowd.ask_majority(&question, 2);
            Crowd::debrief(&out, question.truth, &mut rep);
        }
        assert!(rep.reliability(UserId(0)).mean() > 0.9);
        assert!(rep.reliability(UserId(1)).mean() < 0.1);
    }

    #[test]
    #[should_panic(expected = "at least one user")]
    fn empty_crowd_rejected() {
        Crowd::new(vec![]);
    }
}
