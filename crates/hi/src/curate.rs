//! The generic HI repair loop: spend a human budget on the automatic
//! system's most questionable decisions and override them with crowd
//! verdicts.
//!
//! This is the crate's integration point with IE/II: the caller hands over
//! items with automatic decisions and scores (plus hidden truth so simulated
//! users can be driven), a crowd, a budget, and a policy; it gets back
//! curated decisions and an accounting of what changed.

use crate::crowd::Crowd;
use crate::policy::SelectionPolicy;
use crate::reputation::ReputationTracker;
use crate::task::{Answer, Question, QuestionKind};

/// One automatic decision eligible for human review.
#[derive(Debug, Clone, PartialEq)]
pub struct UncertainItem {
    /// Caller id (preserved in the report).
    pub id: usize,
    /// Rendering shown to the (simulated) user.
    pub prompt_left: String,
    /// Second rendering (right side of a match question).
    pub prompt_right: String,
    /// The automatic decision (true = positive/match).
    pub auto_decision: bool,
    /// The automatic score in `[0,1]` that produced the decision.
    pub auto_score: f64,
    /// Hidden ground truth driving the simulated users.
    pub truth: bool,
}

/// Curation knobs.
#[derive(Debug, Clone)]
pub struct CurateConfig {
    /// Total budget units available.
    pub budget: u32,
    /// Crowd members consulted per question.
    pub votes_per_question: usize,
    /// Task-selection policy.
    pub policy: SelectionPolicy,
    /// Optional reputation tracker for weighted voting (updated in place
    /// from each outcome when provided, treating the majority as consensus).
    pub reputation: Option<ReputationTracker>,
}

/// What curation did.
#[derive(Debug, Clone, PartialEq)]
pub struct CurateReport {
    /// Final decision per item (same order as the input).
    pub decisions: Vec<bool>,
    /// Which items were reviewed.
    pub reviewed: Vec<usize>,
    /// How many decisions changed.
    pub overrides: usize,
    /// Budget actually spent.
    pub spent: u32,
    /// The (possibly updated) reputation tracker.
    pub reputation: Option<ReputationTracker>,
}

/// Run the loop.
pub fn curate(items: &[UncertainItem], crowd: &mut Crowd, cfg: CurateConfig) -> CurateReport {
    let scores: Vec<f64> = items.iter().map(|i| i.auto_score).collect();
    let order = cfg.policy.order(&scores);
    let mut decisions: Vec<bool> = items.iter().map(|i| i.auto_decision).collect();
    let mut reviewed = Vec::new();
    let mut overrides = 0usize;
    let mut spent = 0u32;
    let mut reputation = cfg.reputation;

    for idx in order {
        if spent >= cfg.budget {
            break;
        }
        let item = &items[idx];
        let q = Question {
            id: item.id,
            kind: QuestionKind::VerifyMatch {
                left: item.prompt_left.clone(),
                right: item.prompt_right.clone(),
            },
            truth: Answer::Bool(item.truth),
        };
        let outcome = crowd.ask_weighted(&q, cfg.votes_per_question, reputation.as_ref());
        spent += outcome.cost;
        reviewed.push(idx);
        let verdict = outcome.answer.as_bool();
        if verdict != decisions[idx] {
            decisions[idx] = verdict;
            overrides += 1;
        }
        // Update reputations against the consensus (not the hidden truth:
        // a real system cannot see it).
        if let Some(rep) = reputation.as_mut() {
            for (uid, a) in &outcome.ballots {
                rep.record(*uid, *a == outcome.answer);
            }
        }
    }

    CurateReport { decisions, reviewed, overrides, spent, reputation }
}

/// Accuracy of a decision vector against the hidden truths.
pub fn decision_accuracy(items: &[UncertainItem], decisions: &[bool]) -> f64 {
    if items.is_empty() {
        return 1.0;
    }
    let right = items.iter().zip(decisions).filter(|(i, &d)| i.truth == d).count();
    right as f64 / items.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::panel;

    /// Items whose automatic decisions are wrong exactly when the score is
    /// near the boundary — the regime the paper says HI should repair.
    fn items(n: usize) -> Vec<UncertainItem> {
        (0..n)
            .map(|i| {
                let truth = i % 2 == 0;
                let near_boundary = i % 3 == 0;
                let (score, decision) = if near_boundary {
                    // Uncertain and wrong half the time.
                    (0.5 + if truth { -0.02 } else { 0.02 }, !truth)
                } else {
                    (if truth { 0.9 } else { 0.1 }, truth)
                };
                UncertainItem {
                    id: i,
                    prompt_left: format!("left {i}"),
                    prompt_right: format!("right {i}"),
                    auto_decision: decision,
                    auto_score: score,
                    truth,
                }
            })
            .collect()
    }

    fn run(policy: SelectionPolicy, budget: u32) -> (f64, CurateReport) {
        let its = items(60);
        let mut crowd = Crowd::new(panel(5, &[0.1], 77));
        let report = curate(
            &its,
            &mut crowd,
            CurateConfig { budget, votes_per_question: 3, policy, reputation: None },
        );
        (decision_accuracy(&its, &report.decisions), report)
    }

    #[test]
    fn zero_budget_changes_nothing() {
        let (acc, report) = run(SelectionPolicy::UncertaintyFirst, 0);
        assert_eq!(report.spent, 0);
        assert_eq!(report.overrides, 0);
        let auto_acc = decision_accuracy(
            &items(60),
            &items(60).iter().map(|i| i.auto_decision).collect::<Vec<_>>(),
        );
        assert_eq!(acc, auto_acc);
    }

    #[test]
    fn budget_buys_accuracy() {
        let (acc0, _) = run(SelectionPolicy::UncertaintyFirst, 0);
        let (acc_full, report) = run(SelectionPolicy::UncertaintyFirst, 3 * 60);
        assert!(acc_full > acc0 + 0.2, "auto {acc0:.3} vs curated {acc_full:.3}");
        assert!(report.overrides > 0);
    }

    #[test]
    fn uncertainty_sampling_beats_random_at_small_budget() {
        // Budget covers only 1/3 of items; targeting the boundary matters.
        let budget = 60; // 20 questions at 3 votes
        let (acc_u, _) = run(SelectionPolicy::UncertaintyFirst, budget);
        let (acc_r, _) = run(SelectionPolicy::Random, budget);
        assert!(acc_u > acc_r, "uncertainty {acc_u:.3} vs random {acc_r:.3}");
    }

    #[test]
    fn budget_is_respected() {
        let (_, report) = run(SelectionPolicy::Random, 10);
        assert!(report.spent <= 12, "spent {}", report.spent); // ≤ budget + one in-flight question
        assert!(report.reviewed.len() <= 4);
    }

    #[test]
    fn reputation_tracker_is_threaded_through() {
        let its = items(30);
        let mut crowd = Crowd::new(panel(5, &[0.05, 0.4], 9));
        let report = curate(
            &its,
            &mut crowd,
            CurateConfig {
                budget: 90,
                votes_per_question: 5,
                policy: SelectionPolicy::UncertaintyFirst,
                reputation: Some(ReputationTracker::new()),
            },
        );
        let rep = report.reputation.expect("tracker returned");
        assert!(!rep.is_empty());
    }

    #[test]
    fn empty_items_is_trivial() {
        let mut crowd = Crowd::new(panel(2, &[0.1], 1));
        let report = curate(
            &[],
            &mut crowd,
            CurateConfig {
                budget: 10,
                votes_per_question: 1,
                policy: SelectionPolicy::Random,
                reputation: None,
            },
        );
        assert!(report.decisions.is_empty());
        assert_eq!(decision_accuracy(&[], &report.decisions), 1.0);
    }
}
