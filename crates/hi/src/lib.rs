//! Human intervention (HI), simulated.
//!
//! The paper's central bet is that end-to-end systems for unstructured data
//! must keep humans in the loop: automatic IE/II "often will not be 100%
//! accurate", while people — especially crowds of them, Web 2.0 style — can
//! verify what machines cannot generate. This crate models that loop with
//! *simulated* users whose error rates are known, so every claim about HI
//! (accuracy vs. budget, crowd size, reputation weighting, task selection)
//! becomes measurable. The substitution is recorded in DESIGN.md §2.
//!
//! - [`task`] — the question types a system may route to people;
//! - [`oracle`] — simulated users: configurable accuracy, bias, unit cost;
//! - [`crowd`] — panels of users, majority and reputation-weighted voting;
//! - [`reputation`] — Beta-posterior reliability tracking per user;
//! - [`policy`] — which task to spend the next budget unit on (random /
//!   uncertainty sampling / model-disagreement);
//! - [`curate`] — the generic HI repair loop: take uncertain automatic
//!   decisions, spend budget, return curated decisions.

#![forbid(unsafe_code)]

pub mod crowd;
pub mod curate;
pub mod oracle;
pub mod policy;
pub mod reputation;
pub mod task;

pub use crowd::{Crowd, VoteOutcome};
pub use curate::{curate, CurateConfig, CurateReport, UncertainItem};
pub use oracle::{SimulatedUser, UserId};
pub use policy::SelectionPolicy;
pub use reputation::ReputationTracker;
pub use task::{Answer, Question, QuestionKind};
