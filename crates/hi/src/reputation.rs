//! User reputation: Beta-posterior reliability estimates.
//!
//! The blueprint's user layer "manage[s] user reputation (e.g., for mass
//! collaboration)". Each user's reliability is tracked as a Beta(α, β)
//! posterior over their probability of answering correctly, updated from
//! gold questions (known answers) or from agreement with the crowd
//! consensus. The posterior mean weights their future votes.

use crate::oracle::UserId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Per-user Beta posterior.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Reliability {
    /// Successes + prior.
    pub alpha: f64,
    /// Failures + prior.
    pub beta: f64,
}

impl Reliability {
    /// Posterior mean P(correct).
    pub fn mean(&self) -> f64 {
        self.alpha / (self.alpha + self.beta)
    }

    /// Number of observations behind the estimate.
    pub fn observations(&self) -> f64 {
        self.alpha + self.beta - 2.0 // minus the uniform prior
    }
}

/// Reputation tracker over a user population.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ReputationTracker {
    users: HashMap<UserId, Reliability>,
}

impl ReputationTracker {
    /// Empty tracker: unknown users start at Beta(1,1) (mean 0.5).
    pub fn new() -> ReputationTracker {
        ReputationTracker::default()
    }

    /// Record an observed outcome for a user.
    pub fn record(&mut self, user: UserId, correct: bool) {
        let r = self.users.entry(user).or_insert(Reliability { alpha: 1.0, beta: 1.0 });
        if correct {
            r.alpha += 1.0;
        } else {
            r.beta += 1.0;
        }
    }

    /// Current reliability estimate for a user.
    pub fn reliability(&self, user: UserId) -> Reliability {
        self.users.get(&user).copied().unwrap_or(Reliability { alpha: 1.0, beta: 1.0 })
    }

    /// Voting weight for a user: log-odds of their estimated reliability,
    /// floored at 0 (a user at or below coin-flip gets no say, not a
    /// negative say — robust when estimates are noisy).
    pub fn weight(&self, user: UserId) -> f64 {
        let p = self.reliability(user).mean().clamp(0.01, 0.99);
        (p / (1.0 - p)).ln().max(0.0)
    }

    /// Number of users with any history.
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// True when no user has history.
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_users_are_coin_flips() {
        let t = ReputationTracker::new();
        assert_eq!(t.reliability(UserId(9)).mean(), 0.5);
        assert_eq!(t.weight(UserId(9)), 0.0);
    }

    #[test]
    fn history_separates_good_from_bad() {
        let mut t = ReputationTracker::new();
        for _ in 0..20 {
            t.record(UserId(1), true);
            t.record(UserId(2), false);
        }
        t.record(UserId(1), false);
        t.record(UserId(2), true);
        assert!(t.reliability(UserId(1)).mean() > 0.85);
        assert!(t.reliability(UserId(2)).mean() < 0.15);
        assert!(t.weight(UserId(1)) > 1.0);
        assert_eq!(t.weight(UserId(2)), 0.0, "bad users floored, not negative");
    }

    #[test]
    fn observations_count() {
        let mut t = ReputationTracker::new();
        t.record(UserId(3), true);
        t.record(UserId(3), false);
        assert_eq!(t.reliability(UserId(3)).observations(), 2.0);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn weight_grows_with_evidence() {
        let mut t = ReputationTracker::new();
        t.record(UserId(1), true);
        let w1 = t.weight(UserId(1));
        for _ in 0..10 {
            t.record(UserId(1), true);
        }
        assert!(t.weight(UserId(1)) > w1);
    }
}
