//! Task-selection policies: which question deserves the next budget unit?
//!
//! DESIGN.md ablates uncertainty sampling against random selection (E2):
//! spending human attention on the decisions the automatic system is *least
//! sure about* should buy more accuracy per unit than spending it uniformly.

use serde::{Deserialize, Serialize};

/// How to order candidate tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SelectionPolicy {
    /// Uniform-ish order (by a hash of the id — deterministic but unrelated
    /// to informativeness).
    Random,
    /// Most-uncertain first: automatic score closest to the decision
    /// boundary 0.5.
    UncertaintyFirst,
    /// Highest automatic score first — verify the system's positives.
    /// Wins whenever the matcher's residual errors are confident false
    /// positives (E2's measured regime); loses when errors sit at the
    /// decision boundary.
    HighestScoreFirst,
}

fn mix(mut x: u64) -> u64 {
    // splitmix64 finalizer: a deterministic stand-in for shuffling.
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl SelectionPolicy {
    /// Order task indexes by priority under this policy.
    ///
    /// `scores[i]` is the automatic system's confidence that item `i` is a
    /// positive (e.g. a match), in `[0,1]`.
    pub fn order(&self, scores: &[f64]) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..scores.len()).collect();
        match self {
            SelectionPolicy::Random => idx.sort_by_key(|&i| mix(i as u64)),
            SelectionPolicy::UncertaintyFirst => {
                idx.sort_by(|&a, &b| {
                    let da = (scores[a] - 0.5).abs();
                    let db = (scores[b] - 0.5).abs();
                    da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(&b))
                });
            }
            SelectionPolicy::HighestScoreFirst => {
                idx.sort_by(|&a, &b| {
                    scores[b]
                        .partial_cmp(&scores[a])
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.cmp(&b))
                });
            }
        }
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCORES: [f64; 5] = [0.9, 0.52, 0.1, 0.45, 0.7];

    #[test]
    fn uncertainty_first_prefers_the_boundary() {
        let order = SelectionPolicy::UncertaintyFirst.order(&SCORES);
        assert_eq!(order[0], 1); // 0.52 — closest to 0.5
        assert_eq!(order[1], 3); // 0.45
        assert_eq!(*order.last().unwrap(), 2); // 0.1 — most certain
    }

    #[test]
    fn highest_score_first() {
        let order = SelectionPolicy::HighestScoreFirst.order(&SCORES);
        assert_eq!(order[0], 0);
        assert_eq!(order[1], 4);
    }

    #[test]
    fn random_is_deterministic_permutation() {
        let a = SelectionPolicy::Random.order(&SCORES);
        let b = SelectionPolicy::Random.order(&SCORES);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn empty_scores_empty_order() {
        assert!(SelectionPolicy::Random.order(&[]).is_empty());
    }
}
