//! The work-stealing thread pool.
//!
//! Workers are spawned per stage inside [`std::thread::scope`], so
//! closures may borrow the caller's data freely. Each worker owns a
//! deque of batch ranges; it pops its own work from the front and, when
//! empty, steals from the back of a sibling's deque. Results are
//! collected per batch and reassembled in input order, which makes the
//! output independent of the schedule.

use std::cmp::Ordering;
use std::collections::VecDeque;
use std::ops::Range;
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use crate::report::{ExecReport, StageReport};

/// Lock a work queue, recovering from poisoning. Queue critical sections
/// only push/pop whole ranges — a panic can never leave a deque
/// half-updated — so a poisoned flag (set when a panicking stage unwinds
/// through a worker) carries no corruption and must not cascade into
/// panics on every later stage that touches the same pool.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Default number of items per batch.
const DEFAULT_BATCH: usize = 32;

/// Below this many items a parallel sort is not worth the merge pass.
const MIN_PARALLEL_SORT: usize = 2048;

/// A configured executor. Cheap to copy; threads are spawned per stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecPool {
    threads: usize,
    batch_size: usize,
}

/// What one worker did during a stage.
struct WorkerLog<R> {
    /// `(batch_start, results)` for every batch this worker ran.
    batches: Vec<(usize, Vec<R>)>,
    /// Wall-clock latency of each batch this worker ran.
    latencies: Vec<Duration>,
    /// How many of its batches came from another worker's deque.
    stolen: usize,
}

impl ExecPool {
    /// Pool with `threads` workers; `0` means one worker per available
    /// CPU.
    pub fn new(threads: usize) -> ExecPool {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            threads
        };
        ExecPool { threads, batch_size: DEFAULT_BATCH }
    }

    /// A pool that always runs inline on the calling thread.
    pub fn sequential() -> ExecPool {
        ExecPool { threads: 1, batch_size: DEFAULT_BATCH }
    }

    /// Override the number of items per batch (minimum 1).
    pub fn with_batch_size(mut self, batch_size: usize) -> ExecPool {
        self.batch_size = batch_size.max(1);
        self
    }

    /// Number of worker threads this pool will use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Apply `f` to every item, returning results in input order.
    ///
    /// Determinism: `f` runs exactly once per index, each batch stores
    /// its results keyed by its start index, and the final vector is
    /// assembled by ascending start index. The schedule (which worker
    /// ran which batch, and when) therefore cannot influence the output:
    /// `map(..)[i] == f(i, &items[i])` always, exactly as in a
    /// sequential loop.
    pub fn map<T, R, F>(&self, stage: &str, items: &[T], f: F, report: &mut ExecReport) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let n = items.len();
        // Inline when parallelism cannot pay for thread spawns: fewer
        // batches than workers means most workers would idle.
        if self.threads <= 1 || n <= self.batch_size {
            let start = Instant::now();
            let out: Vec<R> = items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
            let elapsed = start.elapsed();
            report.stages.push(StageReport {
                stage: stage.to_string(),
                items: n,
                batches: if n == 0 { 0 } else { 1 },
                threads: 1,
                stolen_batches: 0,
                elapsed,
                min_batch: elapsed,
                mean_batch: elapsed,
                max_batch: elapsed,
            });
            return out;
        }

        let started = Instant::now();
        let workers = self.threads.min(n.div_ceil(self.batch_size));
        let queues: Vec<Mutex<VecDeque<Range<usize>>>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        let mut batches = 0usize;
        let mut lo = 0usize;
        while lo < n {
            let hi = (lo + self.batch_size).min(n);
            lock(&queues[batches % workers]).push_back(lo..hi);
            batches += 1;
            lo = hi;
        }

        let logs: Vec<WorkerLog<R>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|wid| {
                    let queues = &queues;
                    let f = &f;
                    scope.spawn(move || {
                        let mut log =
                            WorkerLog { batches: Vec::new(), latencies: Vec::new(), stolen: 0 };
                        loop {
                            // Own work first (front), then steal from a
                            // sibling's opposite end to limit contention.
                            let mut grabbed = lock(&queues[wid]).pop_front();
                            if grabbed.is_none() {
                                for off in 1..workers {
                                    let victim = (wid + off) % workers;
                                    if let Some(r) = lock(&queues[victim]).pop_back() {
                                        log.stolen += 1;
                                        grabbed = Some(r);
                                        break;
                                    }
                                }
                            }
                            let Some(range) = grabbed else { break };
                            let t0 = Instant::now();
                            let start = range.start;
                            let out: Vec<R> = items[range.clone()]
                                .iter()
                                .zip(range)
                                .map(|(t, i)| f(i, t))
                                .collect();
                            log.latencies.push(t0.elapsed());
                            log.batches.push((start, out));
                        }
                        log
                    })
                })
                .collect();
            // A panicking closure fails only this stage: re-raise the first
            // worker's payload on the caller after every thread has joined,
            // leaving the pool and its queues reusable.
            let mut first_panic = None;
            let logs: Vec<WorkerLog<R>> = handles
                .into_iter()
                .filter_map(|h| match h.join() {
                    Ok(log) => Some(log),
                    Err(payload) => {
                        first_panic.get_or_insert(payload);
                        None
                    }
                })
                .collect();
            if let Some(payload) = first_panic {
                std::panic::resume_unwind(payload);
            }
            logs
        });

        let mut stolen = 0usize;
        let mut latencies: Vec<Duration> = Vec::with_capacity(batches);
        let mut keyed: Vec<(usize, Vec<R>)> = Vec::with_capacity(batches);
        for log in logs {
            stolen += log.stolen;
            latencies.extend(log.latencies);
            keyed.extend(log.batches);
        }
        keyed.sort_unstable_by_key(|(start, _)| *start);
        let mut out = Vec::with_capacity(n);
        for (_, chunk) in keyed {
            out.extend(chunk);
        }

        let elapsed = started.elapsed();
        let total: Duration = latencies.iter().sum();
        report.stages.push(StageReport {
            stage: stage.to_string(),
            items: n,
            batches,
            threads: workers,
            stolen_batches: stolen,
            elapsed,
            min_batch: latencies.iter().min().copied().unwrap_or_default(),
            mean_batch: total.checked_div(latencies.len() as u32).unwrap_or_default(),
            max_batch: latencies.iter().max().copied().unwrap_or_default(),
        });
        out
    }

    /// Stable-equivalent parallel sort: returns exactly what
    /// `items.sort_by(cmp)` (std's stable sort) would produce.
    ///
    /// Each element is tagged with its original index and `(cmp, index)`
    /// is used as a total order, which is precisely the permutation a
    /// stable sort realises. Contiguous chunks are sorted on the workers
    /// and merged with a k-way merge under the same total order, so the
    /// result is the unique sorted sequence — independent of chunking.
    pub fn sort_by<T, F>(
        &self,
        stage: &str,
        mut items: Vec<T>,
        cmp: F,
        report: &mut ExecReport,
    ) -> Vec<T>
    where
        T: Send,
        F: Fn(&T, &T) -> Ordering + Sync,
    {
        let n = items.len();
        if self.threads <= 1 || n < MIN_PARALLEL_SORT {
            let start = Instant::now();
            items.sort_by(&cmp);
            let elapsed = start.elapsed();
            report.stages.push(StageReport {
                stage: stage.to_string(),
                items: n,
                batches: if n == 0 { 0 } else { 1 },
                threads: 1,
                stolen_batches: 0,
                elapsed,
                min_batch: elapsed,
                mean_batch: elapsed,
                max_batch: elapsed,
            });
            return items;
        }

        let started = Instant::now();
        let mut tagged: Vec<(usize, T)> = items.into_iter().enumerate().collect();
        let workers = self.threads;
        let chunk_len = n.div_ceil(workers);
        let total = |a: &(usize, T), b: &(usize, T)| cmp(&a.1, &b.1).then(a.0.cmp(&b.0));

        let mut latencies: Vec<Duration> = Vec::with_capacity(workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = tagged
                .chunks_mut(chunk_len)
                .map(|chunk| {
                    scope.spawn(|| {
                        let t0 = Instant::now();
                        // (cmp, index) is a total order, so an unstable
                        // sort is deterministic here.
                        chunk.sort_unstable_by(total);
                        t0.elapsed()
                    })
                })
                .collect();
            let mut first_panic = None;
            for h in handles {
                match h.join() {
                    Ok(latency) => latencies.push(latency),
                    Err(payload) => {
                        first_panic.get_or_insert(payload);
                    }
                }
            }
            // As in `map`: a panicking comparator fails this sort only.
            if let Some(payload) = first_panic {
                std::panic::resume_unwind(payload);
            }
        });

        // K-way merge of the sorted runs under the same total order.
        let mut runs: Vec<std::vec::IntoIter<(usize, T)>> = Vec::with_capacity(workers);
        {
            let mut rest = tagged;
            while rest.len() > chunk_len {
                let tail = rest.split_off(chunk_len);
                runs.push(rest.into_iter());
                rest = tail;
            }
            runs.push(rest.into_iter());
        }
        let mut heads: Vec<Option<(usize, T)>> = runs.iter_mut().map(|r| r.next()).collect();
        let mut out: Vec<T> = Vec::with_capacity(n);
        loop {
            let mut best: Option<usize> = None;
            for (i, head) in heads.iter().enumerate() {
                if let Some(h) = head {
                    match best {
                        // quarry-audit: allow(QA101, reason = "best only ever holds an index whose head is Some")
                        Some(b) if total(heads[b].as_ref().unwrap(), h) != Ordering::Greater => {}
                        _ => best = Some(i),
                    }
                }
            }
            let Some(b) = best else { break };
            // quarry-audit: allow(QA101, reason = "best only ever holds an index whose head is Some")
            let (_, value) = heads[b].take().unwrap();
            out.push(value);
            heads[b] = runs[b].next();
        }

        let elapsed = started.elapsed();
        let batches = latencies.len();
        let sum: Duration = latencies.iter().sum();
        report.stages.push(StageReport {
            stage: stage.to_string(),
            items: n,
            batches,
            threads: workers,
            stolen_batches: 0,
            elapsed,
            min_batch: latencies.iter().min().copied().unwrap_or_default(),
            mean_batch: sum.checked_div(batches as u32).unwrap_or_default(),
            max_batch: latencies.iter().max().copied().unwrap_or_default(),
        });
        out
    }
}

impl Default for ExecPool {
    fn default() -> ExecPool {
        ExecPool::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_matches_sequential_at_every_thread_count() {
        let items: Vec<u64> = (0..1000).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for threads in [1, 2, 3, 4, 8] {
            let pool = ExecPool::new(threads).with_batch_size(7);
            let mut report = ExecReport::new();
            let got = pool.map("square", &items, |_, x| x * x + 1, &mut report);
            assert_eq!(got, expected, "threads={threads}");
            let stage = report.stage("square").unwrap();
            assert_eq!(stage.items, 1000);
            assert!(stage.batches >= 1);
        }
    }

    #[test]
    fn map_passes_true_indices() {
        let items = vec!["a"; 500];
        let pool = ExecPool::new(4).with_batch_size(13);
        let mut report = ExecReport::new();
        let got = pool.map("idx", &items, |i, _| i, &mut report);
        assert_eq!(got, (0..500).collect::<Vec<_>>());
    }

    #[test]
    fn map_handles_empty_and_tiny_inputs() {
        let pool = ExecPool::new(8);
        let mut report = ExecReport::new();
        let empty: Vec<u32> = pool.map("empty", &[], |_, x: &u32| *x, &mut report);
        assert!(empty.is_empty());
        assert_eq!(report.stage("empty").unwrap().batches, 0);
        let one = pool.map("one", &[41u32], |_, x| x + 1, &mut report);
        assert_eq!(one, vec![42]);
        assert_eq!(report.stage("one").unwrap().threads, 1);
    }

    #[test]
    fn sort_matches_stable_sort_with_duplicate_keys() {
        // Many duplicate keys + distinct payloads expose any
        // stability violation.
        let items: Vec<(u8, usize)> = (0..10_000).map(|i| ((i % 7) as u8, i)).collect();
        let mut expected = items.clone();
        expected.sort_by_key(|a| a.0);
        for threads in [1, 2, 3, 8] {
            let pool = ExecPool::new(threads);
            let mut report = ExecReport::new();
            let got = pool.sort_by("s", items.clone(), |a, b| a.0.cmp(&b.0), &mut report);
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn panicking_closure_fails_its_stage_and_pool_stays_reusable() {
        let items: Vec<u64> = (0..500).collect();
        let pool = ExecPool::new(4).with_batch_size(13);
        let mut report = ExecReport::new();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.map(
                "boom",
                &items,
                |i, x| if i == 137 { panic!("task 137 failed") } else { x * 2 },
                &mut report,
            )
        }));
        let payload = result.expect_err("the stage must fail");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "task 137 failed", "caller sees the original panic payload");
        // One bad task must not take the pool down with it: the next stage
        // over the same pool runs normally.
        let mut report = ExecReport::new();
        let got = pool.map("after", &items, |_, x| x + 1, &mut report);
        assert_eq!(got, (1..=500).collect::<Vec<u64>>());
    }

    #[test]
    fn zero_threads_resolves_to_available_parallelism() {
        assert!(ExecPool::new(0).threads() >= 1);
        assert_eq!(ExecPool::sequential().threads(), 1);
    }
}
