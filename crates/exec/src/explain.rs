//! Shared plan-tree rendering for EXPLAIN output.
//!
//! Both the pipeline language's logical plans (`quarry-lang`) and the
//! structured query engine's physical plans (`quarry-query`) need to show
//! the user an operator tree with per-operator annotations. This module is
//! the one renderer they share, so the two EXPLAIN surfaces stay visually
//! consistent: a header line for the root, then children drawn with
//! box-drawing connectors.
//!
//! ```text
//! Aggregate[AVG(temp)] (rows=1)
//! └─ Access[temps via index eq(city)] (est=12, scanned=12, rows=7)
//! ```

/// One node of a displayable plan tree: a label plus ordered children.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanNode {
    /// Operator description, annotations included (single line).
    pub label: String,
    /// Inputs, rendered below with tree connectors.
    pub children: Vec<PlanNode>,
}

impl PlanNode {
    /// A leaf node.
    pub fn leaf(label: impl Into<String>) -> PlanNode {
        PlanNode { label: label.into(), children: Vec::new() }
    }

    /// A node with children (first child rendered first).
    pub fn branch(label: impl Into<String>, children: Vec<PlanNode>) -> PlanNode {
        PlanNode { label: label.into(), children }
    }

    /// Render the tree: root label on its own line, descendants indented
    /// with `├─`/`└─` connectors and `│` continuation rails.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.label);
        out.push('\n');
        self.render_children("", &mut out);
        out
    }

    fn render_children(&self, prefix: &str, out: &mut String) {
        let last = self.children.len().saturating_sub(1);
        for (i, child) in self.children.iter().enumerate() {
            let (connector, rail) =
                if i == last { ("└─ ", "   ") } else { ("├─ ", "│  ") };
            out.push_str(prefix);
            out.push_str(connector);
            out.push_str(&child.label);
            out.push('\n');
            child.render_children(&format!("{prefix}{rail}"), out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_renders_label_only() {
        assert_eq!(PlanNode::leaf("Scan[t]").render(), "Scan[t]\n");
    }

    #[test]
    fn nested_tree_uses_connectors_and_rails() {
        let tree = PlanNode::branch(
            "Join",
            vec![
                PlanNode::branch("Filter", vec![PlanNode::leaf("Scan[a]")]),
                PlanNode::leaf("Scan[b]"),
            ],
        );
        let text = tree.render();
        assert_eq!(text, "Join\n├─ Filter\n│  └─ Scan[a]\n└─ Scan[b]\n");
    }

    #[test]
    fn single_chain_uses_only_last_connector() {
        let tree = PlanNode::branch(
            "Sort",
            vec![PlanNode::branch("Project", vec![PlanNode::leaf("Scan[t]")])],
        );
        assert_eq!(tree.render(), "Sort\n└─ Project\n   └─ Scan[t]\n");
    }
}
