//! Span-carrying diagnostics shared by the pipeline language and the
//! structured query engine.
//!
//! The paper's processing layer promises that declarative programs are
//! "parsed, reformulated, optimized, then executed" — which only pays off
//! if a bad program is rejected *before* the (expensive) extraction pass.
//! This module is the substrate for that: a [`Diagnostic`] is a coded,
//! severity-tagged message anchored to a byte [`Span`] in some source
//! text; a [`SourceMap`] resolves spans to 1-based line/column pairs; and
//! a [`LintReport`] renders a batch of diagnostics in the familiar
//! caret-under-the-offending-text terminal style:
//!
//! ```text
//! error[QL001]: unknown extractor `infobx`
//!  --> pipeline.qdl:3:9
//!   |
//! 3 | EXTRACT infobx
//!   |         ^^^^^^
//!   = help: did you mean `infobox`? registered extractors: infobox, rules, ...
//! ```
//!
//! Both `quarry-lang` (QDL lint codes `QL...`) and `quarry-query`
//! (structured query codes `QQ...`) build on this one implementation so
//! the two surfaces stay visually and behaviourally consistent, the same
//! way [`crate::explain::PlanNode`] unifies the two EXPLAIN trees.

use std::fmt;

/// Half-open byte range `[start, end)` into some source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Span {
    /// Byte offset of the first byte covered.
    pub start: usize,
    /// Byte offset one past the last byte covered.
    pub end: usize,
}

impl Span {
    /// A span covering `[start, end)`.
    pub fn new(start: usize, end: usize) -> Span {
        Span { start, end: end.max(start) }
    }

    /// An empty span at one offset (used for "at end of input" errors).
    pub fn point(at: usize) -> Span {
        Span { start: at, end: at }
    }

    /// Number of bytes covered (zero for point spans).
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the span covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The smallest span covering both `self` and `other`.
    pub fn to(&self, other: Span) -> Span {
        Span { start: self.start.min(other.start), end: self.end.max(other.end) }
    }

    /// This span translated `by` bytes to the right. Used when a
    /// sub-expression's diagnostics are re-anchored inside a larger
    /// rendered text (the structured-query validator composes rendered
    /// fragments this way).
    pub fn shifted(&self, by: usize) -> Span {
        Span { start: self.start + by, end: self.end + by }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// How bad a diagnostic is. `Error` blocks execution; `Warning` does not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but executable (dead extractor, zero budget, ...).
    Warning,
    /// The program is wrong and must not be executed.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One coded finding anchored to a span of the source text.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable machine-readable code (`QL001`, `QQ002`, ...).
    pub code: &'static str,
    /// Blocking or advisory.
    pub severity: Severity,
    /// Where in the source the problem is.
    pub span: Span,
    /// Human-readable description of what is wrong.
    pub message: String,
    /// Optional actionable suggestion ("did you mean ...").
    pub help: Option<String>,
}

impl Diagnostic {
    /// An error-severity diagnostic.
    pub fn error(code: &'static str, span: Span, message: impl Into<String>) -> Diagnostic {
        Diagnostic { code, severity: Severity::Error, span, message: message.into(), help: None }
    }

    /// A warning-severity diagnostic.
    pub fn warning(code: &'static str, span: Span, message: impl Into<String>) -> Diagnostic {
        Diagnostic { code, severity: Severity::Warning, span, message: message.into(), help: None }
    }

    /// Attach a help suggestion.
    pub fn with_help(mut self, help: impl Into<String>) -> Diagnostic {
        self.help = Some(help.into());
        self
    }

    /// Shift the span right by `by` bytes (see [`Span::shifted`]).
    pub fn shifted(mut self, by: usize) -> Diagnostic {
        self.span = self.span.shifted(by);
        self
    }
}

/// Resolves byte offsets in one source text to 1-based line/column pairs.
///
/// Built once per lint pass: a sorted table of line-start offsets, so each
/// lookup is a binary search.
#[derive(Debug, Clone)]
pub struct SourceMap {
    /// Byte offset where each line starts; `line_starts[0] == 0`.
    line_starts: Vec<usize>,
    len: usize,
}

impl SourceMap {
    /// Index `src` for line/column lookups.
    pub fn new(src: &str) -> SourceMap {
        let mut line_starts = vec![0usize];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        SourceMap { line_starts, len: src.len() }
    }

    /// 1-based (line, column) of a byte offset. Offsets past the end of
    /// the source clamp to the final position.
    pub fn line_col(&self, offset: usize) -> (usize, usize) {
        let offset = offset.min(self.len);
        let line = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        (line + 1, offset - self.line_starts[line] + 1)
    }

    /// The 0-based index of the line containing `offset`.
    fn line_index(&self, offset: usize) -> usize {
        self.line_col(offset).0 - 1
    }
}

/// Compute 1-based (line, column) for an offset without building a map.
/// Used by `LexError`/`ParseError` `Display` impls, which must be able to
/// report positions independently of the full renderer.
pub fn line_col_of(src: &str, offset: usize) -> (usize, usize) {
    let offset = offset.min(src.len());
    let before = &src.as_bytes()[..offset];
    let line = before.iter().filter(|&&b| b == b'\n').count();
    let col = offset - before.iter().rposition(|&b| b == b'\n').map(|p| p + 1).unwrap_or(0);
    (line + 1, col + 1)
}

/// Levenshtein edit distance; small helper for did-you-mean suggestions.
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// The candidate closest to `needle` by edit distance, if any is close
/// enough to be a plausible typo (distance ≤ max(1, len/3), ties broken
/// by candidate order).
pub fn closest<'a, I>(needle: &str, candidates: I) -> Option<&'a str>
where
    I: IntoIterator<Item = &'a str>,
{
    let budget = (needle.chars().count() / 3).max(1);
    let mut best: Option<(usize, &str)> = None;
    for cand in candidates {
        let d = edit_distance(needle, cand);
        if d <= budget && best.map(|(bd, _)| d < bd).unwrap_or(true) {
            best = Some((d, cand));
        }
    }
    best.map(|(_, c)| c)
}

/// A batch of diagnostics for one source text, ready to render.
#[derive(Debug, Clone, PartialEq)]
pub struct LintReport {
    /// Display name of the source ("pipeline.qdl", "<query>", ...).
    pub origin: String,
    /// The text the diagnostics' spans index into.
    pub source: String,
    /// Findings, stably ordered by (span.start, span.end, code).
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Build a report, sorting the diagnostics into their stable order.
    pub fn new(
        origin: impl Into<String>,
        source: impl Into<String>,
        mut diagnostics: Vec<Diagnostic>,
    ) -> LintReport {
        diagnostics.sort_by(|a, b| {
            (a.span.start, a.span.end, a.code).cmp(&(b.span.start, b.span.end, b.code))
        });
        LintReport { origin: origin.into(), source: source.into(), diagnostics }
    }

    /// Number of error-severity diagnostics.
    pub fn error_count(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Error).count()
    }

    /// Number of warning-severity diagnostics.
    pub fn warning_count(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Warning).count()
    }

    /// True when no error-severity diagnostic is present (warnings ok).
    pub fn is_clean(&self) -> bool {
        self.error_count() == 0
    }

    /// Render every diagnostic in caret style, separated by blank lines.
    pub fn render(&self) -> String {
        let map = SourceMap::new(&self.source);
        let mut out = String::new();
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push('\n');
            }
            render_one(&mut out, &self.origin, &self.source, &map, d);
        }
        out
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

/// Render one diagnostic in rustc-ish caret style.
fn render_one(out: &mut String, origin: &str, src: &str, map: &SourceMap, d: &Diagnostic) {
    let (line, col) = map.line_col(d.span.start);
    out.push_str(&format!("{}[{}]: {}\n", d.severity, d.code, d.message));
    out.push_str(&format!(" --> {origin}:{line}:{col}\n"));

    // Show every source line the span touches, carets under the covered
    // region of each.
    let first = map.line_index(d.span.start);
    let last = map.line_index(if d.span.is_empty() { d.span.start } else { d.span.end - 1 });
    let gutter = (last + 1).to_string().len();
    out.push_str(&format!("{:width$} |\n", "", width = gutter));
    for li in first..=last {
        let line_start = map.line_starts[li];
        let line_end = map.line_starts.get(li + 1).map(|&e| e - 1).unwrap_or(src.len());
        let text = src[line_start..line_end.max(line_start)].trim_end_matches('\r');
        out.push_str(&format!("{:>width$} | {}\n", li + 1, text, width = gutter));

        let from = d.span.start.max(line_start) - line_start;
        let to = if d.span.is_empty() {
            from + 1
        } else {
            (d.span.end.min(line_start + text.len())).saturating_sub(line_start).max(from + 1)
        };
        let carets: String = " ".repeat(from) + &"^".repeat(to - from);
        out.push_str(&format!("{:width$} | {}\n", "", carets, width = gutter));
    }
    if let Some(help) = &d.help {
        out.push_str(&format!("{:width$} = help: {}\n", "", help, width = gutter));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_basics() {
        let s = Span::new(3, 7);
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
        assert!(Span::point(5).is_empty());
        assert_eq!(Span::new(1, 3).to(Span::new(6, 9)), Span::new(1, 9));
        assert_eq!(Span::new(1, 3).shifted(10), Span::new(11, 13));
    }

    #[test]
    fn source_map_lines_and_columns() {
        let src = "abc\ndef\n\nxyz";
        let map = SourceMap::new(src);
        assert_eq!(map.line_col(0), (1, 1));
        assert_eq!(map.line_col(2), (1, 3));
        assert_eq!(map.line_col(4), (2, 1));
        assert_eq!(map.line_col(8), (3, 1));
        assert_eq!(map.line_col(9), (4, 1));
        assert_eq!(map.line_col(11), (4, 3));
        // past-the-end clamps
        assert_eq!(map.line_col(999), (4, 4));
        // the standalone helper agrees
        for off in 0..=src.len() {
            assert_eq!(line_col_of(src, off), map.line_col(off));
        }
    }

    #[test]
    fn closest_suggests_plausible_typos_only() {
        let names = ["infobox", "rules", "rule:monthly-temperature"];
        assert_eq!(closest("infobx", names), Some("infobox"));
        assert_eq!(closest("rule", names), Some("rules"));
        assert_eq!(closest("zzzzzz", names), None);
    }

    #[test]
    fn render_points_a_caret_at_the_span() {
        let src = "EXTRACT infobx\nWHERE confidence >= 0.6";
        let d = Diagnostic::error("QL001", Span::new(8, 14), "unknown extractor `infobx`")
            .with_help("did you mean `infobox`?");
        let report = LintReport::new("p.qdl", src, vec![d]);
        let text = report.render();
        assert!(text.starts_with("error[QL001]: unknown extractor `infobx`\n"));
        assert!(text.contains(" --> p.qdl:1:9\n"));
        assert!(text.contains("1 | EXTRACT infobx\n"));
        assert!(text.contains("  |         ^^^^^^\n"));
        assert!(text.contains("  = help: did you mean `infobox`?\n"));
    }

    #[test]
    fn report_sorts_and_counts() {
        let a = Diagnostic::warning("QL007", Span::new(9, 10), "later");
        let b = Diagnostic::error("QL003", Span::new(2, 5), "earlier");
        let report = LintReport::new("x", "0123456789abcdef", vec![a, b]);
        assert_eq!(report.diagnostics[0].code, "QL003");
        assert_eq!(report.error_count(), 1);
        assert_eq!(report.warning_count(), 1);
        assert!(!report.is_clean());
    }

    #[test]
    fn point_span_renders_one_caret() {
        let d = Diagnostic::error("QL000", Span::point(3), "here");
        let text = LintReport::new("x", "abcdef", vec![d]).render();
        assert!(text.contains("1 | abcdef\n"));
        assert!(text.contains("  |    ^\n"), "got:\n{text}");
    }
}
