//! Per-stage instrumentation collected by the executor.

use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

/// Timing and scheduling facts for one parallel (or inlined) stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StageReport {
    /// Stage label, e.g. `"extract/fan-out"`.
    pub stage: String,
    /// Number of input items processed.
    pub items: usize,
    /// Number of batches the items were split into.
    pub batches: usize,
    /// Worker threads used (1 when the stage ran inline).
    pub threads: usize,
    /// Batches executed by a worker other than the one they were
    /// initially assigned to — a direct measure of load imbalance.
    pub stolen_batches: usize,
    /// Wall-clock time for the whole stage.
    pub elapsed: Duration,
    /// Fastest single batch.
    pub min_batch: Duration,
    /// Mean batch latency.
    pub mean_batch: Duration,
    /// Slowest single batch.
    pub max_batch: Duration,
}

impl StageReport {
    /// Items processed per wall-clock second.
    pub fn items_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.items as f64 / secs
        } else {
            f64::INFINITY
        }
    }
}

/// Accumulated time spent inside one named operator (e.g. one extractor).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpStats {
    /// How many times the operator ran.
    pub invocations: usize,
    /// Total time across all invocations.
    pub elapsed: Duration,
}

/// Everything the executor observed while running a job: one entry per
/// stage, per-operator timings, and named counters (cache hits etc.).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecReport {
    /// Stage entries in execution order.
    pub stages: Vec<StageReport>,
    /// Accumulated per-operator timings, keyed by operator name.
    pub operators: BTreeMap<String, OpStats>,
    /// Named counters, e.g. `"sim_cache_hits"`.
    pub counters: BTreeMap<String, u64>,
}

impl ExecReport {
    /// Fresh, empty report.
    pub fn new() -> ExecReport {
        ExecReport::default()
    }

    /// The most recent stage recorded under `name`, if any.
    pub fn stage(&self, name: &str) -> Option<&StageReport> {
        self.stages.iter().rev().find(|s| s.stage == name)
    }

    /// Add one operator invocation taking `elapsed`.
    pub fn record_operator(&mut self, name: &str, elapsed: Duration) {
        let entry = self.operators.entry(name.to_string()).or_default();
        entry.invocations += 1;
        entry.elapsed += elapsed;
    }

    /// Bump counter `name` by `n`.
    pub fn incr(&mut self, name: &str, n: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// Value of counter `name` (0 when never bumped).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Fold another report into this one, preserving stage order.
    pub fn merge(&mut self, other: ExecReport) {
        self.stages.extend(other.stages);
        for (name, op) in other.operators {
            let entry = self.operators.entry(name).or_default();
            entry.invocations += op.invocations;
            entry.elapsed += op.elapsed;
        }
        for (name, n) in other.counters {
            *self.counters.entry(name).or_insert(0) += n;
        }
    }
}

impl fmt::Display for ExecReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "stage                       items batches thr stolen   elapsed    items/s")?;
        for s in &self.stages {
            writeln!(
                f,
                "{:<27} {:>5} {:>7} {:>3} {:>6} {:>9.3?} {:>10.0}",
                s.stage,
                s.items,
                s.batches,
                s.threads,
                s.stolen_batches,
                s.elapsed,
                s.items_per_sec(),
            )?;
        }
        for (name, op) in &self.operators {
            writeln!(f, "op {:<24} {:>5} runs {:>9.3?}", name, op.invocations, op.elapsed)?;
        }
        for (name, n) in &self.counters {
            writeln!(f, "counter {:<19} {n}", name)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operators_and_counters_accumulate() {
        let mut r = ExecReport::new();
        r.record_operator("infobox", Duration::from_millis(2));
        r.record_operator("infobox", Duration::from_millis(3));
        r.incr("hits", 4);
        r.incr("hits", 1);
        assert_eq!(r.operators["infobox"].invocations, 2);
        assert_eq!(r.operators["infobox"].elapsed, Duration::from_millis(5));
        assert_eq!(r.counter("hits"), 5);
        assert_eq!(r.counter("absent"), 0);
    }

    #[test]
    fn merge_concatenates_and_sums() {
        let mut a = ExecReport::new();
        a.incr("x", 1);
        let mut b = ExecReport::new();
        b.incr("x", 2);
        b.record_operator("op", Duration::from_millis(1));
        a.merge(b);
        assert_eq!(a.counter("x"), 3);
        assert_eq!(a.operators["op"].invocations, 1);
    }
}
