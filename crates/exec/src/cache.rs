//! Sharded memoisation cache with LRU-ish eviction, used to avoid
//! recomputing pairwise similarity for strings that recur across blocks.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

const SHARDS: usize = 16;

struct Shard<K, V> {
    /// value + last-touch stamp.
    map: HashMap<K, (V, u64)>,
    clock: u64,
}

/// Concurrent memo cache: `get_or_insert_with` computes each key's value
/// at most once per residency. Sharded by key hash so parallel scorers
/// rarely contend; eviction drops the least recently touched eighth of a
/// shard when it outgrows its share of the capacity.
pub struct MemoCache<K, V> {
    shards: Vec<Mutex<Shard<K, V>>>,
    per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<K: Hash + Eq + Clone, V: Clone> MemoCache<K, V> {
    /// Cache holding about `capacity` entries across all shards.
    pub fn new(capacity: usize) -> MemoCache<K, V> {
        let per_shard = (capacity / SHARDS).max(8);
        MemoCache {
            shards: (0..SHARDS)
                .map(|_| Mutex::new(Shard { map: HashMap::new(), clock: 0 }))
                .collect(),
            per_shard,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard_for(&self, key: &K) -> &Mutex<Shard<K, V>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % SHARDS]
    }

    /// Lock a shard, recovering from poisoning. `compute` runs under this
    /// lock, so a panicking compute closure poisons its shard — but the
    /// map is only inserted into *after* compute returns, so a poisoned
    /// shard is always structurally intact and safe to keep using; one
    /// bad computation must not disable a sixteenth of the cache.
    fn lock<'a>(&self, shard: &'a Mutex<Shard<K, V>>) -> MutexGuard<'a, Shard<K, V>> {
        shard.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Return the cached value for `key`, computing it with `compute` on
    /// a miss. The lock is held across `compute`, which is fine for the
    /// cheap similarity kernels this cache serves and guarantees each
    /// key is computed once per residency.
    pub fn get_or_insert_with(&self, key: K, compute: impl FnOnce() -> V) -> V {
        let mut shard = self.lock(self.shard_for(&key));
        shard.clock += 1;
        let now = shard.clock;
        if let Some((value, stamp)) = shard.map.get_mut(&key) {
            *stamp = now;
            self.hits.fetch_add(1, Ordering::Relaxed);
            return value.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let value = compute();
        if shard.map.len() >= self.per_shard {
            // Drop the oldest ~12.5% by touch stamp. O(n log n) in the
            // shard, but runs once per per_shard/8 insertions.
            let mut stamps: Vec<u64> = shard.map.values().map(|(_, s)| *s).collect();
            stamps.sort_unstable();
            let cutoff = stamps[stamps.len() / 8];
            shard.map.retain(|_, (_, s)| *s > cutoff);
        }
        shard.map.insert(key, (value.clone(), now));
        value
    }

    /// Entries currently resident.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| self.lock(s).map.len()).sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups served from cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to compute.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn computes_once_then_hits() {
        let cache: MemoCache<(String, String), f64> = MemoCache::new(1024);
        let calls = AtomicUsize::new(0);
        let key = ("ann arbor".to_string(), "ann harbor".to_string());
        for _ in 0..5 {
            let v = cache.get_or_insert_with(key.clone(), || {
                calls.fetch_add(1, Ordering::SeqCst);
                0.9
            });
            assert_eq!(v, 0.9);
        }
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        assert_eq!(cache.hits(), 4);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn eviction_bounds_residency() {
        let cache: MemoCache<u64, u64> = MemoCache::new(160);
        for i in 0..10_000u64 {
            cache.get_or_insert_with(i, || i);
        }
        // per-shard cap of 10 (min 8 → 10) times 16 shards, plus the
        // slack of the batched eviction.
        assert!(cache.len() <= 16 * 16, "len={}", cache.len());
        assert!(!cache.is_empty());
    }

    #[test]
    fn panicking_compute_does_not_poison_the_shard() {
        let cache: MemoCache<u64, u64> = MemoCache::new(1024);
        cache.get_or_insert_with(7, || 70);
        let boom = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cache.get_or_insert_with(8, || panic!("bad similarity kernel"))
        }));
        assert!(boom.is_err());
        // The shard that hosted the panicking compute keeps serving: the
        // old entry survives and the failed key can be computed again.
        assert_eq!(cache.get_or_insert_with(7, || 0), 70);
        assert_eq!(cache.get_or_insert_with(8, || 80), 80);
        assert!(cache.len() >= 2);
    }

    #[test]
    fn recently_touched_keys_survive_eviction() {
        let cache: MemoCache<u64, u64> = MemoCache::new(160);
        for round in 0..200u64 {
            // Key 0 is touched every iteration; the churn keys only once.
            cache.get_or_insert_with(0, || 42);
            cache.get_or_insert_with(1000 + round, || round);
        }
        let hits_before = cache.hits();
        cache.get_or_insert_with(0, || 42);
        assert_eq!(cache.hits(), hits_before + 1, "hot key was evicted");
    }
}
