//! Shared runtime metrics: named atomic counters and fixed-bucket latency
//! histograms with percentile extraction.
//!
//! A [`MetricsRegistry`] is a cheap-to-clone handle over shared atomic
//! state, so every layer of the system — the façade, the network server,
//! background workers — can record into the *same* registry without locks
//! on the hot path: counters and histogram buckets are plain
//! `AtomicU64`s, and the registry's maps are only locked when a name is
//! seen for the first time (handles are cached by callers after that).
//!
//! [`MetricsRegistry::snapshot`] freezes everything into a serializable
//! [`MetricsSnapshot`]; the serving layer ships that snapshot over the
//! wire for its `Stats` request, and `Quarry::metrics()` merges it with
//! the façade's other instrumentation views (`ExecReport`, `CheckStats`,
//! query-cache counters) so one call answers "what has this system been
//! doing".

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Histogram bucket upper bounds in microseconds, log-spaced 1-2-5 from
/// 1µs to 100s. Observations above the last bound land in the overflow
/// bucket. Fixed at compile time so recording is one atomic add.
const BUCKET_BOUNDS_US: [u64; 25] = [
    1,
    2,
    5,
    10,
    20,
    50,
    100,
    200,
    500,
    1_000,
    2_000,
    5_000,
    10_000,
    20_000,
    50_000,
    100_000,
    200_000,
    500_000,
    1_000_000,
    2_000_000,
    5_000_000,
    10_000_000,
    20_000_000,
    50_000_000,
    100_000_000,
];

/// Lock recovering from poisoning: registry maps hold only `Arc`s, a
/// panicking thread cannot leave them half-updated.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A fixed-bucket latency histogram. All updates are relaxed atomic adds;
/// percentile extraction happens only at snapshot time.
#[derive(Debug)]
pub struct Histogram {
    /// One counter per bound in [`BUCKET_BOUNDS_US`] plus one overflow.
    buckets: [AtomicU64; BUCKET_BOUNDS_US.len() + 1],
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl Histogram {
    fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }

    /// Record one observation of `us` microseconds.
    pub fn observe_us(&self, us: u64) {
        let idx = BUCKET_BOUNDS_US.partition_point(|&b| b < us);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// The upper bound (µs) of the bucket where the cumulative count
    /// first reaches `q` of the total; the recorded max for the overflow
    /// bucket. `None` when the histogram is empty.
    fn quantile_us(&self, counts: &[u64], total: u64, q: f64) -> u64 {
        let target = ((total as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return if i < BUCKET_BOUNDS_US.len() {
                    BUCKET_BOUNDS_US[i]
                } else {
                    self.max_us.load(Ordering::Relaxed)
                };
            }
        }
        self.max_us.load(Ordering::Relaxed)
    }

    /// Freeze into a serializable summary.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let count = self.count.load(Ordering::Relaxed);
        if count == 0 {
            return HistogramSnapshot::default();
        }
        HistogramSnapshot {
            count,
            sum_us: self.sum_us.load(Ordering::Relaxed),
            max_us: self.max_us.load(Ordering::Relaxed),
            p50_us: self.quantile_us(&counts, count, 0.50),
            p95_us: self.quantile_us(&counts, count, 0.95),
            p99_us: self.quantile_us(&counts, count, 0.99),
        }
    }
}

/// A frozen histogram summary. Percentiles are bucket upper bounds, so
/// they over-estimate by at most one 1-2-5 step.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observations (µs).
    pub sum_us: u64,
    /// Largest observation (µs).
    pub max_us: u64,
    /// Median (µs).
    pub p50_us: u64,
    /// 95th percentile (µs).
    pub p95_us: u64,
    /// 99th percentile (µs).
    pub p99_us: u64,
}

impl HistogramSnapshot {
    /// Mean observation in microseconds.
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64
        }
    }
}

/// A frozen view of every counter and histogram in a registry —
/// serializable, diffable, shippable over the wire.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// A counter's value (0 when absent — counters appear on first use).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A histogram's summary, if it has been recorded to.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Render as a sorted `name value` table (debugging, logs).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(
                out,
                "{name} count={} p50={}us p95={}us p99={}us max={}us",
                h.count, h.p50_us, h.p95_us, h.p99_us, h.max_us
            );
        }
        out
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

/// A cheap-to-clone handle to shared metrics state. Clones record into
/// the same counters and histograms.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Inner>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The counter named `name`, created at zero on first use. Callers on
    /// hot paths should cache the returned handle.
    pub fn counter(&self, name: &str) -> Arc<AtomicU64> {
        let mut map = lock(&self.inner.counters);
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Add `delta` to the counter named `name`.
    pub fn incr(&self, name: &str, delta: u64) {
        self.counter(name).fetch_add(delta, Ordering::Relaxed);
    }

    /// The histogram named `name`, created empty on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = lock(&self.inner.histograms);
        Arc::clone(map.entry(name.to_string()).or_insert_with(|| Arc::new(Histogram::new())))
    }

    /// Record one latency observation into the histogram named `name`.
    pub fn observe_us(&self, name: &str, us: u64) {
        self.histogram(name).observe_us(us);
    }

    /// Record a [`std::time::Duration`] into the histogram named `name`.
    pub fn observe(&self, name: &str, d: std::time::Duration) {
        self.observe_us(name, d.as_micros() as u64);
    }

    /// Freeze the current state of every counter and histogram.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = lock(&self.inner.counters)
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let histograms =
            lock(&self.inner.histograms).iter().map(|(k, h)| (k.clone(), h.snapshot())).collect();
        MetricsSnapshot { counters, histograms }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_across_clones() {
        let m = MetricsRegistry::new();
        let m2 = m.clone();
        m.incr("requests", 2);
        m2.incr("requests", 3);
        assert_eq!(m.snapshot().counter("requests"), 5);
        assert_eq!(m.snapshot().counter("absent"), 0);
    }

    #[test]
    fn histogram_percentiles_bracket_observations() {
        let m = MetricsRegistry::new();
        // 100 observations spread 1..=100 ms.
        for ms in 1..=100u64 {
            m.observe_us("lat", ms * 1_000);
        }
        let snap = m.snapshot();
        let h = snap.histogram("lat").unwrap();
        assert_eq!(h.count, 100);
        assert_eq!(h.max_us, 100_000);
        // Bucket bounds over-estimate by at most one 1-2-5 step.
        assert!((50_000..=100_000).contains(&h.p50_us), "{h:?}");
        assert!(h.p95_us >= 95_000, "{h:?}");
        assert!(h.p99_us >= 99_000 && h.p99_us <= 200_000, "{h:?}");
        assert!(h.p50_us <= h.p95_us && h.p95_us <= h.p99_us);
        assert!((h.mean_us() - 50_500.0).abs() < 1.0);
    }

    #[test]
    fn empty_histogram_snapshots_to_zeros() {
        let m = MetricsRegistry::new();
        let _ = m.histogram("never");
        assert_eq!(m.snapshot().histogram("never"), Some(&HistogramSnapshot::default()));
    }

    #[test]
    fn overflow_bucket_reports_recorded_max() {
        let m = MetricsRegistry::new();
        m.observe_us("big", 500_000_000); // beyond the last bound
        let snap = m.snapshot();
        let h = snap.histogram("big").unwrap();
        assert_eq!(h.p99_us, 500_000_000);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let m = MetricsRegistry::new();
        m.incr("a", 7);
        m.observe_us("h", 1234);
        let snap = m.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }
}
