//! Work-stealing parallel executor for Quarry's document-at-a-time hot
//! paths: corpus extraction, pairwise similarity scoring, and pipeline
//! `EXTRACT` statements.
//!
//! Design constraints, in priority order:
//!
//! 1. **Bit-identical results.** Every parallel entry point returns
//!    exactly what the sequential code would have returned, element for
//!    element. Parallelism here is an implementation detail of the data
//!    plane, never observable through output order. See
//!    [`pool::ExecPool::map`] and [`pool::ExecPool::sort_by`] for the
//!    determinism arguments.
//! 2. **No unsafe, no dependencies.** Workers run inside
//!    [`std::thread::scope`], so borrowed inputs need no `'static`
//!    gymnastics and no reference counting. Scoped spawn costs a few
//!    microseconds per worker per stage; batching amortises it, and the
//!    pool transparently degrades to an inline loop for small inputs
//!    where spawning would dominate.
//! 3. **Observable.** Every stage records an entry in an
//!    [`report::ExecReport`]: items, batches, throughput, batch-latency
//!    spread, and how many batches were stolen rather than executed by
//!    their home worker. Named counters capture cache behaviour.

#![forbid(unsafe_code)]

pub mod cache;
pub mod diag;
pub mod explain;
pub mod metrics;
pub mod pool;
pub mod report;

pub use cache::MemoCache;
pub use diag::{closest, line_col_of, Diagnostic, LintReport, Severity, SourceMap, Span};
pub use explain::PlanNode;
pub use metrics::{HistogramSnapshot, MetricsRegistry, MetricsSnapshot};
pub use pool::ExecPool;
pub use report::{ExecReport, OpStats, StageReport};
