//! Schema management and evolution (blueprint Part IV).
//!
//! Because structure is "generated in an incremental, best-effort fashion"
//! (§3.2), "in many cases the schema will evolve over time" — a city table
//! starts with just temperatures, later gains population, then splits a
//! combined `location` field. This crate provides:
//!
//! - [`evolution`] — declarative evolution operations (add/drop/rename/
//!   retype/split/merge column) that transform a schema *and* migrate its
//!   rows, with validity checking (no dropping key columns, retypes must
//!   widen losslessly);
//! - [`registry`] — a versioned schema registry: every table's full
//!   evolution history, forward migration of rows across any version gap,
//!   and compatibility queries.

#![forbid(unsafe_code)]

pub mod evolution;
pub mod registry;

pub use evolution::{EvolutionError, EvolutionOp};
pub use registry::{SchemaRegistry, VersionId};
