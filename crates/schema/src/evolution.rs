//! Evolution operations: schema transforms with row migration.

use quarry_storage::{Column, DataType, Row, TableSchema, Value};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Why an evolution operation was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvolutionError(pub String);

impl fmt::Display for EvolutionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "evolution error: {}", self.0)
    }
}

impl std::error::Error for EvolutionError {}

/// A declarative schema-evolution operation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EvolutionOp {
    /// Add a column; existing rows get `default`.
    AddColumn {
        /// The new column.
        column: Column,
        /// Value assigned to existing rows.
        default: Value,
    },
    /// Drop a (non-key) column.
    DropColumn {
        /// Column to drop.
        name: String,
    },
    /// Rename a column.
    RenameColumn {
        /// Existing name.
        from: String,
        /// New name.
        to: String,
    },
    /// Widen a column's type (Int→Float, anything→Text).
    RetypeColumn {
        /// Column to retype.
        name: String,
        /// Target type.
        to: DataType,
    },
    /// Split a text column on the first occurrence of a delimiter into two
    /// text columns (e.g. `location` = "Madison, Wisconsin" → `city`,
    /// `state`). The source column is removed.
    SplitColumn {
        /// Source text column.
        from: String,
        /// Delimiter to split on.
        delimiter: String,
        /// Names of the two result columns.
        into: (String, String),
    },
    /// Merge two text columns into one, joined by a delimiter. Sources are
    /// removed.
    MergeColumns {
        /// The two source columns.
        from: (String, String),
        /// Join delimiter.
        delimiter: String,
        /// Result column name.
        into: String,
    },
}

impl EvolutionOp {
    /// Short operation name (telemetry / history rendering).
    pub fn name(&self) -> &'static str {
        match self {
            EvolutionOp::AddColumn { .. } => "add",
            EvolutionOp::DropColumn { .. } => "drop",
            EvolutionOp::RenameColumn { .. } => "rename",
            EvolutionOp::RetypeColumn { .. } => "retype",
            EvolutionOp::SplitColumn { .. } => "split",
            EvolutionOp::MergeColumns { .. } => "merge",
        }
    }

    /// Apply the operation to a schema and its rows, producing the evolved
    /// schema and migrated rows.
    pub fn apply(
        &self,
        schema: &TableSchema,
        rows: &[Row],
    ) -> Result<(TableSchema, Vec<Row>), EvolutionError> {
        let col_pos = |name: &str| {
            schema
                .column_index(name)
                .ok_or_else(|| EvolutionError(format!("no column {name} in {}", schema.name)))
        };
        let is_key = |pos: usize| schema.key.contains(&pos);
        match self {
            EvolutionOp::AddColumn { column, default } => {
                if schema.column_index(&column.name).is_some() {
                    return Err(EvolutionError(format!("column {} already exists", column.name)));
                }
                if default.is_null() && !column.nullable {
                    return Err(EvolutionError(format!(
                        "column {} is NOT NULL but default is NULL",
                        column.name
                    )));
                }
                if !default.fits(column.dtype) {
                    return Err(EvolutionError(format!(
                        "default {default} does not fit {}",
                        column.dtype
                    )));
                }
                let mut columns = schema.columns.clone();
                columns.push(column.clone());
                let new = rebuild(schema, columns, None)?;
                let rows = rows
                    .iter()
                    .map(|r| {
                        let mut r = r.clone();
                        r.push(default.clone());
                        r
                    })
                    .collect();
                Ok((new, rows))
            }
            EvolutionOp::DropColumn { name } => {
                let pos = col_pos(name)?;
                if is_key(pos) {
                    return Err(EvolutionError(format!("cannot drop key column {name}")));
                }
                let mut columns = schema.columns.clone();
                columns.remove(pos);
                let new = rebuild(schema, columns, Some(&[pos]))?;
                let rows = rows
                    .iter()
                    .map(|r| {
                        let mut r = r.clone();
                        r.remove(pos);
                        r
                    })
                    .collect();
                Ok((new, rows))
            }
            EvolutionOp::RenameColumn { from, to } => {
                let pos = col_pos(from)?;
                if schema.column_index(to).is_some() {
                    return Err(EvolutionError(format!("column {to} already exists")));
                }
                let mut columns = schema.columns.clone();
                columns[pos].name = to.clone();
                // Keep a secondary index on the renamed column alive under
                // its new name.
                let mut old = schema.clone();
                for ix in &mut old.indexes {
                    if ix == from {
                        *ix = to.clone();
                    }
                }
                let new = rebuild(&old, columns, None)?;
                Ok((new, rows.to_vec()))
            }
            EvolutionOp::RetypeColumn { name, to } => {
                let pos = col_pos(name)?;
                let from_type = schema.columns[pos].dtype;
                if !to.widens_from(from_type) {
                    return Err(EvolutionError(format!(
                        "cannot narrow {name} from {from_type} to {to}"
                    )));
                }
                let mut columns = schema.columns.clone();
                columns[pos].dtype = *to;
                let new = rebuild(schema, columns, None)?;
                let rows = rows
                    .iter()
                    .map(|r| {
                        let mut r = r.clone();
                        r[pos] = widen(&r[pos], *to);
                        r
                    })
                    .collect();
                Ok((new, rows))
            }
            EvolutionOp::SplitColumn { from, delimiter, into } => {
                let pos = col_pos(from)?;
                if is_key(pos) {
                    return Err(EvolutionError(format!("cannot split key column {from}")));
                }
                if schema.columns[pos].dtype != DataType::Text {
                    return Err(EvolutionError(format!(
                        "split requires TEXT column, {from} is not"
                    )));
                }
                for n in [&into.0, &into.1] {
                    if schema.column_index(n).is_some() {
                        return Err(EvolutionError(format!("column {n} already exists")));
                    }
                }
                let nullable = schema.columns[pos].nullable;
                let mut columns = schema.columns.clone();
                columns.remove(pos);
                columns.push(Column { name: into.0.clone(), dtype: DataType::Text, nullable });
                columns.push(Column {
                    name: into.1.clone(),
                    dtype: DataType::Text,
                    nullable: true,
                });
                let new = rebuild(schema, columns, Some(&[pos]))?;
                let rows = rows
                    .iter()
                    .map(|r| {
                        let mut r = r.clone();
                        let v = r.remove(pos);
                        let (a, b) =
                            match v.as_text().and_then(|t| t.split_once(delimiter.as_str())) {
                                Some((a, b)) => (
                                    Value::Text(a.trim().to_string()),
                                    Value::Text(b.trim().to_string()),
                                ),
                                None => (v.clone(), Value::Null),
                            };
                        r.push(a);
                        r.push(b);
                        r
                    })
                    .collect();
                Ok((new, rows))
            }
            EvolutionOp::MergeColumns { from, delimiter, into } => {
                let pa = col_pos(&from.0)?;
                let pb = col_pos(&from.1)?;
                if is_key(pa) || is_key(pb) {
                    return Err(EvolutionError("cannot merge key columns".into()));
                }
                if schema.column_index(into).is_some() {
                    return Err(EvolutionError(format!("column {into} already exists")));
                }
                let nullable = schema.columns[pa].nullable || schema.columns[pb].nullable;
                let (lo, hi) = if pa < pb { (pa, pb) } else { (pb, pa) };
                let mut columns = schema.columns.clone();
                columns.remove(hi);
                columns.remove(lo);
                columns.push(Column { name: into.clone(), dtype: DataType::Text, nullable });
                let new = rebuild(schema, columns, Some(&[pa, pb]))?;
                let rows = rows
                    .iter()
                    .map(|r| {
                        let mut r = r.clone();
                        let vb = r.remove(hi);
                        let va = r.remove(lo);
                        // Keep (a, b) order regardless of column positions.
                        let (va, vb) = if pa < pb { (va, vb) } else { (vb, va) };
                        let merged = match (va.is_null(), vb.is_null()) {
                            (true, true) => Value::Null,
                            (false, true) => Value::Text(va.to_string()),
                            (true, false) => Value::Text(vb.to_string()),
                            (false, false) => Value::Text(format!("{va}{delimiter}{vb}")),
                        };
                        r.push(merged);
                        r
                    })
                    .collect();
                Ok((new, rows))
            }
        }
    }
}

/// Rebuild a schema with new columns, remapping key and index references by
/// *name* (dropping references to removed columns).
fn rebuild(
    old: &TableSchema,
    columns: Vec<Column>,
    removed_positions: Option<&[usize]>,
) -> Result<TableSchema, EvolutionError> {
    let removed: Vec<&str> =
        removed_positions.unwrap_or(&[]).iter().map(|&p| old.columns[p].name.as_str()).collect();
    // Key columns by old name → same-position new name (renames keep
    // position; drops were rejected for keys).
    let key_names: Vec<String> = old
        .key
        .iter()
        .map(|&p| {
            // A rename changes the name at position p; find it in the new
            // column list by position when possible, else by name.
            let old_name = &old.columns[p].name;
            columns.iter().find(|c| &c.name == old_name).map(|c| c.name.clone()).unwrap_or_else(
                || {
                    // Renamed: position p still exists in `columns` if no
                    // column before it was removed. Evolution ops that
                    // remove columns reject key columns, so index p is safe.
                    columns[p].name.clone()
                },
            )
        })
        .collect();
    let index_names: Vec<String> =
        old.indexes.iter().filter(|n| !removed.contains(&n.as_str())).cloned().collect();
    let key_refs: Vec<&str> = key_names.iter().map(String::as_str).collect();
    let index_refs: Vec<&str> = index_names
        .iter()
        .map(String::as_str)
        .filter(|n| columns.iter().any(|c| &c.name == n))
        .collect();
    TableSchema::new(&old.name, columns, &key_refs, &index_refs)
        .map_err(|e| EvolutionError(e.to_string()))
}

/// Widen a value to a target type (assumes `widens_from` already checked).
fn widen(v: &Value, to: DataType) -> Value {
    match (v, to) {
        (Value::Null, _) => Value::Null,
        (Value::Int(i), DataType::Float) => Value::Float(*i as f64),
        (other, DataType::Text) => Value::Text(other.to_string()),
        (other, _) => other.clone(),
    }
}

/// Apply a sequence of operations.
pub fn apply_all(
    schema: &TableSchema,
    rows: &[Row],
    ops: &[EvolutionOp],
) -> Result<(TableSchema, Vec<Row>), EvolutionError> {
    let mut schema = schema.clone();
    let mut rows = rows.to_vec();
    for op in ops {
        let (s, r) = op.apply(&schema, &rows)?;
        schema = s;
        rows = r;
    }
    Ok((schema, rows))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> (TableSchema, Vec<Row>) {
        let schema = TableSchema::new(
            "cities",
            vec![
                Column::new("name", DataType::Text),
                Column::new("population", DataType::Int),
                Column::nullable("location", DataType::Text),
            ],
            &["name"],
            &["population"],
        )
        .unwrap();
        let rows = vec![
            vec!["Madison".into(), Value::Int(250_000), Value::Text("Madison, Wisconsin".into())],
            vec!["Oakton".into(), Value::Int(9_500), Value::Null],
        ];
        (schema, rows)
    }

    #[test]
    fn add_column_backfills_default() {
        let (s, r) = base();
        let op = EvolutionOp::AddColumn {
            column: Column::new("founded", DataType::Int),
            default: Value::Int(1850),
        };
        let (s2, r2) = op.apply(&s, &r).unwrap();
        assert_eq!(s2.columns.len(), 4);
        assert_eq!(r2[0][3], Value::Int(1850));
        s2.validate(&r2[0]).unwrap();
    }

    #[test]
    fn add_rejects_dup_and_bad_default() {
        let (s, r) = base();
        let dup = EvolutionOp::AddColumn {
            column: Column::new("name", DataType::Text),
            default: "x".into(),
        };
        assert!(dup.apply(&s, &r).is_err());
        let bad = EvolutionOp::AddColumn {
            column: Column::new("founded", DataType::Int),
            default: Value::Null,
        };
        assert!(bad.apply(&s, &r).is_err());
    }

    #[test]
    fn drop_column_removes_values_and_index() {
        let (s, r) = base();
        let op = EvolutionOp::DropColumn { name: "population".into() };
        let (s2, r2) = op.apply(&s, &r).unwrap();
        assert_eq!(s2.columns.len(), 2);
        assert!(s2.indexes.is_empty());
        assert_eq!(r2[0].len(), 2);
        assert_eq!(r2[0][1], Value::Text("Madison, Wisconsin".into()));
    }

    #[test]
    fn drop_key_column_rejected() {
        let (s, r) = base();
        let op = EvolutionOp::DropColumn { name: "name".into() };
        assert!(op.apply(&s, &r).is_err());
    }

    #[test]
    fn rename_preserves_rows_and_key() {
        let (s, r) = base();
        let op = EvolutionOp::RenameColumn { from: "name".into(), to: "city_name".into() };
        let (s2, r2) = op.apply(&s, &r).unwrap();
        assert_eq!(s2.columns[0].name, "city_name");
        assert_eq!(s2.key, vec![0]);
        assert_eq!(r2, r);
        // Renaming onto an existing name fails.
        let op = EvolutionOp::RenameColumn { from: "city_name".into(), to: "population".into() };
        assert!(op.apply(&s2, &r2).is_err());
    }

    #[test]
    fn retype_widens_and_rejects_narrowing() {
        let (s, r) = base();
        let op = EvolutionOp::RetypeColumn { name: "population".into(), to: DataType::Float };
        let (s2, r2) = op.apply(&s, &r).unwrap();
        assert_eq!(s2.columns[1].dtype, DataType::Float);
        assert_eq!(r2[0][1], Value::Float(250_000.0));
        let narrow = EvolutionOp::RetypeColumn { name: "population".into(), to: DataType::Int };
        assert!(narrow.apply(&s2, &r2).is_err());
        // To text always works.
        let to_text = EvolutionOp::RetypeColumn { name: "population".into(), to: DataType::Text };
        let (_, r3) = to_text.apply(&s2, &r2).unwrap();
        assert_eq!(r3[0][1], Value::Text("250000".into()));
    }

    #[test]
    fn split_column_divides_text() {
        let (s, r) = base();
        let op = EvolutionOp::SplitColumn {
            from: "location".into(),
            delimiter: ",".into(),
            into: ("city".into(), "state".into()),
        };
        let (s2, r2) = op.apply(&s, &r).unwrap();
        assert!(s2.column_index("location").is_none());
        let ci = s2.column_index("city").unwrap();
        let si = s2.column_index("state").unwrap();
        assert_eq!(r2[0][ci], Value::Text("Madison".into()));
        assert_eq!(r2[0][si], Value::Text("Wisconsin".into()));
        // Row with NULL: passes through with NULL second part.
        assert_eq!(r2[1][ci], Value::Null);
        assert_eq!(r2[1][si], Value::Null);
        for row in &r2 {
            s2.validate(row).unwrap();
        }
    }

    #[test]
    fn merge_columns_joins_text() {
        let (s, r) = base();
        // First split, then merge back.
        let split = EvolutionOp::SplitColumn {
            from: "location".into(),
            delimiter: ",".into(),
            into: ("city".into(), "state".into()),
        };
        let (s2, r2) = split.apply(&s, &r).unwrap();
        let merge = EvolutionOp::MergeColumns {
            from: ("city".into(), "state".into()),
            delimiter: ", ".into(),
            into: "location".into(),
        };
        let (s3, r3) = merge.apply(&s2, &r2).unwrap();
        let li = s3.column_index("location").unwrap();
        assert_eq!(r3[0][li], Value::Text("Madison, Wisconsin".into()));
        assert_eq!(r3[1][li], Value::Null);
    }

    #[test]
    fn apply_all_sequences() {
        let (s, r) = base();
        let ops = vec![
            EvolutionOp::AddColumn {
                column: Column::new("founded", DataType::Int),
                default: Value::Int(1900),
            },
            EvolutionOp::RenameColumn { from: "population".into(), to: "residents".into() },
            EvolutionOp::RetypeColumn { name: "residents".into(), to: DataType::Float },
        ];
        let (s2, r2) = apply_all(&s, &r, &ops).unwrap();
        assert!(s2.column_index("residents").is_some());
        assert_eq!(r2[0][1], Value::Float(250_000.0));
        assert_eq!(r2[0][3], Value::Int(1900));
        for row in &r2 {
            s2.validate(row).unwrap();
        }
    }

    #[test]
    fn unknown_column_errors() {
        let (s, r) = base();
        for op in [
            EvolutionOp::DropColumn { name: "ghost".into() },
            EvolutionOp::RenameColumn { from: "ghost".into(), to: "x".into() },
            EvolutionOp::RetypeColumn { name: "ghost".into(), to: DataType::Text },
        ] {
            assert!(op.apply(&s, &r).is_err(), "{op:?}");
        }
    }
}
