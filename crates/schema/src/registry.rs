//! The versioned schema registry.
//!
//! Tracks every table's evolution history, migrates rows across version
//! gaps, and answers compatibility questions. Wired to the structured store
//! via [`SchemaRegistry::migrate_database`], which replays pending
//! operations over a live table.

use crate::evolution::{apply_all, EvolutionError, EvolutionOp};
use quarry_storage::{Database, Row, TableSchema};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A schema version number (0 = as registered).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VersionId(pub u32);

#[derive(Debug, Clone, Serialize, Deserialize)]
struct History {
    /// Version v's schema is `schemas[v]`.
    schemas: Vec<TableSchema>,
    /// Op `ops[v]` transforms version v into v+1.
    ops: Vec<EvolutionOp>,
}

/// Versioned schemas for many tables.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SchemaRegistry {
    tables: HashMap<String, History>,
}

impl SchemaRegistry {
    /// Empty registry.
    pub fn new() -> SchemaRegistry {
        SchemaRegistry::default()
    }

    /// Register a table's base schema as version 0.
    pub fn register(&mut self, schema: TableSchema) -> Result<VersionId, EvolutionError> {
        if self.tables.contains_key(&schema.name) {
            return Err(EvolutionError(format!("table {} already registered", schema.name)));
        }
        self.tables.insert(schema.name.clone(), History { schemas: vec![schema], ops: Vec::new() });
        Ok(VersionId(0))
    }

    /// Evolve a table by one operation; returns the new version id.
    pub fn evolve(&mut self, table: &str, op: EvolutionOp) -> Result<VersionId, EvolutionError> {
        let h = self
            .tables
            .get_mut(table)
            .ok_or_else(|| EvolutionError(format!("table {table} not registered")))?;
        let current = h.schemas.last().expect("≥1 version").clone();
        // Validate against an empty row set; row migration happens at
        // migrate() time.
        let (next, _) = op.apply(&current, &[])?;
        h.schemas.push(next);
        h.ops.push(op);
        Ok(VersionId((h.schemas.len() - 1) as u32))
    }

    /// The latest version id of a table.
    pub fn latest(&self, table: &str) -> Option<VersionId> {
        self.tables.get(table).map(|h| VersionId((h.schemas.len() - 1) as u32))
    }

    /// A specific schema version.
    pub fn schema(&self, table: &str, v: VersionId) -> Option<&TableSchema> {
        self.tables.get(table).and_then(|h| h.schemas.get(v.0 as usize))
    }

    /// The operations between two versions.
    pub fn ops_between(
        &self,
        table: &str,
        from: VersionId,
        to: VersionId,
    ) -> Option<&[EvolutionOp]> {
        let h = self.tables.get(table)?;
        if from > to || (to.0 as usize) >= h.schemas.len() {
            return None;
        }
        Some(&h.ops[from.0 as usize..to.0 as usize])
    }

    /// Migrate rows written under version `from` to version `to`.
    pub fn migrate(
        &self,
        table: &str,
        from: VersionId,
        to: VersionId,
        rows: &[Row],
    ) -> Result<Vec<Row>, EvolutionError> {
        let ops = self
            .ops_between(table, from, to)
            .ok_or_else(|| EvolutionError(format!("no path {from:?} → {to:?} for {table}")))?;
        let schema = self
            .schema(table, from)
            .ok_or_else(|| EvolutionError(format!("unknown version {from:?}")))?;
        let (_, migrated) = apply_all(schema, rows, ops)?;
        Ok(migrated)
    }

    /// Can rows written under `from` be read at `to` without migration?
    /// True only when no operation separates the versions.
    pub fn compatible(&self, table: &str, from: VersionId, to: VersionId) -> bool {
        self.ops_between(table, from, to).is_some_and(<[EvolutionOp]>::is_empty)
    }

    /// Bring a live database table up to this registry's latest version:
    /// reads current rows (assumed at `current` version), migrates them,
    /// and replaces the table.
    pub fn migrate_database(
        &self,
        db: &Database,
        table: &str,
        current: VersionId,
    ) -> Result<VersionId, EvolutionError> {
        let latest = self
            .latest(table)
            .ok_or_else(|| EvolutionError(format!("table {table} not registered")))?;
        if latest == current {
            return Ok(latest);
        }
        let rows = db.scan_autocommit(table).map_err(|e| EvolutionError(e.to_string()))?;
        let migrated = self.migrate(table, current, latest, &rows)?;
        let target = self.schema(table, latest).expect("latest exists").clone();
        db.replace_table(target, migrated).map_err(|e| EvolutionError(e.to_string()))?;
        Ok(latest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quarry_storage::{Column, DataType, Value};

    fn base_schema() -> TableSchema {
        TableSchema::new(
            "cities",
            vec![Column::new("name", DataType::Text), Column::new("population", DataType::Int)],
            &["name"],
            &[],
        )
        .unwrap()
    }

    #[test]
    fn register_and_evolve_versions() {
        let mut reg = SchemaRegistry::new();
        assert_eq!(reg.register(base_schema()).unwrap(), VersionId(0));
        assert!(reg.register(base_schema()).is_err(), "double register");
        let v1 = reg
            .evolve(
                "cities",
                EvolutionOp::AddColumn {
                    column: Column::new("founded", DataType::Int),
                    default: Value::Int(1900),
                },
            )
            .unwrap();
        assert_eq!(v1, VersionId(1));
        assert_eq!(reg.latest("cities"), Some(VersionId(1)));
        assert_eq!(reg.schema("cities", VersionId(1)).unwrap().columns.len(), 3);
        assert_eq!(reg.schema("cities", VersionId(0)).unwrap().columns.len(), 2);
    }

    #[test]
    fn invalid_evolution_rejected_and_history_unchanged() {
        let mut reg = SchemaRegistry::new();
        reg.register(base_schema()).unwrap();
        let err = reg.evolve("cities", EvolutionOp::DropColumn { name: "name".into() });
        assert!(err.is_err());
        assert_eq!(reg.latest("cities"), Some(VersionId(0)));
    }

    #[test]
    fn migrate_rows_across_versions() {
        let mut reg = SchemaRegistry::new();
        reg.register(base_schema()).unwrap();
        reg.evolve(
            "cities",
            EvolutionOp::AddColumn {
                column: Column::new("founded", DataType::Int),
                default: Value::Int(1900),
            },
        )
        .unwrap();
        reg.evolve(
            "cities",
            EvolutionOp::RenameColumn { from: "population".into(), to: "residents".into() },
        )
        .unwrap();

        let old_rows = vec![vec![Value::Text("Madison".into()), Value::Int(250_000)]];
        let migrated = reg.migrate("cities", VersionId(0), VersionId(2), &old_rows).unwrap();
        assert_eq!(
            migrated[0],
            vec![Value::Text("Madison".into()), Value::Int(250_000), Value::Int(1900),]
        );
        let latest = reg.schema("cities", VersionId(2)).unwrap();
        latest.validate(&migrated[0]).unwrap();
        assert_eq!(latest.column_index("residents"), Some(1));
    }

    #[test]
    fn compatibility_is_same_version_only() {
        let mut reg = SchemaRegistry::new();
        reg.register(base_schema()).unwrap();
        assert!(reg.compatible("cities", VersionId(0), VersionId(0)));
        reg.evolve(
            "cities",
            EvolutionOp::RenameColumn { from: "population".into(), to: "p".into() },
        )
        .unwrap();
        assert!(!reg.compatible("cities", VersionId(0), VersionId(1)));
        assert!(!reg.compatible("cities", VersionId(1), VersionId(0)));
    }

    #[test]
    fn migrate_database_replays_onto_live_table() {
        let db = Database::in_memory();
        db.create_table(base_schema()).unwrap();
        db.insert_autocommit("cities", vec![Value::Text("Madison".into()), Value::Int(250_000)])
            .unwrap();

        let mut reg = SchemaRegistry::new();
        reg.register(base_schema()).unwrap();
        reg.evolve(
            "cities",
            EvolutionOp::AddColumn {
                column: Column::new("founded", DataType::Int),
                default: Value::Int(1846),
            },
        )
        .unwrap();

        let v = reg.migrate_database(&db, "cities", VersionId(0)).unwrap();
        assert_eq!(v, VersionId(1));
        let rows = db.scan_autocommit("cities").unwrap();
        assert_eq!(rows[0].len(), 3);
        assert_eq!(rows[0][2], Value::Int(1846));
        // Idempotent when already current.
        assert_eq!(reg.migrate_database(&db, "cities", v).unwrap(), v);
    }

    #[test]
    fn unknown_table_and_bad_ranges() {
        let reg = SchemaRegistry::new();
        assert!(reg.latest("ghost").is_none());
        assert!(reg.migrate("ghost", VersionId(0), VersionId(1), &[]).is_err());
        let mut reg = SchemaRegistry::new();
        reg.register(base_schema()).unwrap();
        assert!(reg.ops_between("cities", VersionId(1), VersionId(0)).is_none());
        assert!(reg.ops_between("cities", VersionId(0), VersionId(5)).is_none());
    }
}
