//! Inverted index with BM25 ranking — the keyword-search mode.

use quarry_corpus::{DocId, Document};
use quarry_extract::token::tokenize;
use std::collections::HashMap;

/// One ranked search result.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchHit {
    /// Matching document.
    pub doc: DocId,
    /// BM25 score (higher is better).
    pub score: f64,
}

#[derive(Debug, Clone, Default)]
struct Posting {
    /// (doc, term frequency) pairs, in doc-id order.
    docs: Vec<(DocId, u32)>,
}

/// An inverted index over a document collection.
#[derive(Debug, Clone, Default)]
pub struct InvertedIndex {
    postings: HashMap<String, Posting>,
    doc_len: HashMap<DocId, u32>,
    total_len: u64,
    k1: f64,
    b: f64,
}

impl InvertedIndex {
    /// Build an index with standard BM25 parameters (k1 = 1.2, b = 0.75).
    pub fn build<'a>(docs: impl IntoIterator<Item = &'a Document>) -> InvertedIndex {
        let mut ix = InvertedIndex { k1: 1.2, b: 0.75, ..Default::default() };
        for d in docs {
            ix.add(d);
        }
        ix
    }

    /// Add one document (ids must be unique; re-adding is not supported).
    pub fn add(&mut self, doc: &Document) {
        let text = format!("{} {}", doc.title, doc.text);
        let tokens = tokenize(&text);
        let mut tf: HashMap<String, u32> = HashMap::with_capacity(tokens.len());
        for t in tokens {
            let raw = t.text(&text);
            // Already-lowercase tokens (the overwhelming majority) bump
            // their count without allocating a fresh String.
            match raw.chars().any(char::is_uppercase) {
                false => match tf.get_mut(raw) {
                    Some(n) => *n += 1,
                    None => {
                        tf.insert(raw.to_string(), 1);
                    }
                },
                true => *tf.entry(raw.to_lowercase()).or_insert(0) += 1,
            }
        }
        let len: u32 = tf.values().sum();
        debug_assert!(!self.doc_len.contains_key(&doc.id), "document {} indexed twice", doc.id);
        self.doc_len.insert(doc.id, len);
        self.total_len += len as u64;
        for (term, f) in tf {
            self.postings.entry(term).or_default().docs.push((doc.id, f));
        }
    }

    /// Number of indexed documents.
    pub fn len(&self) -> usize {
        self.doc_len.len()
    }

    /// True when no documents are indexed.
    pub fn is_empty(&self) -> bool {
        self.doc_len.is_empty()
    }

    /// Documents containing a term.
    pub fn df(&self, term: &str) -> usize {
        self.postings.get(&term.to_lowercase()).map_or(0, |p| p.docs.len())
    }

    /// BM25 search; returns the top `k` hits, best first.
    pub fn search(&self, query: &str, k: usize) -> Vec<SearchHit> {
        let n = self.len() as f64;
        if n == 0.0 {
            return Vec::new();
        }
        let avgdl = self.total_len as f64 / n;
        let mut scores: HashMap<DocId, f64> = HashMap::new();
        for qt in tokenize(query) {
            let term = qt.text(query).to_lowercase();
            let Some(p) = self.postings.get(&term) else { continue };
            let df = p.docs.len() as f64;
            let idf = ((n - df + 0.5) / (df + 0.5) + 1.0).ln();
            for &(doc, tf) in &p.docs {
                let dl = self.doc_len[&doc] as f64;
                let tf = tf as f64;
                let s = idf * (tf * (self.k1 + 1.0))
                    / (tf + self.k1 * (1.0 - self.b + self.b * dl / avgdl));
                *scores.entry(doc).or_insert(0.0) += s;
            }
        }
        let mut hits: Vec<SearchHit> =
            scores.into_iter().map(|(doc, score)| SearchHit { doc, score }).collect();
        hits.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.doc.cmp(&b.doc))
        });
        hits.truncate(k);
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quarry_corpus::DocKind;

    fn doc(id: u32, title: &str, text: &str) -> Document {
        Document { id: DocId(id), title: title.into(), text: text.into(), kind: DocKind::City }
    }

    fn sample() -> InvertedIndex {
        InvertedIndex::build(&[
            doc(
                0,
                "Madison, Wisconsin",
                "Madison is a city in Wisconsin. The average temperature in July is 72 F.",
            ),
            doc(1, "Oakton, Iowa", "Oakton is a small town in Iowa with pleasant weather."),
            doc(2, "Weather", "Weather patterns vary. Temperature temperature temperature."),
            doc(3, "Acme Systems", "Acme Systems is a software company headquartered in Madison."),
        ])
    }

    #[test]
    fn exact_term_ranks_its_documents() {
        let ix = sample();
        let hits = ix.search("Oakton", 10);
        assert_eq!(hits[0].doc, DocId(1));
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn multi_term_queries_accumulate() {
        let ix = sample();
        let hits = ix.search("Madison temperature", 10);
        assert_eq!(hits[0].doc, DocId(0), "doc with both terms wins");
        assert!(hits.len() >= 3);
    }

    #[test]
    fn term_frequency_saturates() {
        // Doc 2 repeats "temperature" 3×; BM25 saturation keeps doc 0
        // (which also matches "Madison") competitive on the combined query.
        let ix = sample();
        let hits = ix.search("temperature", 10);
        assert_eq!(hits[0].doc, DocId(2), "tf still matters for single terms");
    }

    #[test]
    fn case_insensitive() {
        let ix = sample();
        assert_eq!(ix.search("MADISON", 10).len(), ix.search("madison", 10).len());
        assert_eq!(ix.df("Temperature"), ix.df("temperature"));
    }

    #[test]
    fn missing_terms_yield_nothing() {
        let ix = sample();
        assert!(ix.search("zyzzyva", 10).is_empty());
        assert!(ix.search("", 10).is_empty());
    }

    #[test]
    fn k_truncates() {
        let ix = sample();
        assert_eq!(ix.search("in", 2).len(), 2);
    }

    #[test]
    fn empty_index_is_safe() {
        let ix = InvertedIndex::default();
        assert!(ix.search("anything", 5).is_empty());
        assert!(ix.is_empty());
    }

    #[test]
    fn df_counts_documents_not_occurrences() {
        let ix = sample();
        assert_eq!(ix.df("temperature"), 2);
        assert_eq!(ix.df("madison"), 2);
    }
}
