//! Static validation of structured queries against the database schema.
//!
//! The same diagnostics framework `quarry-lang` applies to QDL programs,
//! applied to the structured side: a [`Query`] tree is checked against the
//! [`Database`]'s table schemas *before* execution, turning what used to be
//! a runtime `UnknownColumn` error deep inside an operator into a
//! span-anchored, caret-rendered diagnostic with a did-you-mean suggestion.
//!
//! Spans index into the query's SQL-flavored rendering — the validator
//! re-renders the tree with exactly the same format strings as
//! [`Query::display`], byte for byte, recording where each table and
//! column reference lands. The report's `source` is therefore always equal
//! to `q.display()` (asserted by test).
//!
//! Codes:
//!
//! - **QQ001** (error) — unknown table. Reported but *not* an execution
//!   gate: the engine's `StorageError::NoSuchTable` path stays intact for
//!   callers that probe tables dynamically.
//! - **QQ002** (error) — unknown column reference in a filter predicate,
//!   projection list, join key, aggregate, grouping, or sort key. Gates
//!   execution in [`crate::planner::execute_with`].
//! - **QQ003** (warning) — `SUM`/`AVG` over a column declared `Text`:
//!   statically certain to fail with `NotNumeric` on any non-null value.

use crate::engine::{AggFn, Query};
use crate::source::Catalog;
use quarry_exec::diag::{closest, Diagnostic, LintReport, Span};
use quarry_storage::DataType;

/// Diagnostic codes for structured-query validation.
pub mod codes {
    /// Unknown table in a scan.
    pub const UNKNOWN_TABLE: &str = "QQ001";
    /// Unknown column reference.
    pub const UNKNOWN_COLUMN: &str = "QQ002";
    /// Numeric aggregate over a column declared `Text`.
    pub const TEXT_AGGREGATE: &str = "QQ003";
}

/// One output column the validator can see flowing out of a subtree.
#[derive(Debug, Clone)]
struct Col {
    name: String,
    /// Declared type, when traceable back to a scanned schema column.
    dtype: Option<DataType>,
}

/// The result of checking one subtree: its rendering (identical to
/// `Query::display()`), the diagnostics found inside it (spans relative to
/// `rendered`), and the columns it outputs (`None` when unknowable because
/// a scanned table does not exist).
struct Checked {
    rendered: String,
    columns: Option<Vec<Col>>,
    diags: Vec<Diagnostic>,
}

/// Validate a query tree against the database's schemas.
///
/// The returned report's `source` is the query's [`Query::display`]
/// rendering and every diagnostic's span indexes into it. Generic over
/// [`Catalog`]: validates identically against the live database or an
/// immutable snapshot.
pub fn check_query<C: Catalog>(db: &C, q: &Query) -> LintReport {
    let checked = check(db, q);
    LintReport::new("<query>", checked.rendered, checked.diags)
}

/// True when the report contains an error-severity diagnostic that should
/// stop execution (everything except QQ001, which stays a storage error so
/// dynamic table probing keeps its existing failure mode).
pub(crate) fn gates_execution(report: &LintReport) -> bool {
    report
        .diagnostics
        .iter()
        .any(|d| d.severity == quarry_exec::diag::Severity::Error && d.code != codes::UNKNOWN_TABLE)
}

fn unknown_column(col: &str, span: Span, available: &[Col]) -> Diagnostic {
    let names: Vec<&str> = available.iter().map(|c| c.name.as_str()).collect();
    let d = Diagnostic::error(codes::UNKNOWN_COLUMN, span, format!("unknown column `{col}`"));
    match closest(col, names.iter().copied()) {
        Some(s) => d.with_help(format!("did you mean `{s}`?")),
        None if names.is_empty() => d,
        None => d.with_help(format!("available columns: {}", names.join(", "))),
    }
}

/// Check `col` against the (possibly unknown) column set, pushing a QQ002
/// onto `diags` when it is missing. `span` covers the reference in the
/// rendering being built.
fn check_col(col: &str, span: Span, columns: &Option<Vec<Col>>, diags: &mut Vec<Diagnostic>) {
    if let Some(cols) = columns {
        if !cols.iter().any(|c| c.name == col) {
            diags.push(unknown_column(col, span, cols));
        }
    }
}

fn lookup<'a>(columns: &'a Option<Vec<Col>>, name: &str) -> Option<&'a Col> {
    columns.as_ref()?.iter().find(|c| c.name == name)
}

fn check<C: Catalog>(db: &C, q: &Query) -> Checked {
    match q {
        Query::Scan { table } => {
            let rendered = format!("SELECT * FROM {table}");
            let span = Span::new("SELECT * FROM ".len(), rendered.len());
            match db.schema(table) {
                Ok(schema) => Checked {
                    rendered,
                    columns: Some(
                        schema
                            .columns
                            .iter()
                            .map(|c| Col { name: c.name.clone(), dtype: Some(c.dtype) })
                            .collect(),
                    ),
                    diags: Vec::new(),
                },
                Err(_) => {
                    let tables = db.table_names();
                    let d = Diagnostic::error(
                        codes::UNKNOWN_TABLE,
                        span,
                        format!("unknown table `{table}`"),
                    );
                    let d = match closest(table, tables.iter().map(String::as_str)) {
                        Some(s) => d.with_help(format!("did you mean `{s}`?")),
                        None => d,
                    };
                    Checked { rendered, columns: None, diags: vec![d] }
                }
            }
        }
        Query::Filter { input, predicates } => {
            let child = check(db, input);
            let mut rendered = child.rendered;
            let mut diags = child.diags;
            rendered.push_str(" WHERE ");
            for (i, p) in predicates.iter().enumerate() {
                if i > 0 {
                    rendered.push_str(" AND ");
                }
                // Every predicate's display starts with its column name.
                let col = p.column();
                let at = Span::new(rendered.len(), rendered.len() + col.len());
                check_col(col, at, &child.columns, &mut diags);
                rendered.push_str(&p.display());
            }
            Checked { rendered, columns: child.columns, diags }
        }
        Query::Project { input, columns } => {
            let child = check(db, input);
            let mut rendered = String::from("SELECT ");
            let mut diags = Vec::new();
            let mut out = Vec::new();
            for (i, col) in columns.iter().enumerate() {
                if i > 0 {
                    rendered.push_str(", ");
                }
                let at = Span::new(rendered.len(), rendered.len() + col.len());
                check_col(col, at, &child.columns, &mut diags);
                out.push(Col {
                    name: col.clone(),
                    dtype: lookup(&child.columns, col).and_then(|c| c.dtype),
                });
                rendered.push_str(col);
            }
            rendered.push_str(" FROM (");
            let shift = rendered.len();
            diags.extend(child.diags.into_iter().map(|d| d.shifted(shift)));
            rendered.push_str(&child.rendered);
            rendered.push(')');
            // The projection's names are the output regardless of whether
            // the input could be resolved; unknown ones were already
            // reported above, so downstream checks don't cascade.
            Checked { rendered, columns: Some(out), diags }
        }
        Query::Join { left, right, left_col, right_col } => {
            let l = check(db, left);
            let r = check(db, right);
            let mut rendered = String::from("(");
            let mut diags: Vec<Diagnostic> = l.diags.iter().map(|d| d.clone().shifted(1)).collect();
            rendered.push_str(&l.rendered);
            rendered.push_str(") JOIN (");
            let rshift = rendered.len();
            diags.extend(r.diags.into_iter().map(|d| d.shifted(rshift)));
            rendered.push_str(&r.rendered);
            rendered.push_str(") ON ");
            let lat = Span::new(rendered.len(), rendered.len() + left_col.len());
            check_col(left_col, lat, &l.columns, &mut diags);
            rendered.push_str(left_col);
            rendered.push_str(" = ");
            let rat = Span::new(rendered.len(), rendered.len() + right_col.len());
            check_col(right_col, rat, &r.columns, &mut diags);
            rendered.push_str(right_col);
            // Output mirrors the executor: left columns, then right ones
            // with a `right.` prefix on name collision.
            let columns = match (l.columns, r.columns) {
                (Some(lc), Some(rc)) => {
                    let mut cols = lc.clone();
                    for c in rc {
                        if lc.iter().any(|l| l.name == c.name) {
                            cols.push(Col { name: format!("right.{}", c.name), dtype: c.dtype });
                        } else {
                            cols.push(c);
                        }
                    }
                    Some(cols)
                }
                _ => None,
            };
            Checked { rendered, columns, diags }
        }
        Query::Aggregate { input, group_by, agg, over } => {
            let child = check(db, input);
            let mut rendered = format!("SELECT {}(", agg.name());
            let mut diags = Vec::new();
            let at = Span::new(rendered.len(), rendered.len() + over.len());
            check_col(over, at, &child.columns, &mut diags);
            if matches!(agg, AggFn::Sum | AggFn::Avg) {
                if let Some(col) = lookup(&child.columns, over) {
                    if col.dtype == Some(DataType::Text) {
                        diags.push(
                            Diagnostic::warning(
                                codes::TEXT_AGGREGATE,
                                at,
                                format!("{} over `{over}`, which is declared Text", agg.name()),
                            )
                            .with_help(
                                "SUM/AVG need a numeric column; this fails at runtime on any \
                                 non-null value",
                            ),
                        );
                    }
                }
            }
            rendered.push_str(over);
            rendered.push_str(") FROM (");
            let shift = rendered.len();
            diags.extend(child.diags.into_iter().map(|d| d.shifted(shift)));
            rendered.push_str(&child.rendered);
            rendered.push(')');
            let mut out = Vec::new();
            if let Some(g) = group_by {
                rendered.push_str(" GROUP BY ");
                let gat = Span::new(rendered.len(), rendered.len() + g.len());
                check_col(g, gat, &child.columns, &mut diags);
                rendered.push_str(g);
                out.push(Col {
                    name: g.clone(),
                    dtype: lookup(&child.columns, g).and_then(|c| c.dtype),
                });
            }
            let agg_dtype = match agg {
                AggFn::Count => Some(DataType::Int),
                AggFn::Sum | AggFn::Avg => Some(DataType::Float),
                // MIN/MAX carry the input column's type through.
                AggFn::Min | AggFn::Max => lookup(&child.columns, over).and_then(|c| c.dtype),
            };
            out.push(Col { name: format!("{}({over})", agg.name()), dtype: agg_dtype });
            Checked { rendered, columns: Some(out), diags }
        }
        Query::Sort { input, by, desc, limit } => {
            let child = check(db, input);
            let mut rendered = child.rendered;
            let mut diags = child.diags;
            rendered.push_str(" ORDER BY ");
            let at = Span::new(rendered.len(), rendered.len() + by.len());
            check_col(by, at, &child.columns, &mut diags);
            rendered.push_str(by);
            if *desc {
                rendered.push_str(" DESC");
            }
            if let Some(l) = limit {
                rendered.push_str(&format!(" LIMIT {l}"));
            }
            Checked { rendered, columns: child.columns, diags }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Predicate;
    use quarry_exec::diag::Severity;
    use quarry_storage::{Column, Database, TableSchema, Value};

    fn db() -> Database {
        let db = Database::in_memory();
        db.create_table(
            TableSchema::new(
                "cities",
                vec![
                    Column::new("name", DataType::Text),
                    Column::new("state", DataType::Text),
                    Column::new("population", DataType::Int),
                ],
                &["name"],
                &["population"],
            )
            .unwrap(),
        )
        .unwrap();
        db.create_table(
            TableSchema::new(
                "temps",
                vec![
                    Column::new("city", DataType::Text),
                    Column::new("month", DataType::Int),
                    Column::new("temp", DataType::Int),
                ],
                &["city", "month"],
                &[],
            )
            .unwrap(),
        )
        .unwrap();
        db
    }

    /// The source text a diagnostic's span covers.
    fn covered<'r>(report: &'r LintReport, d: &Diagnostic) -> &'r str {
        &report.source[d.span.start..d.span.end]
    }

    #[test]
    fn rendering_matches_display_exactly() {
        let db = db();
        let queries = [
            Query::scan("cities"),
            Query::scan("cities")
                .filter(vec![
                    Predicate::Eq("state".into(), "Wisconsin".into()),
                    Predicate::Gt("population".into(), Value::Int(100)),
                ])
                .project(&["name", "population"]),
            Query::scan("cities")
                .join(Query::scan("temps"), "name", "city")
                .filter(vec![Predicate::In("month".into(), vec![Value::Int(3), Value::Int(4)])]),
            Query::scan("temps").aggregate(Some("city"), AggFn::Avg, "temp").sort(
                "AVG(temp)",
                true,
                Some(5),
            ),
            Query::scan("ghost").project(&["x"]),
        ];
        for q in &queries {
            let report = check_query(&db, q);
            assert_eq!(report.source, q.display(), "validator must re-render display() exactly");
        }
    }

    #[test]
    fn valid_queries_are_clean() {
        let db = db();
        let q = Query::scan("cities")
            .filter(vec![Predicate::Eq("state".into(), "Wisconsin".into())])
            .join(Query::scan("temps"), "name", "city")
            .aggregate(Some("state"), AggFn::Avg, "temp")
            .sort("AVG(temp)", true, Some(3));
        let report = check_query(&db, &q);
        assert!(report.is_clean(), "expected clean report, got:\n{report}");
        assert_eq!(report.warning_count(), 0);
    }

    #[test]
    fn unknown_table_is_qq001_with_suggestion() {
        let db = db();
        let report = check_query(&db, &Query::scan("citis"));
        assert_eq!(report.error_count(), 1);
        let d = &report.diagnostics[0];
        assert_eq!(d.code, codes::UNKNOWN_TABLE);
        assert_eq!(covered(&report, d), "citis");
        assert_eq!(d.help.as_deref(), Some("did you mean `cities`?"));
        // QQ001 alone does not gate execution (storage keeps that error).
        assert!(!gates_execution(&report));
    }

    #[test]
    fn unknown_filter_column_is_qq002_with_suggestion() {
        let db = db();
        let q = Query::scan("cities").filter(vec![
            Predicate::Eq("state".into(), "Wisconsin".into()),
            Predicate::Gt("populaton".into(), Value::Int(5)),
        ]);
        let report = check_query(&db, &q);
        assert_eq!(report.error_count(), 1);
        let d = &report.diagnostics[0];
        assert_eq!(d.code, codes::UNKNOWN_COLUMN);
        assert_eq!(covered(&report, d), "populaton");
        assert_eq!(d.help.as_deref(), Some("did you mean `population`?"));
        assert!(gates_execution(&report));
    }

    #[test]
    fn projection_join_group_and_sort_references_are_checked() {
        let db = db();
        // Projection.
        let report = check_query(&db, &Query::scan("cities").project(&["name", "ghost"]));
        assert_eq!(report.error_count(), 1);
        assert_eq!(covered(&report, &report.diagnostics[0]), "ghost");
        // Join keys, both sides.
        let q = Query::scan("cities").join(Query::scan("temps"), "nme", "cty");
        let report = check_query(&db, &q);
        assert_eq!(report.error_count(), 2);
        assert_eq!(covered(&report, &report.diagnostics[0]), "nme");
        assert_eq!(covered(&report, &report.diagnostics[1]), "cty");
        // Group-by and sort key.
        let q = Query::scan("temps").aggregate(Some("citty"), AggFn::Avg, "temp");
        let report = check_query(&db, &q);
        assert_eq!(report.error_count(), 1);
        assert_eq!(covered(&report, &report.diagnostics[0]), "citty");
        let q = Query::scan("cities").sort("popluation", true, None);
        let report = check_query(&db, &q);
        assert_eq!(report.error_count(), 1);
        assert_eq!(covered(&report, &report.diagnostics[0]), "popluation");
    }

    #[test]
    fn filtering_a_projected_away_column_is_flagged() {
        let db = db();
        let q = Query::scan("cities")
            .project(&["name"])
            .filter(vec![Predicate::Eq("state".into(), "Wisconsin".into())]);
        let report = check_query(&db, &q);
        assert_eq!(report.error_count(), 1);
        let d = &report.diagnostics[0];
        assert_eq!(d.code, codes::UNKNOWN_COLUMN);
        assert_eq!(covered(&report, d), "state");
    }

    #[test]
    fn join_collision_columns_use_right_prefix() {
        let db = db();
        // `right.name` is addressable downstream; plain second `name`
        // resolves to the left side, matching the executor.
        let q = Query::scan("cities")
            .join(Query::scan("cities"), "name", "name")
            .project(&["name", "right.name"]);
        assert!(check_query(&db, &q).is_clean());
    }

    #[test]
    fn text_aggregate_is_a_warning_not_an_error() {
        let db = db();
        let q = Query::scan("cities").aggregate(None, AggFn::Avg, "name");
        let report = check_query(&db, &q);
        assert_eq!(report.error_count(), 0);
        assert_eq!(report.warning_count(), 1);
        let d = &report.diagnostics[0];
        assert_eq!(d.code, codes::TEXT_AGGREGATE);
        assert_eq!(d.severity, Severity::Warning);
        assert_eq!(covered(&report, d), "name");
        assert!(!gates_execution(&report));
        // MIN/MAX over text are fine; COUNT too.
        for agg in [AggFn::Min, AggFn::Max, AggFn::Count] {
            let q = Query::scan("cities").aggregate(None, agg, "name");
            assert!(check_query(&db, &q).is_clean());
        }
    }

    #[test]
    fn unknown_table_does_not_cascade_column_errors() {
        let db = db();
        let q = Query::scan("ghost")
            .filter(vec![Predicate::Eq("anything".into(), Value::Null)])
            .project(&["whatever"]);
        let report = check_query(&db, &q);
        assert_eq!(report.error_count(), 1, "only QQ001, no phantom QQ002s:\n{report}");
        assert_eq!(report.diagnostics[0].code, codes::UNKNOWN_TABLE);
    }

    #[test]
    fn spans_survive_nesting_in_rendered_report() {
        let db = db();
        let q = Query::scan("cities")
            .filter(vec![Predicate::Eq("ghost".into(), Value::Null)])
            .project(&["name"])
            .sort("name", false, Some(1));
        let report = check_query(&db, &q);
        assert_eq!(report.error_count(), 1);
        let d = &report.diagnostics[0];
        assert_eq!(covered(&report, d), "ghost");
        let rendered = report.render();
        assert!(rendered.contains("^^^^^"), "caret run missing:\n{rendered}");
    }
}
