//! Exploration sessions: the seamless movement between exploitation modes.
//!
//! A session starts in whatever mode the user is comfortable with (usually
//! keyword search), records every step, and carries state forward — the
//! keyword results seed the translator, a chosen candidate becomes a form,
//! a filled form becomes a structured answer. The transition log is what
//! E1/E8 inspect.

use crate::engine::{execute, Query, QueryResult};
use crate::forms::{self, QueryForm};
use crate::index::{InvertedIndex, SearchHit};
use crate::translate::{CandidateQuery, Translator};
use quarry_storage::{Database, Value};

/// Exploitation modes a session can be in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Keyword search over raw documents.
    Keyword,
    /// Reviewing suggested structured-query forms.
    FormChoice,
    /// Executing structured queries.
    Structured,
}

/// One logged step.
#[derive(Debug, Clone, PartialEq)]
pub struct Step {
    /// Mode the step ran in.
    pub mode: Mode,
    /// What the user did.
    pub action: String,
}

/// An interactive exploration session.
pub struct Session<'a> {
    index: &'a InvertedIndex,
    translator: &'a Translator,
    db: &'a Database,
    steps: Vec<Step>,
    candidates: Vec<CandidateQuery>,
}

impl<'a> Session<'a> {
    /// Open a session over the three engines.
    pub fn new(
        index: &'a InvertedIndex,
        translator: &'a Translator,
        db: &'a Database,
    ) -> Session<'a> {
        Session { index, translator, db, steps: Vec::new(), candidates: Vec::new() }
    }

    /// Keyword-search step: returns document hits *and* stages structured
    /// candidates for the same keywords (the "guide the user" move).
    pub fn keyword(&mut self, query: &str, k: usize) -> (Vec<SearchHit>, Vec<QueryForm>) {
        self.steps.push(Step { mode: Mode::Keyword, action: format!("search: {query}") });
        let hits = self.index.search(query, k);
        self.candidates = self.translator.translate(query, k);
        let forms = self.candidates.iter().map(|c| forms::render(&c.query)).collect();
        (hits, forms)
    }

    /// The staged candidates from the last keyword step.
    pub fn candidates(&self) -> &[CandidateQuery] {
        &self.candidates
    }

    /// Choose the `i`-th suggested form and run it.
    pub fn choose_form(&mut self, i: usize) -> Option<QueryResult> {
        let cand = self.candidates.get(i)?;
        self.steps.push(Step {
            mode: Mode::FormChoice,
            action: format!("chose form {i}: {}", cand.query.display()),
        });
        self.run(cand.query.clone())
    }

    /// Choose a form, edit one field, then run it.
    pub fn fill_and_run(&mut self, i: usize, field: usize, value: Value) -> Option<QueryResult> {
        let cand = self.candidates.get(i)?;
        let edited = forms::fill(&cand.query, field, value);
        self.steps.push(Step {
            mode: Mode::FormChoice,
            action: format!("edited form {i} field {field}"),
        });
        self.run(edited)
    }

    /// Direct structured-query step (the sophisticated-user path).
    pub fn structured(&mut self, q: Query) -> Option<QueryResult> {
        self.run(q)
    }

    /// Explain a structured query instead of returning its rows: the
    /// physical plan with access paths and per-operator row counts. Logged
    /// as a structured-mode step.
    pub fn explain(&mut self, q: &Query) -> Option<String> {
        self.steps
            .push(Step { mode: Mode::Structured, action: format!("explain: {}", q.display()) });
        q.explain(self.db).ok()
    }

    fn run(&mut self, q: Query) -> Option<QueryResult> {
        self.steps.push(Step { mode: Mode::Structured, action: format!("run: {}", q.display()) });
        execute(self.db, &q).ok()
    }

    /// The transition log.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quarry_corpus::{DocId, DocKind, Document};
    use quarry_storage::{Column, DataType, TableSchema};

    fn setup() -> (InvertedIndex, Database) {
        let docs = vec![Document {
            id: DocId(0),
            title: "Madison".into(),
            text: "Madison has a July temperature of 72 F.".into(),
            kind: DocKind::City,
        }];
        let ix = InvertedIndex::build(&docs);
        let db = Database::in_memory();
        db.create_table(
            TableSchema::new(
                "temps",
                vec![
                    Column::new("city", DataType::Text),
                    Column::new("month", DataType::Text),
                    Column::new("temp", DataType::Int),
                ],
                &["city", "month"],
                &[],
            )
            .unwrap(),
        )
        .unwrap();
        for (m, t) in [("January", 20i64), ("July", 72)] {
            db.insert_autocommit("temps", vec!["Madison".into(), m.into(), Value::Int(t)]).unwrap();
        }
        (ix, db)
    }

    #[test]
    fn keyword_to_form_to_structured_journey() {
        let (ix, db) = setup();
        let tr = Translator::from_database(&db);
        let mut s = Session::new(&ix, &tr, &db);

        let (hits, forms) = s.keyword("average temperature Madison", 5);
        assert!(!hits.is_empty(), "keyword mode still returns documents");
        assert!(!forms.is_empty(), "structured candidates suggested");

        let result = s.choose_form(0).expect("top form runs");
        let avg = result.scalar().and_then(Value::as_f64).unwrap();
        assert!((avg - 46.0).abs() < 1e-9, "{avg}");

        // The session walked through all three modes, in order.
        let modes: Vec<Mode> = s.steps().iter().map(|st| st.mode).collect();
        assert_eq!(modes, vec![Mode::Keyword, Mode::FormChoice, Mode::Structured]);
    }

    #[test]
    fn fill_and_run_edits_a_field() {
        let (ix, db) = setup();
        let tr = Translator::from_database(&db);
        let mut s = Session::new(&ix, &tr, &db);
        s.keyword("temperature July Madison", 5);
        // Edit the month field (July → January) and re-run.
        let form = forms::render(&s.candidates()[0].query);
        let month_field = form.fields.iter().position(|f| f.label == "month").expect("month field");
        let result = s.fill_and_run(0, month_field, "January".into()).unwrap();
        assert!(result.rows.iter().all(|r| r.contains(&Value::Int(20))), "{result:?}");
    }

    #[test]
    fn direct_structured_mode() {
        let (ix, db) = setup();
        let tr = Translator::from_database(&db);
        let mut s = Session::new(&ix, &tr, &db);
        let r = s.structured(Query::scan("temps")).unwrap();
        assert_eq!(r.rows.len(), 2);
        assert_eq!(s.steps().len(), 1);
    }

    #[test]
    fn explain_shows_physical_plan() {
        let (ix, db) = setup();
        let tr = Translator::from_database(&db);
        let mut s = Session::new(&ix, &tr, &db);
        let text = s.explain(&Query::scan("temps")).unwrap();
        assert!(text.contains("PHYSICAL PLAN"), "{text}");
        assert!(text.contains("full scan"), "{text}");
        assert!(text.contains("rows=2"), "{text}");
        assert_eq!(s.steps().len(), 1);
    }

    #[test]
    fn choosing_a_missing_form_is_none() {
        let (ix, db) = setup();
        let tr = Translator::from_database(&db);
        let mut s = Session::new(&ix, &tr, &db);
        assert!(s.choose_form(0).is_none());
    }
}
