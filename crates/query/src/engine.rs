//! A compositional structured query engine over the structured store.
//!
//! Queries are algebraic trees — scan, filter, project, join, aggregate —
//! executed against a [`Database`] under one read transaction. This is the
//! "structured querying" exploitation mode, the one the paper's motivating
//! example ("find the average March–September temperature in Madison")
//! needs and keyword search cannot express.

use quarry_exec::diag::LintReport;
use quarry_storage::{Database, DbSnapshot, Row, StorageError, Value};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Query-evaluation error.
#[derive(Debug)]
pub enum QueryError {
    /// Underlying storage failure.
    Storage(StorageError),
    /// Reference to an unknown column.
    UnknownColumn(String),
    /// Aggregation over a non-numeric column.
    NotNumeric(String),
    /// The query failed static validation before execution — the report
    /// carries span-anchored [`crate::lint`] diagnostics over the query's
    /// SQL-flavored rendering.
    Invalid(LintReport),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Storage(e) => write!(f, "storage: {e}"),
            QueryError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            QueryError::NotNumeric(c) => write!(f, "column {c} is not numeric"),
            QueryError::Invalid(report) => write!(
                f,
                "query rejected by static validation ({} error(s)):\n{}",
                report.error_count(),
                report.render()
            ),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<StorageError> for QueryError {
    fn from(e: StorageError) -> Self {
        QueryError::Storage(e)
    }
}

/// A row predicate over named columns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Predicate {
    /// `column = value`.
    Eq(String, Value),
    /// `column != value`.
    Ne(String, Value),
    /// `column < value`.
    Lt(String, Value),
    /// `column <= value`.
    Le(String, Value),
    /// `column > value`.
    Gt(String, Value),
    /// `column >= value`.
    Ge(String, Value),
    /// Case-insensitive substring match on a text column.
    Contains(String, String),
    /// Membership in a value set (`column IN (...)`).
    In(String, Vec<Value>),
}

impl Predicate {
    /// The column the predicate constrains.
    pub fn column(&self) -> &str {
        match self {
            Predicate::Eq(c, _)
            | Predicate::Ne(c, _)
            | Predicate::Lt(c, _)
            | Predicate::Le(c, _)
            | Predicate::Gt(c, _)
            | Predicate::Ge(c, _)
            | Predicate::Contains(c, _)
            | Predicate::In(c, _) => c,
        }
    }

    pub(crate) fn eval(&self, v: &Value) -> bool {
        match self {
            Predicate::Eq(_, x) => v == x,
            Predicate::Ne(_, x) => v != x,
            Predicate::Lt(_, x) => v < x,
            Predicate::Le(_, x) => v <= x,
            Predicate::Gt(_, x) => v > x,
            Predicate::Ge(_, x) => v >= x,
            Predicate::Contains(_, needle) => {
                v.as_text().is_some_and(|t| t.to_lowercase().contains(&needle.to_lowercase()))
            }
            Predicate::In(_, set) => set.contains(v),
        }
    }

    /// Render for forms/explanations.
    pub fn display(&self) -> String {
        match self {
            Predicate::Eq(c, v) => format!("{c} = {v}"),
            Predicate::Ne(c, v) => format!("{c} != {v}"),
            Predicate::Lt(c, v) => format!("{c} < {v}"),
            Predicate::Le(c, v) => format!("{c} <= {v}"),
            Predicate::Gt(c, v) => format!("{c} > {v}"),
            Predicate::Ge(c, v) => format!("{c} >= {v}"),
            Predicate::Contains(c, s) => format!("{c} CONTAINS '{s}'"),
            Predicate::In(c, vs) => {
                let items: Vec<String> = vs.iter().map(Value::to_string).collect();
                format!("{c} IN ({})", items.join(", "))
            }
        }
    }
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AggFn {
    /// Row count (column ignored for counting, still named for display).
    Count,
    /// Numeric sum.
    Sum,
    /// Numeric mean.
    Avg,
    /// Minimum (any type, total order).
    Min,
    /// Maximum (any type, total order).
    Max,
}

impl AggFn {
    /// SQL-ish name.
    pub fn name(&self) -> &'static str {
        match self {
            AggFn::Count => "COUNT",
            AggFn::Sum => "SUM",
            AggFn::Avg => "AVG",
            AggFn::Min => "MIN",
            AggFn::Max => "MAX",
        }
    }
}

/// A query tree.
///
/// ```
/// use quarry_query::engine::{AggFn, Predicate, Query};
/// use quarry_storage::Value;
///
/// // "find the average March–September temperature in Madison"
/// let q = Query::scan("temps")
///     .filter(vec![
///         Predicate::Eq("city".into(), "Madison".into()),
///         Predicate::Ge("month".into(), Value::Int(3)),
///         Predicate::Le("month".into(), Value::Int(9)),
///     ])
///     .aggregate(None, AggFn::Avg, "temp");
/// assert!(q.display().starts_with("SELECT AVG(temp)"));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Query {
    /// Read a whole table.
    Scan {
        /// Table name.
        table: String,
    },
    /// Keep rows satisfying every predicate.
    Filter {
        /// Input query.
        input: Box<Query>,
        /// Conjunctive predicates.
        predicates: Vec<Predicate>,
    },
    /// Keep only the named columns, in order.
    Project {
        /// Input query.
        input: Box<Query>,
        /// Columns to keep.
        columns: Vec<String>,
    },
    /// Equi-join two inputs on named columns.
    Join {
        /// Left input.
        left: Box<Query>,
        /// Right input.
        right: Box<Query>,
        /// Join column on the left.
        left_col: String,
        /// Join column on the right.
        right_col: String,
    },
    /// Group by an optional column and aggregate another.
    Aggregate {
        /// Input query.
        input: Box<Query>,
        /// Optional grouping column (`None` = one global group).
        group_by: Option<String>,
        /// Aggregate function.
        agg: AggFn,
        /// Aggregated column.
        over: String,
    },
    /// Order by a column and optionally keep the first `limit` rows
    /// (top-k: the "ranking" exploitation mode).
    Sort {
        /// Input query.
        input: Box<Query>,
        /// Ordering column.
        by: String,
        /// Descending when true.
        desc: bool,
        /// Optional row cap after sorting.
        limit: Option<usize>,
    },
}

impl Query {
    /// Convenience: scan a table.
    pub fn scan(table: &str) -> Query {
        Query::Scan { table: table.to_string() }
    }

    /// Convenience: filter this query.
    pub fn filter(self, predicates: Vec<Predicate>) -> Query {
        Query::Filter { input: Box::new(self), predicates }
    }

    /// Convenience: project this query.
    pub fn project(self, columns: &[&str]) -> Query {
        Query::Project {
            input: Box::new(self),
            columns: columns.iter().map(|c| c.to_string()).collect(),
        }
    }

    /// Convenience: aggregate this query.
    pub fn aggregate(self, group_by: Option<&str>, agg: AggFn, over: &str) -> Query {
        Query::Aggregate {
            input: Box::new(self),
            group_by: group_by.map(str::to_string),
            agg,
            over: over.to_string(),
        }
    }

    /// Convenience: sort (and optionally limit) this query.
    pub fn sort(self, by: &str, desc: bool, limit: Option<usize>) -> Query {
        Query::Sort { input: Box::new(self), by: by.to_string(), desc, limit }
    }

    /// Convenience: join with another query.
    pub fn join(self, right: Query, left_col: &str, right_col: &str) -> Query {
        Query::Join {
            left: Box::new(self),
            right: Box::new(right),
            left_col: left_col.to_string(),
            right_col: right_col.to_string(),
        }
    }

    /// Every table this query reads, sorted and deduplicated. The result
    /// cache keys on these tables' write versions.
    pub fn tables(&self) -> Vec<String> {
        fn walk(q: &Query, out: &mut Vec<String>) {
            match q {
                Query::Scan { table } => out.push(table.clone()),
                Query::Filter { input, .. }
                | Query::Project { input, .. }
                | Query::Aggregate { input, .. }
                | Query::Sort { input, .. } => walk(input, out),
                Query::Join { left, right, .. } => {
                    walk(left, out);
                    walk(right, out);
                }
            }
        }
        let mut tables = Vec::new();
        walk(self, &mut tables);
        tables.sort();
        tables.dedup();
        tables
    }

    /// A stable text fingerprint of the query tree (cache key component).
    /// Two structurally identical queries always fingerprint identically.
    pub fn fingerprint(&self) -> String {
        format!("{self:?}")
    }

    /// Plan, execute, and render the physical operator tree with the
    /// chosen access paths, pushed predicates, and estimated vs. actual
    /// per-operator row counts.
    pub fn explain(&self, db: &Database) -> Result<String, QueryError> {
        let cfg = crate::planner::PlannerConfig::default();
        let (_, trace) = crate::planner::execute_with(db, self, &cfg)?;
        Ok(format!("PHYSICAL PLAN: {}\n{}", self.display(), trace.render()))
    }

    /// [`Query::explain`] against an immutable snapshot: same plan, same
    /// rendering, no transaction or lock acquisition.
    pub fn explain_snapshot(&self, snap: &DbSnapshot) -> Result<String, QueryError> {
        let cfg = crate::planner::PlannerConfig::default();
        let (_, trace) = crate::planner::execute_snapshot_with(snap, self, &cfg)?;
        Ok(format!("PHYSICAL PLAN: {}\n{}", self.display(), trace.render()))
    }

    /// Render as an SQL-flavored one-liner (forms, explanations, logs).
    pub fn display(&self) -> String {
        match self {
            Query::Scan { table } => format!("SELECT * FROM {table}"),
            Query::Filter { input, predicates } => {
                let preds: Vec<String> = predicates.iter().map(Predicate::display).collect();
                format!("{} WHERE {}", input.display(), preds.join(" AND "))
            }
            Query::Project { input, columns } => {
                format!("SELECT {} FROM ({})", columns.join(", "), input.display())
            }
            Query::Join { left, right, left_col, right_col } => format!(
                "({}) JOIN ({}) ON {left_col} = {right_col}",
                left.display(),
                right.display()
            ),
            Query::Aggregate { input, group_by, agg, over } => {
                let g = group_by.as_ref().map(|g| format!(" GROUP BY {g}")).unwrap_or_default();
                format!("SELECT {}({over}) FROM ({}){g}", agg.name(), input.display())
            }
            Query::Sort { input, by, desc, limit } => {
                let dir = if *desc { " DESC" } else { "" };
                let lim = limit.map(|l| format!(" LIMIT {l}")).unwrap_or_default();
                format!("{} ORDER BY {by}{dir}{lim}", input.display())
            }
        }
    }
}

/// A materialized result: named columns and rows.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Output column names.
    pub columns: Vec<String>,
    /// Output rows.
    pub rows: Vec<Row>,
}

impl QueryResult {
    /// Position of a column.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// The single scalar of a 1×1 result, if it is one.
    pub fn scalar(&self) -> Option<&Value> {
        match (&self.rows[..], self.columns.len()) {
            ([row], 1) => row.first(),
            _ => None,
        }
    }
}

/// Execute a query tree against a database, through the physical planner
/// under its default configuration (index routing, pushdown, and join-side
/// selection all on). See [`crate::planner`] for the toggles and
/// [`crate::planner::execute_with`] for the traced variant.
pub fn execute(db: &Database, q: &Query) -> Result<QueryResult, QueryError> {
    crate::planner::execute_with(db, q, &crate::planner::PlannerConfig::default())
        .map(|(result, _)| result)
}

/// [`execute`] against an immutable [`DbSnapshot`]: the lock-free MVCC
/// read path. Bit-identical results — rows, ordering, and error kinds —
/// to executing the same query on the live database at the snapshot's LSN.
pub fn execute_snapshot(snap: &DbSnapshot, q: &Query) -> Result<QueryResult, QueryError> {
    crate::planner::execute_snapshot_with(snap, q, &crate::planner::PlannerConfig::default())
        .map(|(result, _)| result)
}

pub(crate) fn compute_agg(agg: AggFn, vals: &[&Value], over: &str) -> Result<Value, QueryError> {
    let non_null: Vec<&&Value> = vals.iter().filter(|v| !v.is_null()).collect();
    match agg {
        AggFn::Count => Ok(Value::Int(non_null.len() as i64)),
        AggFn::Min => Ok(non_null.iter().min().map(|v| (**v).clone()).unwrap_or(Value::Null)),
        AggFn::Max => Ok(non_null.iter().max().map(|v| (**v).clone()).unwrap_or(Value::Null)),
        AggFn::Sum | AggFn::Avg => {
            let nums: Vec<f64> = non_null
                .iter()
                .map(|v| v.as_f64().ok_or_else(|| QueryError::NotNumeric(over.to_string())))
                .collect::<Result<_, _>>()?;
            if nums.is_empty() {
                return Ok(Value::Null);
            }
            let sum: f64 = nums.iter().sum();
            Ok(match agg {
                AggFn::Sum => Value::Float(sum),
                _ => Value::Float(sum / nums.len() as f64),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quarry_storage::{Column, DataType, TableSchema};

    fn db() -> Database {
        let db = Database::in_memory();
        db.create_table(
            TableSchema::new(
                "cities",
                vec![
                    Column::new("name", DataType::Text),
                    Column::new("state", DataType::Text),
                    Column::new("population", DataType::Int),
                ],
                &["name"],
                &["population"],
            )
            .unwrap(),
        )
        .unwrap();
        db.create_table(
            TableSchema::new(
                "temps",
                vec![
                    Column::new("city", DataType::Text),
                    Column::new("month", DataType::Int),
                    Column::new("temp", DataType::Int),
                ],
                &["city", "month"],
                &[],
            )
            .unwrap(),
        )
        .unwrap();
        for (name, state, pop) in [
            ("Madison", "Wisconsin", 250_000i64),
            ("Oakton", "Iowa", 9_500),
            ("Riverdale", "Wisconsin", 120_000),
        ] {
            db.insert_autocommit("cities", vec![name.into(), state.into(), Value::Int(pop)])
                .unwrap();
        }
        let temps = [20, 24, 35, 47, 58, 68, 72, 70, 62, 50, 37, 25];
        for (m, t) in temps.iter().enumerate() {
            db.insert_autocommit(
                "temps",
                vec!["Madison".into(), Value::Int(m as i64 + 1), Value::Int(*t as i64)],
            )
            .unwrap();
        }
        db
    }

    #[test]
    fn scan_filter_project() {
        let db = db();
        let q = Query::scan("cities")
            .filter(vec![Predicate::Eq("state".into(), "Wisconsin".into())])
            .project(&["name"]);
        let r = execute(&db, &q).unwrap();
        assert_eq!(r.columns, vec!["name"]);
        let names: Vec<String> = r.rows.iter().map(|r| r[0].to_string()).collect();
        assert_eq!(names, vec!["Madison", "Riverdale"]);
    }

    #[test]
    fn paper_motivating_query_average_march_september_temperature() {
        let db = db();
        // "find the average March–September temperature in Madison"
        let q = Query::scan("temps")
            .filter(vec![
                Predicate::Eq("city".into(), "Madison".into()),
                Predicate::Ge("month".into(), Value::Int(3)),
                Predicate::Le("month".into(), Value::Int(9)),
            ])
            .aggregate(None, AggFn::Avg, "temp");
        let r = execute(&db, &q).unwrap();
        let expect = (35 + 47 + 58 + 68 + 72 + 70 + 62) as f64 / 7.0;
        assert_eq!(r.scalar(), Some(&Value::Float(expect)));
        assert!(q.display().contains("AVG(temp)"));
    }

    #[test]
    fn range_and_contains_predicates() {
        let db = db();
        let q = Query::scan("cities")
            .filter(vec![Predicate::Gt("population".into(), Value::Int(100_000))]);
        assert_eq!(execute(&db, &q).unwrap().rows.len(), 2);
        let q =
            Query::scan("cities").filter(vec![Predicate::Contains("name".into(), "dale".into())]);
        let r = execute(&db, &q).unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0], Value::Text("Riverdale".into()));
    }

    #[test]
    fn group_by_aggregation() {
        let db = db();
        let q = Query::scan("cities").aggregate(Some("state"), AggFn::Sum, "population");
        let r = execute(&db, &q).unwrap();
        assert_eq!(r.columns, vec!["state", "SUM(population)"]);
        assert_eq!(r.rows.len(), 2);
        let wi = r.rows.iter().find(|row| row[0] == Value::Text("Wisconsin".into())).unwrap();
        assert_eq!(wi[1], Value::Float(370_000.0));
    }

    #[test]
    fn count_min_max() {
        let db = db();
        let q = Query::scan("temps").aggregate(None, AggFn::Count, "temp");
        assert_eq!(execute(&db, &q).unwrap().scalar(), Some(&Value::Int(12)));
        let q = Query::scan("temps").aggregate(None, AggFn::Max, "temp");
        assert_eq!(execute(&db, &q).unwrap().scalar(), Some(&Value::Int(72)));
        let q = Query::scan("temps").aggregate(None, AggFn::Min, "temp");
        assert_eq!(execute(&db, &q).unwrap().scalar(), Some(&Value::Int(20)));
    }

    #[test]
    fn join_cities_with_temps() {
        let db = db();
        let q = Query::scan("cities")
            .filter(vec![Predicate::Eq("state".into(), "Wisconsin".into())])
            .join(Query::scan("temps"), "name", "city")
            .filter(vec![Predicate::Eq("month".into(), Value::Int(7))])
            .project(&["name", "temp"]);
        let r = execute(&db, &q).unwrap();
        assert_eq!(r.rows, vec![vec![Value::Text("Madison".into()), Value::Int(72)]]);
    }

    #[test]
    fn join_column_name_collision_prefixed() {
        let db = db();
        let q = Query::scan("cities").join(Query::scan("cities"), "name", "name");
        let r = execute(&db, &q).unwrap();
        assert!(r.columns.contains(&"right.name".to_string()));
        assert_eq!(r.rows.len(), 3);
    }

    #[test]
    fn errors_on_unknown_things() {
        let db = db();
        let q = Query::scan("ghost");
        assert!(matches!(execute(&db, &q), Err(QueryError::Storage(_))));
        // Unknown columns are now caught by static validation before the
        // read transaction even begins.
        let q = Query::scan("cities").filter(vec![Predicate::Eq("ghost".into(), Value::Null)]);
        match execute(&db, &q) {
            Err(QueryError::Invalid(report)) => {
                assert_eq!(report.error_count(), 1);
                assert_eq!(report.diagnostics[0].code, crate::lint::codes::UNKNOWN_COLUMN);
            }
            other => panic!("expected Invalid, got {other:?}"),
        }
        let q = Query::scan("cities").aggregate(None, AggFn::Avg, "name");
        assert!(matches!(execute(&db, &q), Err(QueryError::NotNumeric(_))));
    }

    #[test]
    fn empty_aggregate_is_null_or_zero() {
        let db = db();
        let q = Query::scan("cities")
            .filter(vec![Predicate::Eq("state".into(), "Atlantis".into())])
            .aggregate(None, AggFn::Avg, "population");
        assert_eq!(execute(&db, &q).unwrap().scalar(), Some(&Value::Null));
        let q = Query::scan("cities")
            .filter(vec![Predicate::Eq("state".into(), "Atlantis".into())])
            .aggregate(None, AggFn::Count, "population");
        assert_eq!(execute(&db, &q).unwrap().scalar(), Some(&Value::Int(0)));
    }

    #[test]
    fn sort_and_limit() {
        let db = db();
        let q = Query::scan("cities").sort("population", true, Some(2)).project(&["name"]);
        let r = execute(&db, &q).unwrap();
        let names: Vec<String> = r.rows.iter().map(|row| row[0].to_string()).collect();
        assert_eq!(names, vec!["Madison", "Riverdale"]);

        let q = Query::scan("cities").sort("population", false, None);
        let r = execute(&db, &q).unwrap();
        assert_eq!(r.rows[0][0], Value::Text("Oakton".into()));
        assert_eq!(r.rows.len(), 3);

        // Sorting after aggregation: warmest month first.
        let q = Query::scan("temps").aggregate(Some("month"), AggFn::Avg, "temp").sort(
            "AVG(temp)",
            true,
            Some(1),
        );
        let r = execute(&db, &q).unwrap();
        assert_eq!(r.rows[0][0], Value::Int(7), "July is warmest");

        let q = Query::scan("cities").sort("ghost", false, None);
        assert!(matches!(execute(&db, &q), Err(QueryError::Invalid(_))));
    }

    #[test]
    fn sort_display() {
        let q = Query::scan("cities").sort("population", true, Some(3));
        assert!(q.display().ends_with("ORDER BY population DESC LIMIT 3"));
    }

    #[test]
    fn display_renders_sql_flavor() {
        let q = Query::scan("cities")
            .filter(vec![Predicate::Eq("state".into(), "Wisconsin".into())])
            .project(&["name"]);
        let s = q.display();
        assert!(s.contains("SELECT name FROM"));
        assert!(s.contains("WHERE state = Wisconsin"));
    }
}
