//! The user layer: data-exploitation modes over raw text and derived
//! structure.
//!
//! §3.2's exploitation story: users "start in whatever data-exploitation
//! mode they deem comfortable (e.g., keyword search, structured querying,
//! browsing)", and the system helps them "move seamlessly into the mode
//! that is ultimately appropriate". The modes:
//!
//! - [`index`] — inverted index with BM25 ranking (the keyword mode, and
//!   the baseline E1 compares structured querying against);
//! - [`engine`] — a compositional structured query engine (scan / filter /
//!   project / join / group-aggregate) over the structured store;
//! - [`translate`] — keyword → structured translation: "guess and show the
//!   user several structured queries", ranked (E8);
//! - [`forms`] — rendering candidate queries as fillable forms, the
//!   recognition-not-generation interface of §3.3;
//! - [`lint`] — static validation of query trees against table schemas
//!   (QQ001–QQ003), run before execution with span-anchored diagnostics;
//! - [`session`] — an exploration session that records mode transitions.

#![forbid(unsafe_code)]

pub mod engine;
pub mod forms;
pub mod index;
pub mod lint;
pub mod planner;
pub mod session;
pub mod source;
pub mod translate;

pub use engine::{AggFn, Predicate, Query, QueryError, QueryResult};
pub use index::{InvertedIndex, SearchHit};
pub use lint::check_query;
pub use planner::{
    execute_snapshot_with, execute_with, plan, AccessPath, OpTrace, PhysPlan, PlannerConfig,
};
pub use session::{Mode, Session};
pub use source::{Catalog, Source};
pub use translate::{CandidateQuery, Translator};
