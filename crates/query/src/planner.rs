//! Index-aware physical query planning.
//!
//! [`crate::engine`] defines *what* a query means; this module decides *how*
//! to run it. Between `Query` and execution sits a small physical planner
//! doing the three classic optimizations the paper's "database-grade query
//! processing" story needs:
//!
//! 1. **Access-path selection** — equality/range predicates on an indexed
//!    column route through the storage engine's B-tree secondary indexes
//!    instead of a full table scan. The index is used strictly as a row-id
//!    *pre-filter*: every predicate stays in the residual conjunction and is
//!    re-checked against the fetched row, so a loose index bound can cost
//!    time but never correctness.
//! 2. **Predicate + projection pushdown** — residual predicates and the
//!    projection column list are pushed into [`Database::select`], which
//!    evaluates them while rows are still borrowed from the heap. A
//!    non-matching row is never cloned, and matching rows only clone the
//!    projected columns.
//! 3. **Join-side selection** — the hash join builds its table on whichever
//!    input materialized fewer rows and probes with the larger, while
//!    emitting output in exactly the order the fixed-side join would have.
//!
//! Every optimization is independently toggleable through
//! [`PlannerConfig`] (mirroring the E5 ablation style of the logical
//! optimizer in `quarry-lang`), and [`PlannerConfig::full_scan`] disables
//! them all — the reference configuration the differential tests compare
//! against. Row order is part of the contract: for any config, results are
//! bit-identical to the full-scan pipeline, because both access paths
//! return rows in row-id order and the build-side swap preserves
//! probe-order output.
//!
//! [`execute_with`] returns the result *plus* an [`OpTrace`]: per-operator
//! estimated vs. actual row counts and scan counters, rendered through the
//! shared [`PlanNode`] tree renderer by `Query::explain`.
//!
//! [`Database::select`]: quarry_storage::Database::select

use crate::engine::{compute_agg, Predicate, Query, QueryError, QueryResult};
use crate::source::{Catalog, LiveTx, Source};
use quarry_exec::PlanNode;
use quarry_storage::{Database, DbSnapshot, Row, ScanAccess, Value};
use std::collections::HashMap;

/// Physical-planner toggles (all on by default).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannerConfig {
    /// Route indexable predicates through secondary indexes.
    pub use_index: bool,
    /// Push residual predicates and projections into row materialization.
    pub pushdown: bool,
    /// Build the join hash table on the smaller input.
    pub join_side_selection: bool,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig { use_index: true, pushdown: true, join_side_selection: true }
    }
}

impl PlannerConfig {
    /// The naive reference configuration: full scans, no pushdown, fixed
    /// join sides — exactly the pre-planner execution strategy.
    pub fn full_scan() -> Self {
        PlannerConfig { use_index: false, pushdown: false, join_side_selection: false }
    }
}

/// How a table access fetches candidate rows.
#[derive(Debug, Clone, PartialEq)]
pub enum AccessPath {
    /// Scan every row under a table-level shared lock.
    FullScan,
    /// Probe a secondary index for one value.
    IndexEq {
        /// Indexed column.
        column: String,
        /// Probe value.
        value: Value,
    },
    /// Scan a secondary index over an inclusive bound window. Strict
    /// comparisons keep their strictness in the residual predicates.
    IndexRange {
        /// Indexed column.
        column: String,
        /// Lower bound (inclusive), if any.
        lo: Option<Value>,
        /// Upper bound (inclusive), if any.
        hi: Option<Value>,
    },
}

impl AccessPath {
    fn describe(&self) -> String {
        match self {
            AccessPath::FullScan => "full scan".to_string(),
            AccessPath::IndexEq { column, value } => format!("index eq({column} = {value})"),
            AccessPath::IndexRange { column, lo, hi } => {
                let lo = lo.as_ref().map(|v| v.to_string()).unwrap_or_else(|| "-inf".into());
                let hi = hi.as_ref().map(|v| v.to_string()).unwrap_or_else(|| "+inf".into());
                format!("index range({column} in [{lo}, {hi}])")
            }
        }
    }
}

/// A physical operator tree.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysPlan {
    /// Table access: path choice plus pushed-down residual filter and
    /// projection. The residual always carries the *complete* predicate
    /// conjunction — the access path only narrows which rows get checked.
    Access {
        /// Table name.
        table: String,
        /// Chosen access path.
        path: AccessPath,
        /// Pushed-down predicates, re-checked per fetched row.
        residual: Vec<Predicate>,
        /// Pushed-down projection (column names), if any.
        projection: Option<Vec<String>>,
        /// Planner's row estimate for this access, if stats were available.
        est_rows: Option<usize>,
    },
    /// Residual filter that could not be pushed into an access.
    Filter {
        /// Input plan.
        input: Box<PhysPlan>,
        /// Conjunctive predicates.
        predicates: Vec<Predicate>,
    },
    /// Projection that could not be pushed into an access.
    Project {
        /// Input plan.
        input: Box<PhysPlan>,
        /// Columns to keep, in order.
        columns: Vec<String>,
    },
    /// Hash equi-join.
    HashJoin {
        /// Left input.
        left: Box<PhysPlan>,
        /// Right input.
        right: Box<PhysPlan>,
        /// Join column on the left.
        left_col: String,
        /// Join column on the right.
        right_col: String,
        /// Pick the build side by materialized size (else always build
        /// on the right, the historical fixed side).
        select_build_side: bool,
    },
    /// Group + aggregate.
    Aggregate {
        /// Input plan.
        input: Box<PhysPlan>,
        /// Optional grouping column.
        group_by: Option<String>,
        /// Aggregate function.
        agg: crate::engine::AggFn,
        /// Aggregated column.
        over: String,
    },
    /// Order by + optional limit.
    Sort {
        /// Input plan.
        input: Box<PhysPlan>,
        /// Ordering column.
        by: String,
        /// Descending when true.
        desc: bool,
        /// Optional row cap.
        limit: Option<usize>,
    },
}

/// Per-operator execution trace: what the planner predicted and what
/// actually happened — the physical layer's ExecReport.
#[derive(Debug, Clone, PartialEq)]
pub struct OpTrace {
    /// Operator description (access path, pushed predicates, join sides…).
    pub label: String,
    /// Planner's row estimate, when it had one.
    pub est_rows: Option<usize>,
    /// Rows this operator produced.
    pub actual_rows: usize,
    /// Candidate rows examined (access operators only).
    pub scanned: Option<usize>,
    /// Input operator traces.
    pub children: Vec<OpTrace>,
}

impl OpTrace {
    /// Total candidate rows examined across the whole tree — the number
    /// access-path selection exists to shrink.
    pub fn total_scanned(&self) -> usize {
        self.scanned.unwrap_or(0) + self.children.iter().map(OpTrace::total_scanned).sum::<usize>()
    }

    /// Convert to the shared displayable tree.
    pub fn to_plan_node(&self) -> PlanNode {
        let mut ann = Vec::new();
        if let Some(e) = self.est_rows {
            ann.push(format!("est={e}"));
        }
        if let Some(s) = self.scanned {
            ann.push(format!("scanned={s}"));
        }
        ann.push(format!("rows={}", self.actual_rows));
        PlanNode::branch(
            format!("{} ({})", self.label, ann.join(", ")),
            self.children.iter().map(OpTrace::to_plan_node).collect(),
        )
    }

    /// Render with tree connectors.
    pub fn render(&self) -> String {
        self.to_plan_node().render()
    }
}

/// Lower a query tree to a physical plan. Infallible: planning never
/// touches data. Reference errors are caught before this runs by the
/// [`crate::lint`] validator in [`execute_with`]; anything that slips
/// through (e.g. a table dropped mid-flight) still surfaces at execution,
/// exactly where the unplanned engine raised it.
///
/// Generic over [`Catalog`]: plans identically from the live [`Database`]
/// or a [`DbSnapshot`] (whose statistics are frozen at capture time).
pub fn plan<C: Catalog>(db: &C, q: &Query, cfg: &PlannerConfig) -> PhysPlan {
    match q {
        Query::Scan { table } => PhysPlan::Access {
            table: table.clone(),
            path: AccessPath::FullScan,
            residual: Vec::new(),
            projection: None,
            est_rows: db.row_count(table).ok(),
        },
        Query::Filter { input, predicates } => match plan(db, input, cfg) {
            // Pushdown: merge into the access and (re)pick its path from
            // the full conjunction. Only legal while no projection has
            // been pushed — predicates must validate against the table's
            // schema columns, not the projected set.
            PhysPlan::Access { table, residual: mut res, projection: None, .. } if cfg.pushdown => {
                res.extend(predicates.iter().cloned());
                let (path, est_rows) = choose_access(db, &table, &res, cfg);
                PhysPlan::Access { table, path, residual: res, projection: None, est_rows }
            }
            // No pushdown, but access-path selection may still apply: the
            // filter stays above and re-checks everything.
            PhysPlan::Access { table, residual, projection: None, path: _, est_rows: _ }
                if cfg.use_index && residual.is_empty() =>
            {
                let (path, est_rows) = choose_access(db, &table, predicates, cfg);
                PhysPlan::Filter {
                    input: Box::new(PhysPlan::Access {
                        table,
                        path,
                        residual,
                        projection: None,
                        est_rows,
                    }),
                    predicates: predicates.clone(),
                }
            }
            other => PhysPlan::Filter { input: Box::new(other), predicates: predicates.clone() },
        },
        Query::Project { input, columns } => match plan(db, input, cfg) {
            PhysPlan::Access { table, path, residual, projection: None, est_rows }
                if cfg.pushdown =>
            {
                PhysPlan::Access {
                    table,
                    path,
                    residual,
                    projection: Some(columns.clone()),
                    est_rows,
                }
            }
            other => PhysPlan::Project { input: Box::new(other), columns: columns.clone() },
        },
        Query::Join { left, right, left_col, right_col } => PhysPlan::HashJoin {
            left: Box::new(plan(db, left, cfg)),
            right: Box::new(plan(db, right, cfg)),
            left_col: left_col.clone(),
            right_col: right_col.clone(),
            select_build_side: cfg.join_side_selection,
        },
        Query::Aggregate { input, group_by, agg, over } => PhysPlan::Aggregate {
            input: Box::new(plan(db, input, cfg)),
            group_by: group_by.clone(),
            agg: *agg,
            over: over.clone(),
        },
        Query::Sort { input, by, desc, limit } => PhysPlan::Sort {
            input: Box::new(plan(db, input, cfg)),
            by: by.clone(),
            desc: *desc,
            limit: limit.map(|l| l),
        },
    }
}

/// Pick an access path for `table` given the full residual conjunction.
///
/// Preference order: the equality predicate with the lowest estimated
/// match count (from index stats), then the first range-constrained
/// indexed column with all its bounds intersected, then a full scan.
fn choose_access<C: Catalog>(
    db: &C,
    table: &str,
    residual: &[Predicate],
    cfg: &PlannerConfig,
) -> (AccessPath, Option<usize>) {
    let full = || (AccessPath::FullScan, db.row_count(table).ok());
    if !cfg.use_index {
        return full();
    }
    let indexed = db.indexed_columns(table).unwrap_or_default();
    if indexed.is_empty() {
        return full();
    }
    let is_indexed = |c: &str| indexed.iter().any(|ic| ic == c);

    // Equality probes first: cheapest estimate wins, first wins ties.
    let mut best_eq: Option<(&str, &Value, usize)> = None;
    for p in residual {
        if let Predicate::Eq(c, v) = p {
            if is_indexed(c) {
                let est = db
                    .index_stats(table, c)
                    .ok()
                    .flatten()
                    .map(|s| s.eq_estimate())
                    .unwrap_or(usize::MAX);
                if best_eq.is_none_or(|(_, _, prev)| est < prev) {
                    best_eq = Some((c, v, est));
                }
            }
        }
    }
    if let Some((column, value, est)) = best_eq {
        let est = (est != usize::MAX).then_some(est);
        return (AccessPath::IndexEq { column: column.to_string(), value: value.clone() }, est);
    }

    // Range window on the first indexed column a range predicate names.
    // Strict bounds use the inclusive index window; the residual's strict
    // comparison discards boundary rows afterwards.
    let range_col = residual.iter().find_map(|p| match p {
        Predicate::Ge(c, _) | Predicate::Gt(c, _) | Predicate::Le(c, _) | Predicate::Lt(c, _)
            if is_indexed(c) =>
        {
            Some(c.as_str())
        }
        _ => None,
    });
    if let Some(col) = range_col {
        let lo = residual
            .iter()
            .filter_map(|p| match p {
                Predicate::Ge(c, v) | Predicate::Gt(c, v) if c == col => Some(v),
                _ => None,
            })
            .max();
        let hi = residual
            .iter()
            .filter_map(|p| match p {
                Predicate::Le(c, v) | Predicate::Lt(c, v) if c == col => Some(v),
                _ => None,
            })
            .min();
        let est = db.index_stats(table, col).ok().flatten().map(|s| s.entries);
        return (
            AccessPath::IndexRange { column: col.to_string(), lo: lo.cloned(), hi: hi.cloned() },
            est,
        );
    }
    full()
}

/// Plan and execute under one read transaction, returning the result and
/// the per-operator trace.
pub fn execute_with(
    db: &Database,
    q: &Query,
    cfg: &PlannerConfig,
) -> Result<(QueryResult, OpTrace), QueryError> {
    // Static validation before any transaction: unknown column references
    // become one span-anchored report instead of a runtime error deep in
    // an operator. Unknown *tables* (QQ001) deliberately don't gate —
    // they stay a `StorageError` so dynamic table probing keeps working.
    let report = crate::lint::check_query(db, q);
    if crate::lint::gates_execution(&report) {
        return Err(QueryError::Invalid(report));
    }
    let physical = plan(db, q, cfg);
    let tx = db.begin();
    let out = exec_plan(&LiveTx { db, tx }, &physical);
    match &out {
        Ok(_) => db.commit(tx)?,
        Err(_) => {
            let _ = db.abort(tx);
        }
    }
    out
}

/// Plan and execute against an immutable [`DbSnapshot`] — the lock-free
/// MVCC read path. Identical validation, planning, and execution semantics
/// to [`execute_with`], minus the transaction: a snapshot is already a
/// stable view, so there is nothing to lock, begin, or commit.
pub fn execute_snapshot_with(
    snap: &DbSnapshot,
    q: &Query,
    cfg: &PlannerConfig,
) -> Result<(QueryResult, OpTrace), QueryError> {
    let report = crate::lint::check_query(snap, q);
    if crate::lint::gates_execution(&report) {
        return Err(QueryError::Invalid(report));
    }
    let physical = plan(snap, q, cfg);
    exec_plan(snap, &physical)
}

fn exec_plan<S: Source>(src: &S, p: &PhysPlan) -> Result<(QueryResult, OpTrace), QueryError> {
    match p {
        PhysPlan::Access { table, path, residual, projection, est_rows } => {
            let schema = src.schema(table)?;
            let cols: Vec<String> = schema.columns.iter().map(|c| c.name.clone()).collect();
            let residual_idx: Vec<usize> = residual
                .iter()
                .map(|pr| {
                    cols.iter()
                        .position(|c| c == pr.column())
                        .ok_or_else(|| QueryError::UnknownColumn(pr.column().to_string()))
                })
                .collect::<Result<_, _>>()?;
            let proj_idx: Option<Vec<usize>> = match projection {
                Some(pcols) => Some(
                    pcols
                        .iter()
                        .map(|c| {
                            cols.iter()
                                .position(|x| x == c)
                                .ok_or_else(|| QueryError::UnknownColumn(c.clone()))
                        })
                        .collect::<Result<_, _>>()?,
                ),
                None => None,
            };
            let access = match path {
                AccessPath::FullScan => ScanAccess::Full,
                AccessPath::IndexEq { column, value } => {
                    ScanAccess::Index { column, lo: Some(value), hi: Some(value) }
                }
                AccessPath::IndexRange { column, lo, hi } => {
                    ScanAccess::Index { column, lo: lo.as_ref(), hi: hi.as_ref() }
                }
            };
            let mut pass =
                |row: &[Value]| residual.iter().zip(&residual_idx).all(|(pr, &i)| pr.eval(&row[i]));
            let (rows, scanned) = src.select(table, access, &mut pass, proj_idx.as_deref())?;
            let columns = projection.clone().unwrap_or(cols);
            let mut label = format!("Access[{table} via {}]", path.describe());
            if !residual.is_empty() {
                let preds: Vec<String> = residual.iter().map(Predicate::display).collect();
                label.push_str(&format!(" where {}", preds.join(" AND ")));
            }
            if let Some(pcols) = projection {
                label.push_str(&format!(" -> [{}]", pcols.join(", ")));
            }
            let trace = OpTrace {
                label,
                est_rows: *est_rows,
                actual_rows: rows.len(),
                scanned: Some(scanned),
                children: Vec::new(),
            };
            Ok((QueryResult { columns, rows }, trace))
        }
        PhysPlan::Filter { input, predicates } => {
            let (mut r, child) = exec_plan(src, input)?;
            let idx: Vec<usize> = predicates
                .iter()
                .map(|pr| {
                    r.column_index(pr.column())
                        .ok_or_else(|| QueryError::UnknownColumn(pr.column().to_string()))
                })
                .collect::<Result<_, _>>()?;
            r.rows.retain(|row| predicates.iter().zip(&idx).all(|(pr, &i)| pr.eval(&row[i])));
            let preds: Vec<String> = predicates.iter().map(Predicate::display).collect();
            let trace = OpTrace {
                label: format!("Filter[{}]", preds.join(" AND ")),
                est_rows: None,
                actual_rows: r.rows.len(),
                scanned: None,
                children: vec![child],
            };
            Ok((r, trace))
        }
        PhysPlan::Project { input, columns } => {
            let (r, child) = exec_plan(src, input)?;
            let idx: Vec<usize> = columns
                .iter()
                .map(|c| r.column_index(c).ok_or_else(|| QueryError::UnknownColumn(c.clone())))
                .collect::<Result<_, _>>()?;
            let rows: Vec<Row> =
                r.rows.iter().map(|row| idx.iter().map(|&i| row[i].clone()).collect()).collect();
            let trace = OpTrace {
                label: format!("Project[{}]", columns.join(", ")),
                est_rows: None,
                actual_rows: rows.len(),
                scanned: None,
                children: vec![child],
            };
            Ok((QueryResult { columns: columns.clone(), rows }, trace))
        }
        PhysPlan::HashJoin { left, right, left_col, right_col, select_build_side } => {
            let (l, ltrace) = exec_plan(src, left)?;
            let (r, rtrace) = exec_plan(src, right)?;
            let li = l
                .column_index(left_col)
                .ok_or_else(|| QueryError::UnknownColumn(left_col.clone()))?;
            let ri = r
                .column_index(right_col)
                .ok_or_else(|| QueryError::UnknownColumn(right_col.clone()))?;
            let build_left = *select_build_side && l.rows.len() < r.rows.len();
            let mut rows = Vec::new();
            if build_left {
                // Build on the (smaller) left, probe with the right —
                // but still emit left-major, right-minor order, exactly
                // like the fixed-side join below.
                let mut table: HashMap<&Value, Vec<usize>> = HashMap::new();
                for (i, lrow) in l.rows.iter().enumerate() {
                    table.entry(&lrow[li]).or_default().push(i);
                }
                let mut matches_per_left: Vec<Vec<usize>> = vec![Vec::new(); l.rows.len()];
                for (j, rrow) in r.rows.iter().enumerate() {
                    if let Some(lids) = table.get(&rrow[ri]) {
                        for &i in lids {
                            matches_per_left[i].push(j);
                        }
                    }
                }
                for (lrow, matches) in l.rows.iter().zip(&matches_per_left) {
                    for &j in matches {
                        let mut joined = lrow.clone();
                        joined.extend(r.rows[j].iter().cloned());
                        rows.push(joined);
                    }
                }
            } else {
                let mut table: HashMap<&Value, Vec<&Row>> = HashMap::new();
                for rrow in &r.rows {
                    table.entry(&rrow[ri]).or_default().push(rrow);
                }
                for lrow in &l.rows {
                    if let Some(matches) = table.get(&lrow[li]) {
                        for rrow in matches {
                            let mut joined = lrow.clone();
                            joined.extend(rrow.iter().cloned());
                            rows.push(joined);
                        }
                    }
                }
            }
            let mut columns = l.columns.clone();
            // Disambiguate collision by prefixing the right side.
            for c in &r.columns {
                if l.columns.contains(c) {
                    columns.push(format!("right.{c}"));
                } else {
                    columns.push(c.clone());
                }
            }
            let trace = OpTrace {
                label: format!(
                    "HashJoin[{left_col} = {right_col}, build={}]",
                    if build_left { "left" } else { "right" }
                ),
                est_rows: None,
                actual_rows: rows.len(),
                scanned: None,
                children: vec![ltrace, rtrace],
            };
            Ok((QueryResult { columns, rows }, trace))
        }
        PhysPlan::Aggregate { input, group_by, agg, over } => {
            let (r, child) = exec_plan(src, input)?;
            let oi = r.column_index(over).ok_or_else(|| QueryError::UnknownColumn(over.clone()))?;
            let gi = match group_by {
                Some(g) => {
                    Some(r.column_index(g).ok_or_else(|| QueryError::UnknownColumn(g.clone()))?)
                }
                None => None,
            };
            // Group rows (BTreeMap gives deterministic output order).
            let mut groups: std::collections::BTreeMap<Value, Vec<&Value>> =
                std::collections::BTreeMap::new();
            for row in &r.rows {
                let key = gi.map(|i| row[i].clone()).unwrap_or(Value::Null);
                groups.entry(key).or_default().push(&row[oi]);
            }
            if groups.is_empty() && gi.is_none() {
                groups.insert(Value::Null, Vec::new());
            }
            let mut rows = Vec::new();
            for (key, vals) in groups {
                let agg_val = compute_agg(*agg, &vals, over)?;
                match gi {
                    Some(_) => rows.push(vec![key, agg_val]),
                    None => rows.push(vec![agg_val]),
                }
            }
            let out_col = format!("{}({over})", agg.name());
            let columns = match group_by {
                Some(g) => vec![g.clone(), out_col],
                None => vec![out_col],
            };
            let g = group_by.as_ref().map(|g| format!(" group by {g}")).unwrap_or_default();
            let trace = OpTrace {
                label: format!("Aggregate[{}({over}){g}]", agg.name()),
                est_rows: None,
                actual_rows: rows.len(),
                scanned: None,
                children: vec![child],
            };
            Ok((QueryResult { columns, rows }, trace))
        }
        PhysPlan::Sort { input, by, desc, limit } => {
            let (mut r, child) = exec_plan(src, input)?;
            let i = r.column_index(by).ok_or_else(|| QueryError::UnknownColumn(by.clone()))?;
            // Stable sort: equal keys keep input order.
            r.rows.sort_by(|a, b| {
                let ord = a[i].cmp(&b[i]);
                if *desc {
                    ord.reverse()
                } else {
                    ord
                }
            });
            if let Some(l) = limit {
                r.rows.truncate(*l);
            }
            let dir = if *desc { " desc" } else { "" };
            let lim = limit.map(|l| format!(" limit {l}")).unwrap_or_default();
            let trace = OpTrace {
                label: format!("Sort[{by}{dir}{lim}]"),
                est_rows: None,
                actual_rows: r.rows.len(),
                scanned: None,
                children: vec![child],
            };
            Ok((r, trace))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{execute, AggFn};
    use quarry_storage::{Column, DataType, TableSchema};

    fn db_with_index() -> Database {
        let db = Database::in_memory();
        db.create_table(
            TableSchema::new(
                "facts",
                vec![
                    Column::new("id", DataType::Int),
                    Column::new("cat", DataType::Text),
                    Column::new("num", DataType::Int),
                ],
                &["id"],
                &[],
            )
            .unwrap(),
        )
        .unwrap();
        let tx = db.begin();
        for i in 0..100i64 {
            db.insert(
                tx,
                "facts",
                vec![Value::Int(i), Value::Text(format!("c{}", i % 10)), Value::Int(i * 3 % 17)],
            )
            .unwrap();
        }
        db.commit(tx).unwrap();
        db.create_index("facts", "cat").unwrap();
        db
    }

    #[test]
    fn eq_predicate_routes_through_index() {
        let db = db_with_index();
        let q = Query::scan("facts").filter(vec![Predicate::Eq("cat".into(), "c3".into())]);
        let p = plan(&db, &q, &PlannerConfig::default());
        match &p {
            PhysPlan::Access { path: AccessPath::IndexEq { column, .. }, residual, .. } => {
                assert_eq!(column, "cat");
                assert_eq!(residual.len(), 1, "residual keeps the full conjunction");
            }
            other => panic!("expected index-eq access, got {other:?}"),
        }
        let (r, trace) = execute_with(&db, &q, &PlannerConfig::default()).unwrap();
        assert_eq!(r.rows.len(), 10);
        assert_eq!(trace.total_scanned(), 10, "index pre-filter, not a 100-row scan");
        assert_eq!(trace.est_rows, Some(10), "uniform estimate: 100 entries / 10 distinct");
    }

    #[test]
    fn range_predicate_routes_through_index_with_strict_bound_in_residual() {
        let db = db_with_index();
        db.create_index("facts", "num").unwrap();
        let q = Query::scan("facts").filter(vec![
            Predicate::Gt("num".into(), Value::Int(5)),
            Predicate::Le("num".into(), Value::Int(9)),
        ]);
        let p = plan(&db, &q, &PlannerConfig::default());
        match &p {
            PhysPlan::Access { path: AccessPath::IndexRange { column, lo, hi }, .. } => {
                assert_eq!(column, "num");
                assert_eq!(lo.as_ref(), Some(&Value::Int(5)), "strict Gt keeps inclusive bound");
                assert_eq!(hi.as_ref(), Some(&Value::Int(9)));
            }
            other => panic!("expected index-range access, got {other:?}"),
        }
        let (routed, _) = execute_with(&db, &q, &PlannerConfig::default()).unwrap();
        let (full, _) = execute_with(&db, &q, &PlannerConfig::full_scan()).unwrap();
        assert_eq!(routed, full, "strict bound must be enforced by the residual");
        assert!(routed.rows.iter().all(|r| {
            let n = r[2].as_f64().unwrap() as i64;
            n > 5 && n <= 9
        }));
    }

    #[test]
    fn projection_and_predicates_push_into_access() {
        let db = db_with_index();
        let q = Query::scan("facts")
            .filter(vec![Predicate::Eq("cat".into(), "c1".into())])
            .project(&["id"]);
        match plan(&db, &q, &PlannerConfig::default()) {
            PhysPlan::Access { projection, residual, .. } => {
                assert_eq!(projection, Some(vec!["id".to_string()]));
                assert_eq!(residual.len(), 1);
            }
            other => panic!("expected a single fused access, got {other:?}"),
        }
    }

    #[test]
    fn filter_above_projection_is_not_pushed_into_access() {
        let db = db_with_index();
        // `cat` is projected away, so the outer filter must still error —
        // now as a pre-execution diagnostic rather than a runtime
        // `UnknownColumn` from inside the operator.
        let q = Query::scan("facts")
            .project(&["id"])
            .filter(vec![Predicate::Eq("cat".into(), "c1".into())]);
        match execute(&db, &q) {
            Err(QueryError::Invalid(report)) => {
                assert_eq!(report.error_count(), 1);
                assert_eq!(report.diagnostics[0].code, crate::lint::codes::UNKNOWN_COLUMN);
            }
            other => panic!("expected Invalid, got {other:?}"),
        }
    }

    #[test]
    fn full_scan_config_is_pre_planner_shape() {
        let db = db_with_index();
        let q = Query::scan("facts").filter(vec![Predicate::Eq("cat".into(), "c3".into())]);
        let p = plan(&db, &q, &PlannerConfig::full_scan());
        match &p {
            PhysPlan::Filter { input, .. } => match input.as_ref() {
                PhysPlan::Access { path: AccessPath::FullScan, residual, projection, .. } => {
                    assert!(residual.is_empty());
                    assert!(projection.is_none());
                }
                other => panic!("expected bare full-scan access, got {other:?}"),
            },
            other => panic!("expected filter over access, got {other:?}"),
        }
        let (r, trace) = execute_with(&db, &q, &PlannerConfig::full_scan()).unwrap();
        assert_eq!(r.rows.len(), 10);
        assert_eq!(trace.total_scanned(), 100, "reference path scans everything");
    }

    #[test]
    fn join_builds_on_smaller_side_with_identical_output() {
        let db = db_with_index();
        let small = Query::scan("facts").filter(vec![Predicate::Eq("cat".into(), "c2".into())]);
        let q_small_left = small.clone().join(Query::scan("facts"), "cat", "cat");
        let q_small_right = Query::scan("facts").join(small, "cat", "cat");
        for q in [&q_small_left, &q_small_right] {
            let (selected, trace) = execute_with(&db, q, &PlannerConfig::default()).unwrap();
            let (fixed, _) = execute_with(&db, q, &PlannerConfig::full_scan()).unwrap();
            assert_eq!(selected, fixed, "build-side swap must not change output");
            assert!(trace.label.starts_with("HashJoin["));
        }
        let (_, trace) = execute_with(&db, &q_small_left, &PlannerConfig::default()).unwrap();
        assert!(trace.label.contains("build=left"), "smaller left side: {}", trace.label);
        let (_, trace) = execute_with(&db, &q_small_right, &PlannerConfig::default()).unwrap();
        assert!(trace.label.contains("build=right"), "smaller right side: {}", trace.label);
    }

    #[test]
    fn trace_reports_estimated_and_actual_rows_per_operator() {
        let db = db_with_index();
        let q = Query::scan("facts")
            .filter(vec![Predicate::Eq("cat".into(), "c7".into())])
            .aggregate(None, AggFn::Count, "num");
        let (r, trace) = execute_with(&db, &q, &PlannerConfig::default()).unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(10)));
        assert_eq!(trace.actual_rows, 1);
        let access = &trace.children[0];
        assert_eq!(access.est_rows, Some(10));
        assert_eq!(access.actual_rows, 10);
        assert_eq!(access.scanned, Some(10));
        let text = trace.render();
        assert!(text.contains("Aggregate[COUNT(num)]"), "{text}");
        assert!(text.contains("index eq(cat = c7)"), "{text}");
        assert!(text.contains("est=10"), "{text}");
    }

    #[test]
    fn unindexed_and_unindexable_predicates_stay_on_full_scan() {
        let db = db_with_index();
        // `num` has no index here; Contains can never use one.
        for preds in [
            vec![Predicate::Ge("num".into(), Value::Int(3))],
            vec![Predicate::Contains("cat".into(), "c".into())],
            vec![Predicate::Ne("cat".into(), "c1".into())],
            vec![Predicate::In("cat".into(), vec!["c1".into(), "c2".into()])],
        ] {
            let q = Query::scan("facts").filter(preds);
            match plan(&db, &q, &PlannerConfig::default()) {
                PhysPlan::Access { path: AccessPath::FullScan, .. } => {}
                other => panic!("expected full scan, got {other:?}"),
            }
        }
    }

    #[test]
    fn eq_beats_range_and_lowest_estimate_wins() {
        let db = db_with_index();
        db.create_index("facts", "num").unwrap();
        // `id` is unique-ish via primary key but unindexed as a secondary;
        // cat (10 distinct) vs num (17 distinct): num estimates fewer rows
        // per value, so the planner probes num.
        let q = Query::scan("facts").filter(vec![
            Predicate::Eq("cat".into(), "c1".into()),
            Predicate::Eq("num".into(), Value::Int(4)),
            Predicate::Ge("id".into(), Value::Int(0)),
        ]);
        match plan(&db, &q, &PlannerConfig::default()) {
            PhysPlan::Access { path: AccessPath::IndexEq { column, .. }, residual, .. } => {
                assert_eq!(column, "num");
                assert_eq!(residual.len(), 3, "every predicate re-checked");
            }
            other => panic!("expected eq probe, got {other:?}"),
        }
    }

    #[test]
    fn snapshot_execution_is_bit_identical_to_live_execution() {
        let db = db_with_index();
        db.create_index("facts", "num").unwrap();
        let snap = db.snapshot();
        let queries = vec![
            Query::scan("facts"),
            Query::scan("facts").filter(vec![Predicate::Eq("cat".into(), "c1".into())]),
            Query::scan("facts")
                .filter(vec![
                    Predicate::Ge("num".into(), Value::Int(3)),
                    Predicate::Lt("num".into(), Value::Int(9)),
                ])
                .project(&["id", "cat"]),
            Query::scan("facts").aggregate(Some("cat"), AggFn::Count, "id"),
            Query::scan("facts").join(Query::scan("facts"), "cat", "cat").sort("id", true, Some(7)),
        ];
        for (cfg_name, cfg) in
            [("default", PlannerConfig::default()), ("full_scan", PlannerConfig::full_scan())]
        {
            for q in &queries {
                let (live, live_trace) = execute_with(&db, q, &cfg).unwrap();
                let (snap_r, snap_trace) = execute_snapshot_with(&snap, q, &cfg).unwrap();
                assert_eq!(live, snap_r, "{cfg_name}: {}", q.display());
                // Same plan shape, same rows-scanned accounting.
                assert_eq!(live_trace.render(), snap_trace.render(), "{}", q.display());
            }
        }
        // Error kinds line up on both paths.
        let ghost = Query::scan("ghost");
        assert!(matches!(
            execute_snapshot_with(&snap, &ghost, &PlannerConfig::default()),
            Err(QueryError::Storage(_))
        ));
        let bad_col = Query::scan("facts").filter(vec![Predicate::Eq("nope".into(), Value::Null)]);
        assert!(matches!(
            execute_snapshot_with(&snap, &bad_col, &PlannerConfig::default()),
            Err(QueryError::Invalid(_))
        ));
        // The snapshot stays pinned: a post-snapshot write is invisible.
        let tx = db.begin();
        db.insert(tx, "facts", vec![Value::Int(999), "c1".into(), Value::Int(1)]).unwrap();
        db.commit(tx).unwrap();
        let count = Query::scan("facts").aggregate(None, AggFn::Count, "id");
        let live = execute(&db, &count).unwrap();
        let pinned = crate::engine::execute_snapshot(&snap, &count).unwrap();
        assert_eq!(pinned.scalar(), Some(&Value::Int(100)));
        assert_eq!(live.scalar(), Some(&Value::Int(101)));
    }
}
