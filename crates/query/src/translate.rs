//! Keyword → structured-query translation.
//!
//! §3.2: an ordinary user "would just want to start with a keyword query,
//! such as 'average temperature Madison'. In this case it would be highly
//! desirable for the system to guide the user ... One way to do so is to
//! 'guess' and show the user several structured queries". This module is
//! the guesser: it maps keywords onto tables, columns, and known values,
//! assembles candidate query trees, and ranks them by how much of the
//! keyword query they explain.

use crate::engine::{AggFn, Predicate, Query};
use quarry_storage::{DataType, Database, Value};
use std::collections::{BTreeMap, HashMap};

/// One ranked translation candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateQuery {
    /// The structured query.
    pub query: Query,
    /// Ranking score (higher = better).
    pub score: f64,
    /// Which keywords each part consumed (explanation for the user).
    pub explanation: String,
}

#[derive(Debug, Clone)]
struct TableInfo {
    name: String,
    /// (column, type) pairs.
    columns: Vec<(String, DataType)>,
}

/// The translator: a catalog snapshot plus a value index.
#[derive(Debug, Clone, Default)]
pub struct Translator {
    tables: Vec<TableInfo>,
    /// lowercased text value → (table, column) witnesses.
    values: HashMap<String, Vec<(String, String)>>,
    /// column-name synonyms: keyword → canonical fragment.
    synonyms: BTreeMap<String, String>,
}

impl Translator {
    /// Build from a live database: catalog plus a text-value index.
    pub fn from_database(db: &Database) -> Translator {
        let mut t = Translator { synonyms: default_synonyms(), ..Default::default() };
        for table in db.table_names() {
            let Ok(schema) = db.schema(&table) else { continue };
            let columns: Vec<(String, DataType)> =
                schema.columns.iter().map(|c| (c.name.clone(), c.dtype)).collect();
            if let Ok(rows) = db.scan_autocommit(&table) {
                for row in &rows {
                    for (j, v) in row.iter().enumerate() {
                        if let Some(text) = v.as_text() {
                            t.values
                                .entry(text.to_lowercase())
                                .or_default()
                                .push((table.clone(), columns[j].0.clone()));
                        }
                    }
                }
            }
            t.tables.push(TableInfo { name: table, columns });
        }
        for v in t.values.values_mut() {
            v.sort();
            v.dedup();
        }
        t
    }

    /// Build from an immutable [`DbSnapshot`] — identical vocabulary to
    /// [`Translator::from_database`] at the snapshot's LSN (same sorted
    /// table iteration, same row-id scan order), but lock-free: snapshot
    /// readers can (re)build translators without touching the live engine.
    pub fn from_snapshot(snap: &quarry_storage::DbSnapshot) -> Translator {
        let mut t = Translator { synonyms: default_synonyms(), ..Default::default() };
        for table in snap.table_names() {
            let Ok(schema) = snap.schema(&table) else { continue };
            let columns: Vec<(String, DataType)> =
                schema.columns.iter().map(|c| (c.name.clone(), c.dtype)).collect();
            if let Ok(rows) = snap.scan(&table) {
                for row in &rows {
                    for (j, v) in row.iter().enumerate() {
                        if let Some(text) = v.as_text() {
                            t.values
                                .entry(text.to_lowercase())
                                .or_default()
                                .push((table.clone(), columns[j].0.clone()));
                        }
                    }
                }
            }
            t.tables.push(TableInfo { name: table, columns });
        }
        for v in t.values.values_mut() {
            v.sort();
            v.dedup();
        }
        t
    }

    /// Translate a keyword query into ranked candidates (at most `k`).
    pub fn translate(&self, keywords: &str, k: usize) -> Vec<CandidateQuery> {
        let tokens: Vec<String> = keywords
            .split(|c: char| !c.is_alphanumeric() && c != '_')
            .filter(|t| !t.is_empty())
            .map(str::to_lowercase)
            .collect();
        if tokens.is_empty() {
            return Vec::new();
        }
        let n_tokens = tokens.len() as f64;

        // 1. Aggregate intent.
        let agg = tokens.iter().find_map(|t| agg_intent(t));

        // 2. Value matches: longest phrases first (up to trigrams).
        let mut value_preds: Vec<(String, String, Value, usize)> = Vec::new(); // (table, col, value, tokens consumed)
        let mut consumed = vec![false; tokens.len()];
        for len in (1..=3usize.min(tokens.len())).rev() {
            for start in 0..=tokens.len() - len {
                if consumed[start..start + len].iter().any(|&c| c) {
                    continue;
                }
                let phrase = tokens[start..start + len].join(" ");
                if let Some(hits) = self.values.get(&phrase) {
                    for (table, col) in hits {
                        value_preds.push((
                            table.clone(),
                            col.clone(),
                            Value::Text(original_case(&phrase, hits)),
                            len,
                        ));
                    }
                    consumed[start..start + len].iter_mut().for_each(|c| *c = true);
                }
            }
        }

        // 3. Column matches among unconsumed tokens.
        let mut column_hits: Vec<(String, String, DataType)> = Vec::new(); // (table, col, type)
        for (i, tok) in tokens.iter().enumerate() {
            if consumed[i] {
                continue;
            }
            let tok_canon = self.synonyms.get(tok).cloned().unwrap_or_else(|| tok.clone());
            for table in &self.tables {
                for (col, ty) in &table.columns {
                    if column_matches(col, &tok_canon) {
                        column_hits.push((table.name.clone(), col.clone(), *ty));
                    }
                }
            }
        }

        // 4. Assemble candidates per table.
        let mut out: Vec<CandidateQuery> = Vec::new();
        for table in &self.tables {
            let preds: Vec<Predicate> = group_value_preds(&value_preds, &table.name);
            let cols_here: Vec<&(String, String, DataType)> =
                column_hits.iter().filter(|(t, _, _)| t == &table.name).collect();
            let matched_tokens = preds.len() as f64 + cols_here.len() as f64;
            if matched_tokens == 0.0 {
                continue;
            }
            let base = Query::scan(&table.name);
            let filtered =
                if preds.is_empty() { base.clone() } else { base.clone().filter(preds.clone()) };

            if let Some(agg) = agg {
                // Aggregate over each matched numeric column.
                for (_, col, ty) in &cols_here {
                    if matches!(ty, DataType::Int | DataType::Float) {
                        let q = filtered.clone().aggregate(None, agg, col);
                        out.push(CandidateQuery {
                            explanation: format!(
                                "{} of {col} in {}{}",
                                agg.name(),
                                table.name,
                                if preds.is_empty() { String::new() } else { " (filtered)".into() }
                            ),
                            score: (matched_tokens + 1.0) / (n_tokens + 1.0),
                            query: q,
                        });
                    }
                }
            }
            // Lookup candidate: project matched columns (or everything).
            let q = if cols_here.is_empty() {
                filtered.clone()
            } else {
                let names: Vec<&str> = cols_here.iter().map(|(_, c, _)| c.as_str()).collect();
                filtered.clone().project(&names)
            };
            out.push(CandidateQuery {
                explanation: format!("lookup in {}", table.name),
                score: matched_tokens / (n_tokens + 1.0),
                query: q,
            });
        }
        out.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.explanation.cmp(&b.explanation))
        });
        out.dedup_by(|a, b| a.query == b.query);
        out.truncate(k);
        out
    }
}

/// Collapse same-column value predicates into `IN`, keep others as `Eq`.
fn group_value_preds(
    value_preds: &[(String, String, Value, usize)],
    table: &str,
) -> Vec<Predicate> {
    let mut by_col: BTreeMap<&str, Vec<Value>> = BTreeMap::new();
    for (t, col, v, _) in value_preds {
        if t == table {
            by_col.entry(col).or_default().push(v.clone());
        }
    }
    by_col
        .into_iter()
        .map(|(col, mut vs)| {
            vs.sort();
            vs.dedup();
            if let [only] = vs.as_slice() {
                Predicate::Eq(col.to_string(), only.clone())
            } else {
                Predicate::In(col.to_string(), vs)
            }
        })
        .collect()
}

fn agg_intent(tok: &str) -> Option<AggFn> {
    match tok {
        "average" | "avg" | "mean" => Some(AggFn::Avg),
        "total" | "sum" => Some(AggFn::Sum),
        "count" | "many" => Some(AggFn::Count),
        "highest" | "max" | "maximum" | "warmest" | "largest" | "biggest" => Some(AggFn::Max),
        "lowest" | "min" | "minimum" | "coldest" | "smallest" => Some(AggFn::Min),
        _ => None,
    }
}

fn column_matches(col: &str, tok: &str) -> bool {
    if tok.len() < 3 {
        return false;
    }
    let col = col.to_lowercase();
    col == tok || col.contains(tok) || (tok.contains(&col) && col.len() >= 3)
}

/// Recover the stored casing of a matched value (the value index is
/// lowercased; predicates must compare against stored text). The simple
/// rule: title-case each word — matching how the corpus stores names.
fn original_case(phrase: &str, _hits: &[(String, String)]) -> String {
    phrase
        .split(' ')
        .map(|w| {
            let mut cs = w.chars();
            match cs.next() {
                Some(f) => f.to_uppercase().chain(cs).collect::<String>(),
                None => String::new(),
            }
        })
        .collect::<Vec<_>>()
        .join(" ")
}

fn default_synonyms() -> BTreeMap<String, String> {
    [
        ("temperature", "temp"),
        ("temperatures", "temp"),
        ("people", "population"),
        ("inhabitants", "population"),
        ("residents", "population"),
        ("founded", "founded"),
        ("established", "founded"),
        ("works", "employer"),
        ("employed", "employer"),
        ("company", "employer"),
        ("lives", "residence"),
        ("area", "area"),
    ]
    .into_iter()
    .map(|(a, b)| (a.to_string(), b.to_string()))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::execute;
    use quarry_storage::{Column, TableSchema};

    fn db() -> Database {
        let db = Database::in_memory();
        db.create_table(
            TableSchema::new(
                "cities",
                vec![
                    Column::new("name", DataType::Text),
                    Column::new("state", DataType::Text),
                    Column::new("population", DataType::Int),
                ],
                &["name"],
                &[],
            )
            .unwrap(),
        )
        .unwrap();
        db.create_table(
            TableSchema::new(
                "temps",
                vec![
                    Column::new("city", DataType::Text),
                    Column::new("month", DataType::Text),
                    Column::new("temp", DataType::Int),
                ],
                &["city", "month"],
                &[],
            )
            .unwrap(),
        )
        .unwrap();
        for (n, s, p) in [("Madison", "Wisconsin", 250_000i64), ("Oakton", "Iowa", 9_500)] {
            db.insert_autocommit("cities", vec![n.into(), s.into(), Value::Int(p)]).unwrap();
        }
        for (m, t) in [("January", 20i64), ("July", 72), ("September", 62)] {
            db.insert_autocommit("temps", vec!["Madison".into(), m.into(), Value::Int(t)]).unwrap();
        }
        db
    }

    #[test]
    fn paper_keyword_query_translates_to_aggregate() {
        let db = db();
        let tr = Translator::from_database(&db);
        let cands = tr.translate("average temperature Madison", 5);
        assert!(!cands.is_empty());
        let top = &cands[0];
        // Top candidate: AVG(temp) over temps filtered city = Madison.
        let r = execute(&db, &top.query).unwrap();
        let avg = r.scalar().and_then(Value::as_f64).expect("scalar avg");
        assert!((avg - (20.0 + 72.0 + 62.0) / 3.0).abs() < 1e-9, "{avg}");
        assert!(top.explanation.contains("AVG"));
    }

    #[test]
    fn lookup_query_by_value() {
        let db = db();
        let tr = Translator::from_database(&db);
        let cands = tr.translate("population Madison", 5);
        let top = &cands[0];
        let r = execute(&db, &top.query).unwrap();
        assert_eq!(r.rows.len(), 1);
        assert!(r.rows[0].contains(&Value::Int(250_000)));
    }

    #[test]
    fn multiple_values_become_in_predicate() {
        let db = db();
        let tr = Translator::from_database(&db);
        let cands = tr.translate("temperature January July Madison", 5);
        let top = &cands[0];
        let rendered = top.query.display();
        assert!(rendered.contains("IN"), "{rendered}");
        let r = execute(&db, &top.query).unwrap();
        assert_eq!(r.rows.len(), 2, "{rendered}");
    }

    #[test]
    fn max_intent() {
        let db = db();
        let tr = Translator::from_database(&db);
        let cands = tr.translate("warmest temperature Madison", 5);
        let r = execute(&db, &cands[0].query).unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(72)));
    }

    #[test]
    fn unknown_keywords_produce_no_candidates() {
        let db = db();
        let tr = Translator::from_database(&db);
        assert!(tr.translate("qwerty zxcvb", 5).is_empty());
        assert!(tr.translate("", 5).is_empty());
    }

    #[test]
    fn candidates_are_ranked_and_bounded() {
        let db = db();
        let tr = Translator::from_database(&db);
        let cands = tr.translate("average population Wisconsin", 3);
        assert!(cands.len() <= 3);
        for w in cands.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }
}
