//! Query forms: rendering candidate queries as fillable forms.
//!
//! §3.3's principle: "users are much better at recognizing when a query
//! form matches their information need than at writing the equivalent SQL
//! query from scratch". A form is a candidate query with its constants
//! turned into labeled, editable fields.

use crate::engine::{Predicate, Query};
use quarry_storage::Value;
use serde::{Deserialize, Serialize};

/// One editable field of a form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FormField {
    /// Field label (the constrained column).
    pub label: String,
    /// Pre-filled value from the candidate query.
    pub prefill: String,
    /// The comparison the field feeds ("=", "<=", "IN", ...).
    pub operator: String,
}

/// A rendered query form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryForm {
    /// One-line title describing what the form computes.
    pub title: String,
    /// Editable fields.
    pub fields: Vec<FormField>,
}

/// Render a query as a form: walk the tree, emit a field per predicate
/// constant, and title it with the query's display string.
pub fn render(q: &Query) -> QueryForm {
    let mut fields = Vec::new();
    collect_fields(q, &mut fields);
    QueryForm { title: q.display(), fields }
}

fn collect_fields(q: &Query, out: &mut Vec<FormField>) {
    match q {
        Query::Scan { .. } => {}
        Query::Filter { input, predicates } => {
            collect_fields(input, out);
            for p in predicates {
                out.push(field_of(p));
            }
        }
        Query::Project { input, .. } | Query::Sort { input, .. } => collect_fields(input, out),
        Query::Join { left, right, .. } => {
            collect_fields(left, out);
            collect_fields(right, out);
        }
        Query::Aggregate { input, .. } => collect_fields(input, out),
    }
}

fn field_of(p: &Predicate) -> FormField {
    let (op, prefill) = match p {
        Predicate::Eq(_, v) => ("=", v.to_string()),
        Predicate::Ne(_, v) => ("!=", v.to_string()),
        Predicate::Lt(_, v) => ("<", v.to_string()),
        Predicate::Le(_, v) => ("<=", v.to_string()),
        Predicate::Gt(_, v) => (">", v.to_string()),
        Predicate::Ge(_, v) => (">=", v.to_string()),
        Predicate::Contains(_, s) => ("CONTAINS", s.clone()),
        Predicate::In(_, vs) => {
            ("IN", vs.iter().map(Value::to_string).collect::<Vec<_>>().join(", "))
        }
    };
    FormField { label: p.column().to_string(), prefill, operator: op.to_string() }
}

/// Replace a form field's value in a query, producing the edited query —
/// the "user fills in the form" action. The `field_index`-th predicate
/// constant (in form order) is replaced by `new_value` (for `Eq`-style
/// predicates only; others keep their operator).
pub fn fill(q: &Query, field_index: usize, new_value: Value) -> Query {
    let mut counter = 0usize;
    rewrite(q, field_index, &new_value, &mut counter)
}

fn rewrite(q: &Query, target: usize, new_value: &Value, counter: &mut usize) -> Query {
    match q {
        Query::Scan { .. } => q.clone(),
        Query::Filter { input, predicates } => {
            let input = Box::new(rewrite(input, target, new_value, counter));
            let predicates = predicates
                .iter()
                .map(|p| {
                    let i = *counter;
                    *counter += 1;
                    if i == target {
                        replace_constant(p, new_value.clone())
                    } else {
                        p.clone()
                    }
                })
                .collect();
            Query::Filter { input, predicates }
        }
        Query::Project { input, columns } => Query::Project {
            input: Box::new(rewrite(input, target, new_value, counter)),
            columns: columns.clone(),
        },
        Query::Join { left, right, left_col, right_col } => Query::Join {
            left: Box::new(rewrite(left, target, new_value, counter)),
            right: Box::new(rewrite(right, target, new_value, counter)),
            left_col: left_col.clone(),
            right_col: right_col.clone(),
        },
        Query::Aggregate { input, group_by, agg, over } => Query::Aggregate {
            input: Box::new(rewrite(input, target, new_value, counter)),
            group_by: group_by.clone(),
            agg: *agg,
            over: over.clone(),
        },
        Query::Sort { input, by, desc, limit } => Query::Sort {
            input: Box::new(rewrite(input, target, new_value, counter)),
            by: by.clone(),
            desc: *desc,
            limit: *limit,
        },
    }
}

fn replace_constant(p: &Predicate, v: Value) -> Predicate {
    match p {
        Predicate::Eq(c, _) => Predicate::Eq(c.clone(), v),
        Predicate::Ne(c, _) => Predicate::Ne(c.clone(), v),
        Predicate::Lt(c, _) => Predicate::Lt(c.clone(), v),
        Predicate::Le(c, _) => Predicate::Le(c.clone(), v),
        Predicate::Gt(c, _) => Predicate::Gt(c.clone(), v),
        Predicate::Ge(c, _) => Predicate::Ge(c.clone(), v),
        Predicate::Contains(c, _) => Predicate::Contains(c.clone(), v.to_string()),
        Predicate::In(c, _) => Predicate::In(c.clone(), vec![v]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::AggFn;

    fn sample() -> Query {
        Query::scan("temps")
            .filter(vec![
                Predicate::Eq("city".into(), "Madison".into()),
                Predicate::Ge("month".into(), Value::Int(3)),
            ])
            .aggregate(None, AggFn::Avg, "temp")
    }

    #[test]
    fn render_exposes_constants_as_fields() {
        let form = render(&sample());
        assert_eq!(form.fields.len(), 2);
        assert_eq!(form.fields[0].label, "city");
        assert_eq!(form.fields[0].prefill, "Madison");
        assert_eq!(form.fields[0].operator, "=");
        assert_eq!(form.fields[1].operator, ">=");
        assert!(form.title.contains("AVG(temp)"));
    }

    #[test]
    fn fill_edits_the_right_field() {
        let q = sample();
        let edited = fill(&q, 0, "Oakton".into());
        let form = render(&edited);
        assert_eq!(form.fields[0].prefill, "Oakton");
        assert_eq!(form.fields[1].prefill, "3", "other fields untouched");
        // Structure preserved.
        assert!(matches!(edited, Query::Aggregate { .. }));
    }

    #[test]
    fn fill_second_field() {
        let edited = fill(&sample(), 1, Value::Int(6));
        let form = render(&edited);
        assert_eq!(form.fields[1].prefill, "6");
        assert_eq!(form.fields[0].prefill, "Madison");
    }

    #[test]
    fn out_of_range_index_is_noop() {
        let q = sample();
        assert_eq!(fill(&q, 99, Value::Int(0)), q);
    }

    #[test]
    fn scan_has_no_fields() {
        let form = render(&Query::scan("cities"));
        assert!(form.fields.is_empty());
        assert_eq!(form.title, "SELECT * FROM cities");
    }

    #[test]
    fn join_forms_collect_both_sides() {
        let q = Query::scan("a").filter(vec![Predicate::Eq("x".into(), Value::Int(1))]).join(
            Query::scan("b").filter(vec![Predicate::Eq("y".into(), Value::Int(2))]),
            "x",
            "y",
        );
        let form = render(&q);
        assert_eq!(form.fields.len(), 2);
    }
}
