//! Read-source abstraction: one planner, two execution substrates.
//!
//! The planner, linter, and executor only need a handful of read
//! operations — schema lookup, cardinality estimates, and filtered
//! scans. [`Catalog`] captures the metadata half and [`Source`] adds row
//! access, so the same code path runs against either:
//!
//! - the live [`Database`] under a read transaction ([`LiveTx`] — strict
//!   2PL, used by the transactional [`crate::planner::execute_with`]); or
//! - an immutable [`DbSnapshot`] pinned to one write-clock LSN (lock-free
//!   MVCC reads, used by [`crate::planner::execute_snapshot_with`]).
//!
//! Both substrates expose identical semantics — same row order, same
//! `(rows, scanned)` accounting, same error kinds — which the
//! serve-layer differential suite verifies bit-for-bit.

use quarry_storage::{Database, DbSnapshot, IndexStats, Row, ScanAccess, TxId, Value};

/// Schema and statistics metadata the planner and linter read.
///
/// Implemented by the live [`Database`] (locking reads of the catalog)
/// and by [`DbSnapshot`] (lock-free reads of the captured views).
pub trait Catalog {
    /// The schema of a table.
    fn schema(&self, table: &str) -> quarry_storage::Result<quarry_storage::TableSchema>;
    /// Names of all tables, sorted.
    fn table_names(&self) -> Vec<String>;
    /// Number of rows in a table.
    fn row_count(&self, table: &str) -> quarry_storage::Result<usize>;
    /// Names of the indexed columns of a table, sorted.
    fn indexed_columns(&self, table: &str) -> quarry_storage::Result<Vec<String>>;
    /// Cardinality statistics of one secondary index.
    fn index_stats(&self, table: &str, column: &str) -> quarry_storage::Result<Option<IndexStats>>;
}

/// A [`Catalog`] that can also produce rows: the executor's substrate.
pub trait Source: Catalog {
    /// Filtered, projected read of one table (mirrors `Database::select`).
    fn select(
        &self,
        table: &str,
        access: ScanAccess<'_>,
        filter: &mut dyn FnMut(&[Value]) -> bool,
        projection: Option<&[usize]>,
    ) -> quarry_storage::Result<(Vec<Row>, usize)>;
}

impl Catalog for Database {
    fn schema(&self, table: &str) -> quarry_storage::Result<quarry_storage::TableSchema> {
        Database::schema(self, table)
    }
    fn table_names(&self) -> Vec<String> {
        Database::table_names(self)
    }
    fn row_count(&self, table: &str) -> quarry_storage::Result<usize> {
        Database::row_count(self, table)
    }
    fn indexed_columns(&self, table: &str) -> quarry_storage::Result<Vec<String>> {
        Database::indexed_columns(self, table)
    }
    fn index_stats(&self, table: &str, column: &str) -> quarry_storage::Result<Option<IndexStats>> {
        Database::index_stats(self, table, column)
    }
}

impl Catalog for DbSnapshot {
    fn schema(&self, table: &str) -> quarry_storage::Result<quarry_storage::TableSchema> {
        DbSnapshot::schema(self, table)
    }
    fn table_names(&self) -> Vec<String> {
        DbSnapshot::table_names(self)
    }
    fn row_count(&self, table: &str) -> quarry_storage::Result<usize> {
        DbSnapshot::row_count(self, table)
    }
    fn indexed_columns(&self, table: &str) -> quarry_storage::Result<Vec<String>> {
        DbSnapshot::indexed_columns(self, table)
    }
    fn index_stats(&self, table: &str, column: &str) -> quarry_storage::Result<Option<IndexStats>> {
        DbSnapshot::index_stats(self, table, column)
    }
}

impl Source for DbSnapshot {
    fn select(
        &self,
        table: &str,
        access: ScanAccess<'_>,
        filter: &mut dyn FnMut(&[Value]) -> bool,
        projection: Option<&[usize]>,
    ) -> quarry_storage::Result<(Vec<Row>, usize)> {
        DbSnapshot::select(self, table, access, filter, projection)
    }
}

/// The live database viewed through one open read transaction — the
/// strict-2PL substrate behind [`crate::planner::execute_with`].
pub(crate) struct LiveTx<'a> {
    pub(crate) db: &'a Database,
    pub(crate) tx: TxId,
}

impl Catalog for LiveTx<'_> {
    fn schema(&self, table: &str) -> quarry_storage::Result<quarry_storage::TableSchema> {
        self.db.schema(table)
    }
    fn table_names(&self) -> Vec<String> {
        self.db.table_names()
    }
    fn row_count(&self, table: &str) -> quarry_storage::Result<usize> {
        self.db.row_count(table)
    }
    fn indexed_columns(&self, table: &str) -> quarry_storage::Result<Vec<String>> {
        self.db.indexed_columns(table)
    }
    fn index_stats(&self, table: &str, column: &str) -> quarry_storage::Result<Option<IndexStats>> {
        self.db.index_stats(table, column)
    }
}

impl Source for LiveTx<'_> {
    fn select(
        &self,
        table: &str,
        access: ScanAccess<'_>,
        filter: &mut dyn FnMut(&[Value]) -> bool,
        projection: Option<&[usize]>,
    ) -> quarry_storage::Result<(Vec<Row>, usize)> {
        self.db.select(self.tx, table, access, filter, projection)
    }
}
