//! User accounts: authentication stub, reputation, and incentives.
//!
//! The user layer "authenticates users, manage[s] incentive schemes for
//! soliciting user feedback, and manage[s] user reputation (e.g., for mass
//! collaboration)". Accounts pair an identity with a reliability posterior
//! (from [`quarry_hi::ReputationTracker`]) and an incentive-point balance
//! credited per accepted contribution.

use quarry_hi::oracle::UserId;
use quarry_hi::ReputationTracker;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One registered user.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserAccount {
    /// Stable id (feeds the HI layer).
    pub id: UserId,
    /// Display name, unique.
    pub name: String,
    /// Whether the user may run pipelines (sophisticated user) or only
    /// query and give feedback (ordinary user).
    pub developer: bool,
    /// Incentive points earned.
    pub points: u64,
}

/// The account directory.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct UserDirectory {
    by_name: BTreeMap<String, UserAccount>,
    reputation: ReputationTracker,
    next_id: u32,
    /// Points granted per accepted contribution.
    pub points_per_contribution: u64,
}

impl UserDirectory {
    /// Empty directory (5 points per contribution).
    pub fn new() -> UserDirectory {
        UserDirectory { points_per_contribution: 5, ..Default::default() }
    }

    /// Register a user; errors if the name is taken.
    pub fn register(&mut self, name: &str, developer: bool) -> Result<UserId, String> {
        if self.by_name.contains_key(name) {
            return Err(format!("user {name} already exists"));
        }
        let id = UserId(self.next_id);
        self.next_id += 1;
        self.by_name.insert(
            name.to_string(),
            UserAccount { id, name: name.to_string(), developer, points: 0 },
        );
        Ok(id)
    }

    /// "Authenticate": look up by name (a stand-in for real credentials —
    /// the interface boundary is what matters to the architecture).
    pub fn authenticate(&self, name: &str) -> Option<&UserAccount> {
        self.by_name.get(name)
    }

    /// Record the outcome of one contribution: reputation updates either
    /// way, points only for accepted work.
    pub fn record_contribution(&mut self, name: &str, accepted: bool) -> Result<(), String> {
        let account = self.by_name.get_mut(name).ok_or_else(|| format!("no user {name}"))?;
        self.reputation.record(account.id, accepted);
        if accepted {
            account.points += self.points_per_contribution;
        }
        Ok(())
    }

    /// A user's current reliability estimate.
    pub fn reliability(&self, name: &str) -> Option<f64> {
        self.by_name.get(name).map(|a| self.reputation.reliability(a.id).mean())
    }

    /// The reputation tracker (for reputation-weighted voting).
    pub fn reputation(&self) -> &ReputationTracker {
        &self.reputation
    }

    /// Leaderboard: users by points, descending.
    pub fn leaderboard(&self) -> Vec<(&str, u64)> {
        let mut rows: Vec<(&str, u64)> =
            self.by_name.values().map(|a| (a.name.as_str(), a.points)).collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        rows
    }

    /// Number of registered users.
    pub fn len(&self) -> usize {
        self.by_name.len()
    }

    /// True when nobody is registered.
    pub fn is_empty(&self) -> bool {
        self.by_name.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_authenticate() {
        let mut d = UserDirectory::new();
        let id = d.register("ada", true).unwrap();
        assert_eq!(d.authenticate("ada").unwrap().id, id);
        assert!(d.authenticate("ada").unwrap().developer);
        assert!(d.authenticate("ghost").is_none());
        assert!(d.register("ada", false).is_err());
    }

    #[test]
    fn contributions_move_points_and_reputation() {
        let mut d = UserDirectory::new();
        d.register("good", false).unwrap();
        d.register("bad", false).unwrap();
        for _ in 0..10 {
            d.record_contribution("good", true).unwrap();
            d.record_contribution("bad", false).unwrap();
        }
        assert_eq!(d.authenticate("good").unwrap().points, 50);
        assert_eq!(d.authenticate("bad").unwrap().points, 0);
        assert!(d.reliability("good").unwrap() > 0.8);
        assert!(d.reliability("bad").unwrap() < 0.2);
        assert!(d.record_contribution("ghost", true).is_err());
    }

    #[test]
    fn leaderboard_orders_by_points() {
        let mut d = UserDirectory::new();
        d.register("a", false).unwrap();
        d.register("b", false).unwrap();
        d.record_contribution("b", true).unwrap();
        assert_eq!(d.leaderboard(), vec![("b", 5), ("a", 0)]);
    }
}
