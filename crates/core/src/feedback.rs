//! User contributions: ordinary users correcting the derived structure.
//!
//! §3.2 wants "not just developers, but also ordinary users" in the loop,
//! ideally "a multitude of users ... in a mass collaboration fashion". This
//! module is that path: any user may propose a correction to a stored cell;
//! proposals accumulate reputation-weighted support and apply to the store
//! once support clears a threshold. Accepted contributions pay incentive
//! points and raise the contributor's reputation; rejected ones lower it —
//! the flywheel the user layer's "incentive schemes" sentence describes.

use crate::users::UserDirectory;
use quarry_storage::{Database, StorageError, Value};
use std::collections::BTreeMap;

/// A proposed cell correction.
#[derive(Debug, Clone, PartialEq)]
pub struct Correction {
    /// Target table.
    pub table: String,
    /// Primary-key values identifying the row.
    pub key: Vec<Value>,
    /// Column to change.
    pub column: String,
    /// Proposed new value.
    pub value: Value,
}

#[derive(Debug, Clone)]
struct Proposal {
    correction: Correction,
    /// Supporting user names with their reputation weight at vote time.
    supporters: Vec<(String, f64)>,
}

/// Outcome of processing one proposal.
#[derive(Debug, Clone, PartialEq)]
pub enum CorrectionStatus {
    /// Accumulating support; needs this much more weight.
    Pending {
        /// Weight still missing.
        missing: f64,
    },
    /// Applied to the store.
    Applied,
    /// Rejected (row vanished / value invalid for the column).
    Rejected {
        /// Why.
        reason: String,
    },
}

/// The correction queue.
#[derive(Debug, Default)]
pub struct FeedbackQueue {
    proposals: BTreeMap<String, Proposal>,
    /// Total reputation weight required to apply a correction.
    pub required_weight: f64,
}

fn proposal_key(c: &Correction) -> String {
    let key: Vec<String> = c.key.iter().map(Value::to_string).collect();
    format!("{}[{}].{}={}", c.table, key.join(","), c.column, c.value)
}

impl FeedbackQueue {
    /// A queue that applies corrections once supporting weight reaches
    /// `required_weight` (log-odds units, as produced by
    /// [`quarry_hi::ReputationTracker::weight`]).
    pub fn new(required_weight: f64) -> FeedbackQueue {
        FeedbackQueue { proposals: BTreeMap::new(), required_weight }
    }

    /// Number of open proposals.
    pub fn len(&self) -> usize {
        self.proposals.len()
    }

    /// True when no proposals are open.
    pub fn is_empty(&self) -> bool {
        self.proposals.is_empty()
    }

    /// A user proposes (or supports) a correction. Applies it immediately
    /// when the accumulated weight clears the threshold.
    ///
    /// The same user supporting the same proposal twice is a no-op.
    pub fn submit(
        &mut self,
        users: &mut UserDirectory,
        db: &Database,
        user: &str,
        correction: Correction,
    ) -> Result<CorrectionStatus, StorageError> {
        let weight = {
            let account = users
                .authenticate(user)
                .ok_or_else(|| StorageError::NotFound(format!("user {user}")))?;
            // Unknown users still get a minimal voice; reputation amplifies.
            users.reputation().weight(account.id).max(0.2)
        };
        let pk = proposal_key(&correction);
        let proposal = self
            .proposals
            .entry(pk.clone())
            .or_insert_with(|| Proposal { correction, supporters: Vec::new() });
        if !proposal.supporters.iter().any(|(u, _)| u == user) {
            proposal.supporters.push((user.to_string(), weight));
        }
        let total: f64 = proposal.supporters.iter().map(|(_, w)| w).sum();
        if total < self.required_weight {
            return Ok(CorrectionStatus::Pending { missing: self.required_weight - total });
        }

        // Threshold reached: apply.
        let proposal = self.proposals.remove(&pk).expect("present");
        let c = &proposal.correction;
        let outcome = apply(db, c);
        let accepted = outcome.is_ok();
        for (supporter, _) in &proposal.supporters {
            let _ = users.record_contribution(supporter, accepted);
        }
        match outcome {
            Ok(()) => Ok(CorrectionStatus::Applied),
            Err(e) => Ok(CorrectionStatus::Rejected { reason: e.to_string() }),
        }
    }
}

fn apply(db: &Database, c: &Correction) -> Result<(), StorageError> {
    let schema = db.schema(&c.table)?;
    let ci = schema
        .column_index(&c.column)
        .ok_or_else(|| StorageError::SchemaViolation(format!("no column {}", c.column)))?;
    let tx = db.begin();
    let result = (|| {
        let mut row = db.get(tx, &c.table, &c.key)?;
        row[ci] = c.value.clone();
        db.update(tx, &c.table, &c.key, row)
    })();
    match result {
        Ok(()) => db.commit(tx),
        Err(e) => {
            let _ = db.abort(tx);
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quarry_storage::{Column, DataType, TableSchema};

    fn setup() -> (Database, UserDirectory, FeedbackQueue) {
        let db = Database::in_memory();
        db.create_table(
            TableSchema::new(
                "cities",
                vec![Column::new("name", DataType::Text), Column::new("population", DataType::Int)],
                &["name"],
                &[],
            )
            .unwrap(),
        )
        .unwrap();
        db.insert_autocommit("cities", vec!["Madison".into(), Value::Int(99)]).unwrap();
        let mut users = UserDirectory::new();
        users.register("trusted", false).unwrap();
        users.register("newbie", false).unwrap();
        // Trusted has a long history of accepted contributions.
        for _ in 0..20 {
            users.record_contribution("trusted", true).unwrap();
        }
        (db, users, FeedbackQueue::new(2.0))
    }

    fn correction() -> Correction {
        Correction {
            table: "cities".into(),
            key: vec!["Madison".into()],
            column: "population".into(),
            value: Value::Int(250_000),
        }
    }

    #[test]
    fn trusted_user_applies_alone() {
        let (db, mut users, mut q) = setup();
        let status = q.submit(&mut users, &db, "trusted", correction()).unwrap();
        assert_eq!(status, CorrectionStatus::Applied);
        let rows = db.scan_autocommit("cities").unwrap();
        assert_eq!(rows[0][1], Value::Int(250_000));
        // Points were paid.
        assert!(users.authenticate("trusted").unwrap().points > 0);
    }

    #[test]
    fn newbies_need_to_gang_up() {
        let (db, mut users, mut q) = setup();
        for i in 0..12 {
            users.register(&format!("u{i}"), false).unwrap();
        }
        let mut applied = false;
        for i in 0..12 {
            match q.submit(&mut users, &db, &format!("u{i}"), correction()).unwrap() {
                CorrectionStatus::Applied => {
                    applied = true;
                    break;
                }
                CorrectionStatus::Pending { missing } => assert!(missing > 0.0),
                CorrectionStatus::Rejected { reason } => panic!("{reason}"),
            }
        }
        assert!(applied, "enough small voices add up");
        assert_eq!(db.scan_autocommit("cities").unwrap()[0][1], Value::Int(250_000));
    }

    #[test]
    fn duplicate_support_does_not_double_count() {
        let (db, mut users, mut q) = setup();
        let s1 = q.submit(&mut users, &db, "newbie", correction()).unwrap();
        let s2 = q.submit(&mut users, &db, "newbie", correction()).unwrap();
        assert_eq!(s1, s2, "same user, same proposal: no progress");
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn rejected_corrections_punish_supporters() {
        let (db, mut users, mut q) = setup();
        let bad = Correction {
            table: "cities".into(),
            key: vec!["Atlantis".into()], // no such row
            column: "population".into(),
            value: Value::Int(1),
        };
        let status = q.submit(&mut users, &db, "trusted", bad).unwrap();
        assert!(matches!(status, CorrectionStatus::Rejected { .. }));
        let rep_after = users.reliability("trusted").unwrap();
        assert!(rep_after < 21.0 / 22.0, "a rejection must dent the reputation");
    }

    #[test]
    fn unknown_user_is_an_error() {
        let (db, mut users, mut q) = setup();
        assert!(q.submit(&mut users, &db, "ghost", correction()).is_err());
    }
}
