//! The DGE (data generation and exploitation) event log.
//!
//! §3 argues the community needs an explicit model of "how the data is
//! generated inside the system, who the users are, ... and how they
//! interact with the system". Quarry makes the model concrete as an event
//! log: every generation step (ingest, extract, integrate, curate) and
//! every exploitation step (keyword search, form choice, structured query,
//! feedback) appends an event. Experiments and the semantic debugger read
//! the log; so can a curious user.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One DGE event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DgeEvent {
    /// Raw documents entered the system.
    Ingest {
        /// Documents ingested.
        docs: usize,
        /// Snapshot day / version.
        day: usize,
    },
    /// A QDL pipeline ran.
    PipelineRun {
        /// Pipeline name.
        name: String,
        /// Extractions produced.
        extractions: usize,
        /// Entities stored.
        entities: usize,
        /// HI questions asked during curation.
        questions: usize,
    },
    /// A user searched by keyword.
    KeywordQuery {
        /// The query text.
        query: String,
        /// Hits returned.
        hits: usize,
        /// Structured candidates suggested alongside.
        candidates: usize,
    },
    /// A user ran (or accepted a form for) a structured query.
    StructuredQuery {
        /// Rendered query.
        rendered: String,
        /// Result rows.
        rows: usize,
    },
    /// A user gave feedback (HI outside pipeline curation).
    Feedback {
        /// User name.
        user: String,
        /// What the feedback concerned.
        subject: String,
    },
    /// The semantic debugger flagged suspicious tuples.
    DebuggerFlag {
        /// Table checked.
        table: String,
        /// Cells flagged.
        flags: usize,
    },
    /// A standing query's answer changed (monitoring mode).
    MonitorFired {
        /// Monitor name.
        monitor: String,
        /// Rows in the new answer.
        rows: usize,
    },
    /// Structure for an attribute set was generated on demand (§3.2
    /// incremental, best-effort generation).
    IncrementalExtraction {
        /// Attributes materialized.
        attributes: Vec<String>,
        /// Documents processed.
        docs: usize,
    },
}

impl DgeEvent {
    /// Is this a generation-side event (vs. exploitation-side)?
    pub fn is_generation(&self) -> bool {
        matches!(
            self,
            DgeEvent::Ingest { .. }
                | DgeEvent::PipelineRun { .. }
                | DgeEvent::Feedback { .. }
                | DgeEvent::DebuggerFlag { .. }
                | DgeEvent::IncrementalExtraction { .. }
        )
    }
}

impl fmt::Display for DgeEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DgeEvent::Ingest { docs, day } => write!(f, "ingest day {day}: {docs} docs"),
            DgeEvent::PipelineRun { name, extractions, entities, questions } => write!(
                f,
                "pipeline {name}: {extractions} extractions → {entities} entities ({questions} HI questions)"
            ),
            DgeEvent::KeywordQuery { query, hits, candidates } => {
                write!(f, "keyword \"{query}\": {hits} hits, {candidates} suggested queries")
            }
            DgeEvent::StructuredQuery { rendered, rows } => {
                write!(f, "structured {rendered}: {rows} rows")
            }
            DgeEvent::Feedback { user, subject } => write!(f, "feedback from {user} on {subject}"),
            DgeEvent::DebuggerFlag { table, flags } => {
                write!(f, "debugger flagged {flags} cells in {table}")
            }
            DgeEvent::MonitorFired { monitor, rows } => {
                write!(f, "monitor {monitor} fired: {rows} rows")
            }
            DgeEvent::IncrementalExtraction { attributes, docs } => {
                write!(f, "incremental extraction of {} over {docs} docs", attributes.join(", "))
            }
        }
    }
}

/// Append-only DGE event log.
///
/// Internally synchronized: recording takes `&self`, and clones share the
/// same underlying log. This is what lets read-only façade surfaces —
/// [`crate::Snapshot`] most of all — keep appending exploitation events
/// concurrently without an exclusive lock on the whole system (the
/// "candidate-recording side channel" that used to force `&mut self` on
/// the keyword/query hot paths).
#[derive(Debug, Clone, Default)]
pub struct DgeLog {
    events: std::sync::Arc<parking_lot::Mutex<Vec<DgeEvent>>>,
}

impl DgeLog {
    /// Empty log.
    pub fn new() -> DgeLog {
        DgeLog::default()
    }

    /// Append an event. Safe from any thread; appends interleave in
    /// arrival order.
    pub fn record(&self, e: DgeEvent) {
        self.events.lock().push(e);
    }

    /// All events recorded so far, in order.
    pub fn events(&self) -> Vec<DgeEvent> {
        self.events.lock().clone()
    }

    /// Count of generation-side vs. exploitation-side events.
    pub fn generation_exploitation_split(&self) -> (usize, usize) {
        let events = self.events.lock();
        let gen = events.iter().filter(|e| e.is_generation()).count();
        (gen, events.len() - gen)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_records_in_order_and_splits() {
        let log = DgeLog::new();
        log.record(DgeEvent::Ingest { docs: 10, day: 0 });
        log.record(DgeEvent::KeywordQuery { query: "x".into(), hits: 3, candidates: 2 });
        log.record(DgeEvent::Feedback { user: "u1".into(), subject: "match".into() });
        assert_eq!(log.events().len(), 3);
        assert_eq!(log.generation_exploitation_split(), (2, 1));
    }

    #[test]
    fn events_render() {
        let e = DgeEvent::PipelineRun {
            name: "cities".into(),
            extractions: 120,
            entities: 40,
            questions: 5,
        };
        let s = e.to_string();
        assert!(s.contains("cities"));
        assert!(s.contains("120 extractions"));
        assert!(e.is_generation());
        assert!(!DgeEvent::StructuredQuery { rendered: "q".into(), rows: 1 }.is_generation());
    }
}
