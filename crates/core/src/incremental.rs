//! Incremental, best-effort structure generation (§3.2).
//!
//! "Many applications may want to generate structured data incrementally
//! ... as the user deems necessary (instead of generating all of them in
//! one shot)." The manager tracks which attributes of a target table have
//! been materialized; [`IncrementalManager::ensure`] extracts *only* what a
//! new query additionally needs. Two mechanisms make the marginal cost
//! small: the optimizer prunes extractors that cannot produce the requested
//! attributes, and the execution context's materialization cache makes
//! re-running an already-run extractor free. E3 plots the resulting
//! incremental-vs-one-shot crossover.

use quarry_lang::exec::ExecError;
use quarry_lang::{optimize, parse, ExecContext, ExecStats, Executor, LogicalPlan};
use std::collections::BTreeSet;

/// Tracks materialized attributes for one entity table.
#[derive(Debug, Clone)]
pub struct IncrementalManager {
    /// Target table.
    pub table: String,
    /// Entity key attribute.
    pub key: String,
    materialized: BTreeSet<String>,
    /// Cumulative extraction cost units across all `ensure` calls.
    pub total_cost: f64,
    /// Number of pipeline runs that actually executed.
    pub runs: usize,
}

impl IncrementalManager {
    /// Manager for `table`, keyed by `key`.
    pub fn new(table: &str, key: &str) -> IncrementalManager {
        IncrementalManager {
            table: table.to_string(),
            key: key.to_string(),
            materialized: BTreeSet::new(),
            total_cost: 0.0,
            runs: 0,
        }
    }

    /// Attributes materialized so far.
    pub fn materialized(&self) -> impl Iterator<Item = &str> {
        self.materialized.iter().map(String::as_str)
    }

    /// True when every requested attribute is already available.
    pub fn covers(&self, attrs: &[&str]) -> bool {
        attrs.iter().all(|a| self.materialized.contains(*a))
    }

    /// Make sure `attrs` are materialized, extracting on demand. Returns
    /// the stats of the run, or `None` when nothing new was needed.
    ///
    /// The generated pipeline always requests the *cumulative* attribute
    /// set (so the rebuilt table keeps earlier columns); the cache in `ctx`
    /// turns previously-run extractors into free hits, leaving only the
    /// marginal work.
    pub fn ensure(
        &mut self,
        attrs: &[&str],
        extractors: &[&str],
        ctx: &mut ExecContext<'_>,
    ) -> Result<Option<ExecStats>, ExecError> {
        let new: Vec<&str> =
            attrs.iter().copied().filter(|a| !self.materialized.contains(*a)).collect();
        if new.is_empty() {
            return Ok(None);
        }
        for a in &new {
            self.materialized.insert(a.to_string());
        }
        self.materialized.insert(self.key.clone());

        let attr_list: Vec<String> = self.materialized.iter().map(|a| format!("\"{a}\"")).collect();
        let src = format!(
            "PIPELINE incremental_{table}\nFROM corpus\nEXTRACT {ex}\nWHERE attribute IN ({attrs})\nRESOLVE BY {key}\nSTORE INTO {table} KEY {key}",
            table = self.table,
            ex = extractors.join(", "),
            attrs = attr_list.join(", "),
            key = self.key,
        );
        let pipeline = parse(&src).map_err(|e| ExecError::InvalidPlan(e.to_string()))?;
        let plan = optimize(&LogicalPlan::from_pipeline(&pipeline), ctx.registry);
        // Rebuild the table from scratch under the wider schema.
        let _ = ctx.db.drop_table(&self.table);
        let stats = Executor::run(&plan, ctx)?;
        self.total_cost += stats.cost_units;
        self.runs += 1;
        Ok(Some(stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quarry_corpus::{Corpus, CorpusConfig, NoiseConfig};
    use quarry_lang::ExtractorRegistry;
    use quarry_storage::Database;

    fn corpus() -> Corpus {
        Corpus::generate(&CorpusConfig { noise: NoiseConfig::none(), ..CorpusConfig::tiny(3) })
    }

    #[test]
    fn first_ensure_runs_later_covered_calls_skip() {
        let c = corpus();
        let reg = ExtractorRegistry::standard();
        let db = Database::in_memory();
        let mut ctx = ExecContext::new(&c.docs, &reg, &db);
        let mut mgr = IncrementalManager::new("cities", "name");

        let s1 = mgr
            .ensure(&["population"], &["infobox", "rules"], &mut ctx)
            .unwrap()
            .expect("first run executes");
        assert!(s1.rows_stored > 0);
        assert!(mgr.covers(&["population"]));
        assert!(!mgr.covers(&["state"]));

        // Same attributes again: no work at all.
        assert!(mgr.ensure(&["population"], &["infobox", "rules"], &mut ctx).unwrap().is_none());
        assert_eq!(mgr.runs, 1);
    }

    #[test]
    fn marginal_extension_is_cheaper_than_first_run() {
        let c = corpus();
        let reg = ExtractorRegistry::standard();
        let db = Database::in_memory();
        let mut ctx = ExecContext::new(&c.docs, &reg, &db);
        let mut mgr = IncrementalManager::new("cities", "name");
        let s1 = mgr.ensure(&["population"], &["infobox", "rules"], &mut ctx).unwrap().unwrap();
        let s2 = mgr.ensure(&["state"], &["infobox", "rules"], &mut ctx).unwrap().unwrap();
        // Extractors already ran for the first call; the extension is
        // served from the cache.
        assert!(s2.cost_units < s1.cost_units, "{} vs {}", s2.cost_units, s1.cost_units);
        assert!(s2.cache_hits > 0);
        // The widened table retains the earlier column.
        let schema = db.schema("cities").unwrap();
        assert!(schema.column_index("population").is_some());
        assert!(schema.column_index("state").is_some());
    }

    #[test]
    fn cumulative_tracking() {
        let c = corpus();
        let reg = ExtractorRegistry::standard();
        let db = Database::in_memory();
        let mut ctx = ExecContext::new(&c.docs, &reg, &db);
        let mut mgr = IncrementalManager::new("cities", "name");
        mgr.ensure(&["population"], &["infobox"], &mut ctx).unwrap();
        mgr.ensure(&["state", "founded"], &["infobox"], &mut ctx).unwrap();
        let mat: Vec<&str> = mgr.materialized().collect();
        assert_eq!(mat, vec!["founded", "name", "population", "state"]);
        assert_eq!(mgr.runs, 2);
        assert!(mgr.total_cost > 0.0);
    }
}
