//! Write-invalidated structured-query result cache.
//!
//! Repeated form-based queries (the recognition-not-generation interface of
//! §3.3) tend to re-run the exact same query tree between writes, so the
//! façade memoizes results. An entry is keyed on the query's structural
//! fingerprint and remembers the *write version* of every table the query
//! read; the structured engine bumps a table's version on every applied
//! insert/update/delete (and on index DDL), so any entry whose recorded
//! versions no longer match is stale and is re-executed. Versions come off
//! one database-global write clock, which also makes a dropped-and-recreated
//! table look new rather than aliasing an old version number.
//!
//! Staleness is checked at lookup time — nothing subscribes to writes — so
//! the cache never returns data older than the most recent committed write
//! at the moment of the lookup.

use quarry_query::engine::QueryResult;
use std::collections::HashMap;

/// One cached result with its version snapshot.
#[derive(Debug, Clone)]
struct Entry {
    /// (table, write version at store time), sorted by table name.
    versions: Vec<(String, u64)>,
    /// The memoized result.
    result: QueryResult,
    /// Monotone insertion stamp for LRU-ish eviction.
    stamp: u64,
}

/// Hit/miss counters (misses include version-invalidated entries).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to execute (absent or invalidated).
    pub misses: u64,
    /// Entries dropped because a table version moved.
    pub invalidations: u64,
    /// Live entries.
    pub entries: usize,
}

/// A bounded query-result cache keyed on (fingerprint, table versions).
#[derive(Debug)]
pub struct QueryCache {
    map: HashMap<String, Entry>,
    capacity: usize,
    clock: u64,
    hits: u64,
    misses: u64,
    invalidations: u64,
}

impl Default for QueryCache {
    fn default() -> Self {
        QueryCache::new(256)
    }
}

impl QueryCache {
    /// A cache holding at most `capacity` results (oldest evicted first).
    pub fn new(capacity: usize) -> QueryCache {
        QueryCache {
            map: HashMap::new(),
            capacity: capacity.max(1),
            clock: 0,
            hits: 0,
            misses: 0,
            invalidations: 0,
        }
    }

    /// Look up `fingerprint` given the tables' *current* write versions.
    /// A version mismatch drops the entry and reports a miss.
    pub fn get(&mut self, fingerprint: &str, versions: &[(String, u64)]) -> Option<QueryResult> {
        let stale = match self.map.get_mut(fingerprint) {
            Some(e) if e.versions == versions => {
                self.hits += 1;
                self.clock += 1;
                e.stamp = self.clock;
                return Some(e.result.clone());
            }
            Some(_) => true,
            None => false,
        };
        if stale {
            self.map.remove(fingerprint);
            self.invalidations += 1;
        }
        self.misses += 1;
        None
    }

    /// Store a result under `fingerprint` with the version snapshot taken
    /// around its execution.
    pub fn put(&mut self, fingerprint: String, versions: Vec<(String, u64)>, result: QueryResult) {
        self.clock += 1;
        if self.map.len() >= self.capacity && !self.map.contains_key(&fingerprint) {
            if let Some(oldest) =
                self.map.iter().min_by_key(|(_, e)| e.stamp).map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
            }
        }
        self.map.insert(fingerprint, Entry { versions, result, stamp: self.clock });
    }

    /// Counters plus current size.
    pub fn stats(&self) -> QueryCacheStats {
        QueryCacheStats {
            hits: self.hits,
            misses: self.misses,
            invalidations: self.invalidations,
            entries: self.map.len(),
        }
    }

    /// Drop every entry (counters survive).
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(n: i64) -> QueryResult {
        QueryResult { columns: vec!["x".into()], rows: vec![vec![n.into()]] }
    }

    fn vs(v: u64) -> Vec<(String, u64)> {
        vec![("t".to_string(), v)]
    }

    #[test]
    fn hit_after_put_with_matching_versions() {
        let mut c = QueryCache::new(4);
        c.put("q1".into(), vs(3), result(1));
        assert_eq!(c.get("q1", &vs(3)), Some(result(1)));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 0, 1));
    }

    #[test]
    fn version_bump_invalidates() {
        let mut c = QueryCache::new(4);
        c.put("q1".into(), vs(3), result(1));
        assert_eq!(c.get("q1", &vs(4)), None, "stale entry must not serve");
        let s = c.stats();
        assert_eq!((s.misses, s.invalidations, s.entries), (1, 1, 0));
    }

    #[test]
    fn capacity_evicts_least_recently_touched() {
        let mut c = QueryCache::new(2);
        c.put("a".into(), vs(1), result(1));
        c.put("b".into(), vs(1), result(2));
        assert!(c.get("a", &vs(1)).is_some()); // touch a: b is now oldest
        c.put("c".into(), vs(1), result(3));
        assert!(c.get("b", &vs(1)).is_none(), "b evicted");
        assert!(c.get("a", &vs(1)).is_some());
        assert!(c.get("c", &vs(1)).is_some());
    }

    #[test]
    fn repeated_hits_refresh_recency_and_keep_the_entry() {
        // Regression for the hit path: recency is stamped on the same
        // `get_mut` borrow that served the result (there used to be a
        // second lookup here that asserted the key was still present).
        let mut c = QueryCache::new(2);
        c.put("a".into(), vs(1), result(1));
        for _ in 0..100 {
            assert_eq!(c.get("a", &vs(1)), Some(result(1)));
        }
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries), (100, 0, 1));
    }

    #[test]
    fn clear_drops_entries_keeps_counters() {
        let mut c = QueryCache::new(4);
        c.put("a".into(), vs(1), result(1));
        c.get("a", &vs(1));
        c.clear();
        assert!(c.get("a", &vs(1)).is_none());
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 0));
    }
}
