//! The assembled end-to-end system (Figure 1 of the paper).
//!
//! [`Quarry`] wires every layer together behind one façade:
//!
//! - **physical layer** — extraction pipelines fan out over the
//!   `quarry-cluster` MapReduce engine;
//! - **storage layer** — raw pages land in a delta-encoded
//!   [`quarry_storage::SnapshotStore`], the final structure in the
//!   transactional [`quarry_storage::Database`];
//! - **processing layer** — QDL programs ([`quarry_lang`]) run IE
//!   ([`quarry_extract`]) + II ([`quarry_integrate`]) + HI ([`quarry_hi`]),
//!   watched by the semantic debugger ([`quarry_debugger`]) and recorded in
//!   the provenance graph ([`quarry_uncertainty`]);
//! - **user layer** — keyword search, query translation, forms, and
//!   sessions ([`quarry_query`]), plus user accounts with reputations and
//!   incentive points ([`users`]).
//!
//! [`incremental`] implements §3.2's "incremental, best-effort" generation:
//! structure is extracted only when a query first needs it. [`dge`] records
//! the data-generation-and-exploitation event log that makes the paper's
//! DGE model an inspectable artifact.

#![forbid(unsafe_code)]

pub mod dge;
pub mod feedback;
pub mod incremental;
pub mod monitor;
pub mod qcache;
pub mod snapshot;
pub mod system;
pub mod users;

pub use dge::{DgeEvent, DgeLog};
pub use feedback::{Correction, CorrectionStatus, FeedbackQueue};
pub use incremental::IncrementalManager;
pub use monitor::{MonitorFire, MonitorSet};
pub use qcache::{QueryCache, QueryCacheStats};
pub use quarry_storage::DurabilityMode;
pub use snapshot::{SharedQuarry, Snapshot};
pub use system::{CheckStats, Quarry, QuarryConfig, QuarryError};
pub use users::{UserAccount, UserDirectory};
