//! The [`Quarry`] façade: one object exposing the whole Figure-1 system.

use crate::dge::{DgeEvent, DgeLog};
use crate::feedback::{Correction, CorrectionStatus, FeedbackQueue};
use crate::monitor::{MonitorFire, MonitorSet};
use crate::qcache::QueryCacheStats;
use crate::snapshot::{ReadState, Snapshot};
use crate::users::UserDirectory;
use quarry_corpus::{Corpus, CorpusConfig, CorpusError, DocId, Document};
use quarry_debugger::{HealthMonitor, LearnConfig, SemanticDebugger, Suspicion};
use quarry_exec::diag::Severity;
use quarry_exec::{ExecPool, ExecReport, LintReport, MetricsRegistry, MetricsSnapshot};
use quarry_extract::Extraction;
use quarry_hi::Crowd;
use quarry_integrate::IntegrateError;
use quarry_lang::exec::{ExecError, TruthOracle};
use quarry_lang::{
    optimize, parse, ExecContext, ExecStats, Executor, ExtractorRegistry, LogicalPlan,
};
use quarry_query::engine::{Query, QueryError, QueryResult};
use quarry_query::forms::QueryForm;
use quarry_query::{CandidateQuery, SearchHit};
use quarry_schema::SchemaRegistry;
use quarry_storage::{Database, DurabilityMode, SnapshotStore, StorageError, Value};
use quarry_uncertainty::{LineageGraph, NodeId};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Quarry configuration. Construct with [`QuarryConfig::builder`] (or
/// `Default` for the stock settings).
#[derive(Debug, Clone)]
pub struct QuarryConfig {
    /// Snapshot-store keyframe interval (see
    /// [`SnapshotStore::new`]).
    pub keyframe_interval: usize,
    /// Path for the structured store's WAL; `None` = in-memory.
    pub wal_path: Option<std::path::PathBuf>,
    /// Storage backend for the structured store's WAL and checkpoints;
    /// `None` = the real filesystem. Lets tests interpose a
    /// fault-injecting backend (see `quarry_storage::faultfs`).
    pub storage_backend: Option<std::sync::Arc<dyn quarry_storage::StorageBackend>>,
    /// Health-monitor heartbeat timeout in ticks.
    pub heartbeat_timeout: u64,
    /// Worker threads for pipeline execution; `0` = one per CPU.
    /// Results are identical at every thread count.
    pub threads: usize,
    /// Commit durability for the structured store's WAL (see
    /// [`DurabilityMode`]). Only meaningful together with `wal_path`.
    pub durability: DurabilityMode,
}

impl Default for QuarryConfig {
    fn default() -> Self {
        QuarryConfig {
            keyframe_interval: 16,
            wal_path: None,
            storage_backend: None,
            heartbeat_timeout: 10,
            threads: 0,
            durability: DurabilityMode::Full,
        }
    }
}

impl QuarryConfig {
    /// Start building a configuration from the defaults.
    pub fn builder() -> QuarryConfigBuilder {
        QuarryConfigBuilder { config: QuarryConfig::default() }
    }
}

/// Builder for [`QuarryConfig`].
#[derive(Debug, Clone, Default)]
pub struct QuarryConfigBuilder {
    config: QuarryConfig,
}

impl QuarryConfigBuilder {
    /// Snapshot-store keyframe interval.
    pub fn keyframe_interval(mut self, interval: usize) -> Self {
        self.config.keyframe_interval = interval;
        self
    }

    /// Persist the structured store's WAL at `path`.
    pub fn wal_path(mut self, path: impl Into<std::path::PathBuf>) -> Self {
        self.config.wal_path = Some(path.into());
        self
    }

    /// Route the structured store's file I/O through an explicit storage
    /// backend (fault injection, instrumentation). Only meaningful together
    /// with [`QuarryConfigBuilder::wal_path`].
    pub fn storage_backend(
        mut self,
        backend: std::sync::Arc<dyn quarry_storage::StorageBackend>,
    ) -> Self {
        self.config.storage_backend = Some(backend);
        self
    }

    /// Health-monitor heartbeat timeout in ticks.
    pub fn heartbeat_timeout(mut self, ticks: u64) -> Self {
        self.config.heartbeat_timeout = ticks;
        self
    }

    /// Worker threads for pipeline execution (`0` = one per CPU,
    /// `1` = run inline).
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Commit durability for the structured store's WAL: `Full` fsyncs every
    /// commit (group-committed), `Normal` flushes without fsync, `Deferred`
    /// leaves commits buffered until the next checkpoint or explicit sync.
    pub fn durability(mut self, mode: DurabilityMode) -> Self {
        self.config.durability = mode;
        self
    }

    /// Finish building.
    pub fn build(self) -> QuarryConfig {
        self.config
    }
}

/// Any error the façade can surface. Every subsystem error arrives as a
/// structured variant wrapping the subsystem's own error type, so callers
/// can match on causes instead of parsing strings.
#[derive(Debug)]
pub enum QuarryError {
    /// QDL source failed to parse.
    Parse(quarry_lang::parser::ParseError),
    /// A parsed pipeline failed during planning or execution.
    Pipeline(ExecError),
    /// Storage failure.
    Storage(StorageError),
    /// Structured-query failure.
    Query(QueryError),
    /// Invalid corpus configuration.
    Corpus(CorpusError),
    /// Invalid integration (matcher) configuration.
    Integrate(IntegrateError),
    /// A QDL program failed static analysis before execution — the report
    /// carries the span-anchored diagnostics over the submitted source.
    Lint(LintReport),
}

impl fmt::Display for QuarryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuarryError::Parse(e) => write!(f, "pipeline error: {e}"),
            QuarryError::Pipeline(e) => write!(f, "pipeline error: {e}"),
            QuarryError::Storage(e) => write!(f, "storage error: {e}"),
            QuarryError::Query(e) => write!(f, "query error: {e}"),
            QuarryError::Corpus(e) => write!(f, "corpus error: {e}"),
            QuarryError::Integrate(e) => write!(f, "integrate error: {e}"),
            QuarryError::Lint(report) => write!(
                f,
                "program rejected by static analysis ({} error(s)):\n{}",
                report.error_count(),
                report.render()
            ),
        }
    }
}

impl std::error::Error for QuarryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QuarryError::Parse(e) => Some(e),
            QuarryError::Pipeline(e) => Some(e),
            QuarryError::Storage(e) => Some(e),
            QuarryError::Query(e) => Some(e),
            QuarryError::Corpus(e) => Some(e),
            QuarryError::Integrate(e) => Some(e),
            QuarryError::Lint(_) => None,
        }
    }
}

impl From<StorageError> for QuarryError {
    fn from(e: StorageError) -> Self {
        QuarryError::Storage(e)
    }
}

impl From<QueryError> for QuarryError {
    fn from(e: QueryError) -> Self {
        QuarryError::Query(e)
    }
}

impl From<ExecError> for QuarryError {
    fn from(e: ExecError) -> Self {
        QuarryError::Pipeline(e)
    }
}

impl From<quarry_lang::parser::ParseError> for QuarryError {
    fn from(e: quarry_lang::parser::ParseError) -> Self {
        QuarryError::Parse(e)
    }
}

impl From<CorpusError> for QuarryError {
    fn from(e: CorpusError) -> Self {
        QuarryError::Corpus(e)
    }
}

impl From<IntegrateError> for QuarryError {
    fn from(e: IntegrateError) -> Self {
        QuarryError::Integrate(e)
    }
}

/// Counters and timings for the static checks the façade has run —
/// [`Quarry::check_program`], [`Quarry::check_query`], and the implicit
/// gate inside [`Quarry::run_pipeline`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckStats {
    /// Number of checks performed.
    pub checks: u64,
    /// Error-severity diagnostics produced, summed over all checks.
    pub errors: u64,
    /// Warning-severity diagnostics produced, summed over all checks.
    pub warnings: u64,
    /// Wall-clock microseconds of the most recent check.
    pub last_check_micros: u64,
    /// Wall-clock microseconds summed over all checks.
    pub total_check_micros: u64,
}

/// The end-to-end system: the façade's **write surface**.
///
/// Mutations (`ingest`, `run_pipeline`, `submit_correction`, DDL,
/// checkpoint) live here and take `&mut self` — a single writer. Reads go
/// through [`Quarry::snapshot`]: an immutable [`Snapshot`] pinned to one
/// write-clock LSN, whose query/keyword/explain/stats methods are all
/// `&self` and never block the writer. The legacy `&mut`-free read
/// methods on `Quarry` itself remain as deprecated shims that capture a
/// fresh snapshot per call. Multi-threaded hosts wrap the split in
/// [`crate::SharedQuarry`].
pub struct Quarry {
    /// Versioned raw-page store (storage layer).
    pub snapshots: SnapshotStore,
    /// The structured store (storage layer). Shared with read snapshots;
    /// `Arc` keeps `quarry.db.…` call sites working unchanged.
    pub db: Arc<Database>,
    /// Operator library (processing layer).
    pub registry: ExtractorRegistry,
    /// Schema version registry (processing layer, Part IV).
    pub schemas: SchemaRegistry,
    /// Provenance graph (processing layer, Part V).
    pub lineage: LineageGraph,
    /// System health (processing layer, Part VI).
    pub health: HealthMonitor,
    /// User accounts (user layer).
    pub users: UserDirectory,
    /// The DGE event log (internally synchronized; clones share it).
    pub dge: DgeLog,
    /// Standing queries (monitoring exploitation mode).
    pub monitors: MonitorSet,
    /// User-contributed corrections awaiting support.
    pub feedback: FeedbackQueue,
    /// Writer-local handle to the working set (also published to
    /// [`ReadState`] for snapshot capture).
    docs: Arc<Vec<Document>>,
    cache: HashMap<(DocId, String), Vec<Extraction>>,
    crowd: Option<Crowd>,
    truth: Option<TruthOracle>,
    pool: ExecPool,
    last_report: ExecReport,
    shared: Arc<ReadState>,
    day: usize,
    tick: u64,
}

impl Quarry {
    /// Bring up a system.
    pub fn new(config: QuarryConfig) -> Result<Quarry, QuarryError> {
        let mut db = match (&config.wal_path, &config.storage_backend) {
            (Some(p), Some(backend)) => Database::open_with(std::sync::Arc::clone(backend), p)?,
            (Some(p), None) => Database::open(p)?,
            (None, _) => Database::in_memory(),
        };
        db.set_durability(config.durability);
        let db = Arc::new(db);
        let mut health = HealthMonitor::new(config.heartbeat_timeout);
        health.register("ingest", [("docs", 0.0, f64::INFINITY)]);
        health.register("pipeline", [("extractions_per_doc", 0.0, 1000.0)]);
        let dge = DgeLog::new();
        let shared = Arc::new(ReadState::new(Arc::clone(&db), dge.clone(), MetricsRegistry::new()));
        Ok(Quarry {
            snapshots: SnapshotStore::new(config.keyframe_interval),
            db,
            registry: ExtractorRegistry::standard(),
            schemas: SchemaRegistry::new(),
            lineage: LineageGraph::new(),
            health,
            users: UserDirectory::new(),
            dge,
            monitors: MonitorSet::new(),
            feedback: FeedbackQueue::new(2.0),
            docs: Arc::new(Vec::new()),
            cache: HashMap::new(),
            crowd: None,
            truth: None,
            pool: ExecPool::new(config.threads),
            last_report: ExecReport::new(),
            shared,
            day: 0,
            tick: 0,
        })
    }

    /// Capture an immutable read session pinned to the current LSN. O(1)
    /// `Arc` clones; the session's query/keyword/explain/stats methods
    /// are `&self` and run concurrently with the writer. This is the
    /// read half of the façade API — see [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        Snapshot::capture(&self.shared)
    }

    pub(crate) fn read_state(&self) -> Arc<ReadState> {
        Arc::clone(&self.shared)
    }

    /// Instrumentation from the most recent pipeline run: per-stage
    /// throughput and batch latencies, per-extractor timings, and
    /// similarity-cache counters.
    pub fn last_report(&self) -> &ExecReport {
        &self.last_report
    }

    /// Checkpoint the structured store: publish an atomic snapshot of
    /// committed state and reset the WAL, bounding recovery time. Requires
    /// quiescence (no open transactions); a no-op for in-memory databases.
    /// See `docs/durability.md` for the crash-safety argument.
    pub fn checkpoint(&self) -> Result<(), QuarryError> {
        self.db.checkpoint()?;
        Ok(())
    }

    /// Force every buffered WAL commit to stable storage, regardless of the
    /// configured [`DurabilityMode`]. Under `Normal`/`Deferred` this is the
    /// hook a graceful shutdown uses so drained work survives a subsequent
    /// power loss; under `Full` it is a cheap no-op (everything already
    /// synced). A no-op for in-memory databases.
    pub fn sync_wal(&self) -> Result<(), QuarryError> {
        self.db.sync_wal()?;
        Ok(())
    }

    /// Generate a synthetic corpus from a validated configuration and
    /// ingest it, returning the number of documents.
    pub fn ingest_generated(&mut self, config: &CorpusConfig) -> Result<usize, QuarryError> {
        config.validate()?;
        let corpus = Corpus::generate(config);
        let n = corpus.docs.len();
        self.ingest(corpus.docs);
        Ok(n)
    }

    /// Wire human-intervention capability (simulated crowd + truth oracle).
    pub fn set_hi(&mut self, crowd: Crowd, truth: TruthOracle) {
        self.crowd = Some(crowd);
        self.truth = Some(truth);
    }

    /// The current working document set.
    pub fn docs(&self) -> &[Document] {
        &self.docs
    }

    /// Ingest one crawl snapshot: pages are versioned in the snapshot
    /// store, the working set replaced, and the keyword index invalidated.
    pub fn ingest(&mut self, docs: Vec<Document>) {
        self.tick += 1;
        self.snapshots.put_snapshot(docs.iter().map(|d| (d.title.as_str(), d.text.as_str())));
        self.dge.record(DgeEvent::Ingest { docs: docs.len(), day: self.day });
        self.health.heartbeat(self.tick, "ingest", [("docs", docs.len() as f64)]);
        self.day += 1;
        self.docs = Arc::new(docs);
        // Publish the new working set under a bumped generation: snapshots
        // captured from here on see the new docs, and the shared keyword
        // index (keyed by generation) rebuilds lazily on next use.
        {
            let mut published = self.shared.docs.lock();
            published.0 += 1;
            published.1 = Arc::clone(&self.docs);
        }
        // Page content changed: cached extractions are stale.
        self.cache.clear();
    }

    /// Run a QDL program over the current working set.
    ///
    /// The program is statically analyzed first; error-severity
    /// diagnostics (other than unknown extractors, which stay the
    /// executor's structured [`ExecError::UnknownExtractor`]) reject it as
    /// [`QuarryError::Lint`] before any document is read.
    pub fn run_pipeline(&mut self, src: &str) -> Result<ExecStats, QuarryError> {
        let start = std::time::Instant::now();
        let result = self.run_pipeline_inner(src);
        self.shared.metrics.observe("facade.pipeline_us", start.elapsed());
        self.shared.metrics.incr("facade.pipeline_runs", 1);
        if result.is_err() {
            self.shared.metrics.incr("facade.pipeline_errors", 1);
        }
        result
    }

    fn run_pipeline_inner(&mut self, src: &str) -> Result<ExecStats, QuarryError> {
        self.tick += 1;
        let pipeline = parse(src)?;
        let report = self.check_program(src);
        let gates = report.diagnostics.iter().any(|d| {
            d.severity == Severity::Error && d.code != quarry_lang::lint::codes::UNKNOWN_EXTRACTOR
        });
        if gates {
            return Err(QuarryError::Lint(report));
        }
        let plan = optimize(&LogicalPlan::from_pipeline(&pipeline), &self.registry);
        let mut ctx = ExecContext {
            docs: &self.docs,
            registry: &self.registry,
            db: &self.db,
            crowd: self.crowd.take(),
            truth: self.truth.clone(),
            cache: std::mem::take(&mut self.cache),
            pool: self.pool,
            report: ExecReport::new(),
        };
        let result = Executor::run(&plan, &mut ctx);
        self.crowd = ctx.crowd.take();
        self.cache = std::mem::take(&mut ctx.cache);
        self.last_report = std::mem::take(&mut ctx.report);
        *self.shared.last_report.lock() = self.last_report.clone();
        let stats = result?;
        self.dge.record(DgeEvent::PipelineRun {
            name: pipeline.name.clone(),
            extractions: stats.extractions,
            entities: stats.entities,
            questions: stats.questions_asked,
        });
        let per_doc = if self.docs.is_empty() {
            0.0
        } else {
            stats.extractions as f64 / self.docs.len() as f64
        };
        self.health.heartbeat(self.tick, "pipeline", [("extractions_per_doc", per_doc)]);
        // The translator cache is keyed by snapshot LSN, so the stored
        // structure this run produced invalidates it automatically.
        // Generation moved the data: standing queries may have new answers.
        for fire in self.check_monitors() {
            let _ = fire;
        }
        Ok(stats)
    }

    /// Statically check a QDL program against the operator library and
    /// schema registry without running it. Syntax errors come back as a
    /// QL000 diagnostic in the report rather than an `Err`, so callers
    /// can render every outcome uniformly.
    pub fn check_program(&self, src: &str) -> LintReport {
        let start = std::time::Instant::now();
        let report =
            quarry_lang::lint::lint_source("<program>", src, &self.registry, Some(&self.schemas));
        self.shared.note_check(&report, start);
        report
    }

    /// Statically check a structured query's table and column references
    /// against the database schemas without executing it.
    #[deprecated(
        since = "0.6.0",
        note = "capture a read session: `quarry.snapshot().check_query(q)`"
    )]
    pub fn check_query(&self, q: &Query) -> LintReport {
        self.snapshot().check_query(q)
    }

    /// Counters and timings of all static checks run so far.
    pub fn check_stats(&self) -> CheckStats {
        *self.shared.check.lock()
    }

    /// Register a standing query; its changes are reported by
    /// [`Quarry::check_monitors`] and automatically after each pipeline run.
    pub fn register_monitor(&mut self, name: &str, query: Query) {
        self.monitors.register(name, query);
    }

    /// Run every pipeline in a multi-pipeline QDL script, in order.
    /// Returns per-pipeline stats; stops at the first failure.
    pub fn run_script(&mut self, src: &str) -> Result<Vec<(String, ExecStats)>, QuarryError> {
        let mut out = Vec::new();
        for chunk in split_script(src) {
            let name = parse(&chunk)?.name;
            let stats = self.run_pipeline(&chunk)?;
            out.push((name, stats));
        }
        Ok(out)
    }

    /// A user proposes a correction to a stored cell (ordinary-user data
    /// generation). Applied once reputation-weighted support suffices.
    pub fn submit_correction(
        &mut self,
        user: &str,
        correction: Correction,
    ) -> Result<CorrectionStatus, QuarryError> {
        let subject = format!("{}.{}", correction.table, correction.column);
        let status = self.feedback.submit(&mut self.users, &self.db, user, correction)?;
        self.dge.record(DgeEvent::Feedback { user: user.to_string(), subject });
        if status == CorrectionStatus::Applied {
            // The data moved: monitors may fire. (The translator cache is
            // LSN-keyed, so the applied write invalidates it by itself.)
            let _ = self.check_monitors();
        }
        Ok(status)
    }

    /// Re-evaluate standing queries; fires are logged as DGE events.
    pub fn check_monitors(&mut self) -> Vec<MonitorFire> {
        let fires = self.monitors.check(&self.db);
        for f in &fires {
            self.dge.record(DgeEvent::MonitorFired {
                monitor: f.name.clone(),
                rows: f.current.rows.len(),
            });
        }
        fires
    }

    /// Keyword search: document hits plus suggested structured queries.
    #[deprecated(
        since = "0.6.0",
        note = "capture a read session: `quarry.snapshot().keyword(query, k)`"
    )]
    pub fn keyword(&self, query: &str, k: usize) -> (Vec<SearchHit>, Vec<CandidateQuery>) {
        self.snapshot().keyword(query, k)
    }

    /// Render the suggested queries for a keyword query as forms.
    #[deprecated(
        since = "0.6.0",
        note = "capture a read session: `quarry.snapshot().suggest_forms(query, k)`"
    )]
    pub fn suggest_forms(&self, query: &str, k: usize) -> Vec<QueryForm> {
        self.snapshot().suggest_forms(query, k)
    }

    /// Run a structured query, consulting the shared result cache first.
    /// Executes against a freshly captured snapshot; see
    /// [`Snapshot::query`] for the cache-consistency argument.
    #[deprecated(since = "0.6.0", note = "capture a read session: `quarry.snapshot().query(q)`")]
    pub fn structured(&self, q: &Query) -> Result<QueryResult, QuarryError> {
        self.snapshot().query(q)
    }

    /// Declare a secondary index on a stored table's column (idempotent,
    /// WAL-logged). Subsequent structured queries with equality or range
    /// predicates on that column route through the index.
    pub fn create_index(&self, table: &str, column: &str) -> Result<(), QuarryError> {
        self.db.create_index(table, column)?;
        Ok(())
    }

    /// Explain a structured query: the chosen physical plan with access
    /// paths, pushed predicates, and estimated vs. actual row counts.
    #[deprecated(
        since = "0.6.0",
        note = "capture a read session: `quarry.snapshot().explain_query(q)`"
    )]
    pub fn explain_query(&self, q: &Query) -> Result<String, QuarryError> {
        self.snapshot().explain_query(q)
    }

    /// Hit/miss/invalidation counters of the structured-query result cache.
    pub fn query_cache_stats(&self) -> QueryCacheStats {
        self.shared.qcache.lock().stats()
    }

    /// A handle to the façade's shared metrics registry. Clones record
    /// into the same counters and histograms, so other layers (the network
    /// server, background workers) can contribute observations that
    /// [`Quarry::metrics`] will report.
    pub fn metrics_registry(&self) -> MetricsRegistry {
        self.shared.metrics.clone()
    }

    /// One unified observability snapshot: the live metrics registry
    /// (request latency histograms, façade counters, anything other layers
    /// recorded through [`Quarry::metrics_registry`]) merged with the
    /// previously separate views — [`Quarry::check_stats`] (`check.*`),
    /// [`Quarry::query_cache_stats`] (`qcache.*`), and the last pipeline
    /// run's [`ExecReport`] counters and operator timings (`exec.*`).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics_snapshot()
    }

    /// Audit a stored table with the semantic debugger: constraints are
    /// learned from the table itself, so only minority-violating cells
    /// (outliers, FD breaks, type intruders) get flagged.
    pub fn audit_table(&mut self, table: &str) -> Result<Vec<Suspicion>, QuarryError> {
        let schema = self.db.schema(table)?;
        let rows = self.db.scan_autocommit(table)?;
        let columns: Vec<String> = schema.columns.iter().map(|c| c.name.clone()).collect();
        let serialized: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                r.iter().map(|v| if v.is_null() { String::new() } else { v.to_string() }).collect()
            })
            .collect();
        let dbg = SemanticDebugger::learn(&columns, &serialized, &LearnConfig::default());
        let flags = dbg.check(&serialized);
        self.dge.record(DgeEvent::DebuggerFlag { table: table.to_string(), flags: flags.len() });
        Ok(flags)
    }

    /// Build tuple-level provenance for every row of a stored table by
    /// re-associating rows with the cached extractions that support them.
    /// Returns the lineage node per row (row key rendering → node).
    pub fn record_lineage(&mut self, table: &str) -> Result<Vec<(String, NodeId)>, QuarryError> {
        let schema = self.db.schema(table)?;
        let rows = self.db.scan_autocommit(table)?;
        let mut out = Vec::with_capacity(rows.len());
        // Index cached extractions by (attribute, value) for fast lookup.
        let mut support: HashMap<(&str, &Value), Vec<&Extraction>> = HashMap::new();
        for exts in self.cache.values() {
            for e in exts {
                support.entry((e.attribute.as_str(), &e.value)).or_default().push(e);
            }
        }
        for row in &rows {
            let mut inputs = Vec::new();
            for (c, v) in schema.columns.iter().zip(row) {
                if v.is_null() {
                    continue;
                }
                if let Some(witnesses) = support.get(&(c.name.as_str(), v)) {
                    for e in witnesses.iter().take(2) {
                        let doc_text = self
                            .docs
                            .iter()
                            .find(|d| d.id == e.doc)
                            .map(|d| e.span.slice(&d.text))
                            .unwrap_or(&e.raw);
                        let src = self.lineage.source(e.doc, e.span, doc_text);
                        let op = self.lineage.operator(e.extractor, e.confidence, vec![src]);
                        inputs.push(op);
                    }
                }
            }
            let display: Vec<String> = row.iter().map(Value::to_string).collect();
            let node = self.lineage.tuple(table, &display.join(", "), inputs);
            out.push((display.join(", "), node));
        }
        Ok(out)
    }

    /// Explain one derived tuple (by lineage node).
    pub fn explain(&self, node: NodeId) -> String {
        self.lineage.explain(node)
    }

    /// Browse an entity: render its card — fields, plus rows of *other*
    /// tables that share one of its text values (cheap value-join links,
    /// the "browsing" exploitation mode of §3.2).
    pub fn browse(&self, table: &str, key: &[Value]) -> Result<String, QuarryError> {
        use std::fmt::Write as _;
        let schema = self.db.schema(table)?;
        let tx = self.db.begin();
        let row = self.db.get(tx, table, key);
        self.db.commit(tx)?;
        let row = row?;
        let mut card = String::new();
        let _ = writeln!(
            card,
            "┌ {table}: {}",
            key.iter().map(Value::to_string).collect::<Vec<_>>().join(", ")
        );
        for (c, v) in schema.columns.iter().zip(&row) {
            if !v.is_null() {
                let _ = writeln!(card, "│ {} = {v}", c.name);
            }
        }
        // Value links: other tables mentioning any of this row's text values.
        let texts: Vec<&str> = row.iter().filter_map(Value::as_text).collect();
        for other in self.db.table_names() {
            if other == table {
                continue;
            }
            let Ok(other_schema) = self.db.schema(&other) else { continue };
            let Ok(rows) = self.db.scan_autocommit(&other) else { continue };
            let mut links = 0usize;
            for orow in &rows {
                if orow.iter().filter_map(Value::as_text).any(|t| texts.contains(&t)) {
                    if links == 0 {
                        let _ = writeln!(card, "├ related in {other}:");
                    }
                    if links < 3 {
                        let key_render: Vec<String> =
                            other_schema.key.iter().map(|&i| orow[i].to_string()).collect();
                        let _ = writeln!(card, "│   {}", key_render.join(", "));
                    }
                    links += 1;
                }
            }
            if links > 3 {
                let _ = writeln!(card, "│   … and {} more", links - 3);
            }
        }
        card.push('└');
        Ok(card)
    }

    /// Advance the health clock and report component statuses.
    pub fn health_check(&mut self) -> Vec<(String, quarry_debugger::HealthStatus)> {
        self.tick += 1;
        ["ingest", "pipeline"]
            .iter()
            .filter_map(|c| self.health.status(self.tick, c).map(|s| (c.to_string(), s)))
            .collect()
    }
}

/// Split a multi-pipeline script at each `PIPELINE` keyword (comments
/// stripped line-wise first so a commented-out pipeline stays dormant).
fn split_script(src: &str) -> Vec<String> {
    let cleaned: String =
        src.lines().map(|l| l.split("--").next().unwrap_or("")).collect::<Vec<_>>().join("\n");
    let mut chunks = Vec::new();
    let mut current = String::new();
    for line in cleaned.lines() {
        if line.trim_start().to_ascii_uppercase().starts_with("PIPELINE")
            && !current.trim().is_empty()
        {
            chunks.push(std::mem::take(&mut current));
        }
        current.push_str(line);
        current.push('\n');
    }
    if !current.trim().is_empty() {
        chunks.push(current);
    }
    chunks
}

#[cfg(test)]
mod tests {
    use super::*;
    use quarry_corpus::{Corpus, CorpusConfig, NoiseConfig};

    fn system_with_corpus() -> (Quarry, Corpus) {
        let corpus = Corpus::generate(&CorpusConfig {
            noise: NoiseConfig::none(),
            ..CorpusConfig::tiny(21)
        });
        let mut q = Quarry::new(QuarryConfig::builder().build()).unwrap();
        q.ingest(corpus.docs.clone());
        (q, corpus)
    }

    const CITY_PIPELINE: &str = r#"
PIPELINE cities FROM corpus
EXTRACT infobox, rules
WHERE attribute IN ("name", "state", "population", "founded")
RESOLVE BY name
STORE INTO cities KEY name
"#;

    #[test]
    fn ingest_then_pipeline_then_query() {
        let (mut q, corpus) = system_with_corpus();
        let stats = q.run_pipeline(CITY_PIPELINE).unwrap();
        assert!(stats.rows_stored >= corpus.truth.cities.len());

        // The paper's exploitation path: keyword → suggested structured query,
        // both through one read session pinned to the post-pipeline LSN.
        let city = &corpus.truth.cities[0];
        let snap = q.snapshot();
        let (hits, candidates) = snap.keyword(&format!("population {}", city.name), 5);
        assert!(!hits.is_empty());
        assert!(!candidates.is_empty());
        let result = snap.query(&candidates[0].query).unwrap();
        assert!(
            result.rows.iter().flatten().any(|v| *v == Value::Int(city.population as i64)),
            "expected population {} in {result:?}",
            city.population
        );

        // DGE log saw generation and exploitation.
        let (gen, exploit) = q.dge.generation_exploitation_split();
        assert!(gen >= 2);
        assert!(exploit >= 2);
    }

    #[test]
    fn snapshot_store_versions_ingests() {
        let (mut q, corpus) = system_with_corpus();
        q.ingest(corpus.docs.clone()); // second identical snapshot
        let stats = q.snapshots.stats();
        assert_eq!(stats.versions, corpus.docs.len() * 2);
        assert!(stats.compression_ratio() > 1.5, "{}", stats.compression_ratio());
    }

    #[test]
    fn audit_flags_planted_outlier() {
        let (mut q, _) = system_with_corpus();
        q.run_pipeline(CITY_PIPELINE).unwrap();
        // Plant an impossible population on one row.
        let rows = q.db.scan_autocommit("cities").unwrap();
        let schema = q.db.schema("cities").unwrap();
        let pi = schema.column_index("population").unwrap();
        let mut victim = rows[0].clone();
        victim[pi] = Value::Int(-5_000_000);
        let key = schema.key_of(&rows[0]);
        let tx = q.db.begin();
        q.db.update(tx, "cities", &key, victim).unwrap();
        q.db.commit(tx).unwrap();

        let flags = q.audit_table("cities").unwrap();
        assert!(
            flags.iter().any(|s| s.attribute == "population"),
            "expected population flag, got {flags:?}"
        );
    }

    #[test]
    fn lineage_traces_rows_to_source_spans() {
        let (mut q, _) = system_with_corpus();
        q.run_pipeline(CITY_PIPELINE).unwrap();
        let nodes = q.record_lineage("cities").unwrap();
        assert!(!nodes.is_empty());
        // At least one stored tuple must trace back to raw text.
        let traced = nodes.iter().filter(|(_, n)| !q.lineage.source_spans(*n).is_empty()).count();
        assert!(traced > 0, "no tuple traced to a source span");
        let text = q.explain(nodes[0].1);
        assert!(text.contains("tuple in cities"));
    }

    #[test]
    fn health_reflects_activity_and_staleness() {
        let (mut q, _) = system_with_corpus();
        q.run_pipeline(CITY_PIPELINE).unwrap();
        let statuses = q.health_check();
        assert!(statuses.iter().all(|(_, s)| *s == quarry_debugger::HealthStatus::Healthy));
        // Let the clock run past the heartbeat timeout.
        for _ in 0..12 {
            q.health_check();
        }
        let statuses = q.health_check();
        assert!(statuses.iter().any(|(_, s)| *s == quarry_debugger::HealthStatus::Unresponsive));
    }

    #[test]
    fn monitors_fire_when_generation_moves_the_data() {
        let (mut q, corpus) = system_with_corpus();
        q.register_monitor(
            "city-count",
            Query::scan("cities").aggregate(None, quarry_query::engine::AggFn::Count, "name"),
        );
        // First pipeline run fires the monitor (first evaluation).
        q.run_pipeline(CITY_PIPELINE).unwrap();
        let fired =
            q.dge.events().iter().filter(|e| matches!(e, DgeEvent::MonitorFired { .. })).count();
        assert_eq!(fired, 1);
        // Quiet when nothing changes.
        assert!(q.check_monitors().is_empty());
        // Re-ingesting and re-running with the same corpus keeps the same
        // answer → still quiet.
        q.ingest(corpus.docs.clone());
        q.run_pipeline(CITY_PIPELINE).unwrap();
        let fired =
            q.dge.events().iter().filter(|e| matches!(e, DgeEvent::MonitorFired { .. })).count();
        assert_eq!(fired, 1, "unchanged answer must not re-fire");
    }

    #[test]
    fn bad_pipeline_is_a_clean_error() {
        let (mut q, _) = system_with_corpus();
        assert!(matches!(q.run_pipeline("PIPELINE broken FROM"), Err(QuarryError::Parse(_))));
        // Execution failures carry the structured executor error.
        assert!(matches!(
            q.run_pipeline(
                "PIPELINE p FROM corpus EXTRACT nonexistent RESOLVE BY name STORE INTO t KEY name"
            ),
            Err(QuarryError::Pipeline(ExecError::UnknownExtractor(_)))
        ));
    }

    #[test]
    fn statically_broken_program_is_rejected_before_reading_documents() {
        let (mut q, _) = system_with_corpus();
        // The RESOLVE key is filtered out by the WHERE clause (QL005), so
        // the program can never store a keyed row — rejected up front.
        let broken = r#"PIPELINE p FROM corpus
EXTRACT infobox
WHERE attribute IN ("population", "state")
RESOLVE BY name
STORE INTO broken KEY name"#;
        match q.run_pipeline(broken) {
            Err(QuarryError::Lint(report)) => {
                assert!(report.diagnostics.iter().any(|d| d.code == "QL005"), "{report}");
            }
            other => panic!("expected Lint rejection, got {other:?}"),
        }
        // Nothing executed: no extraction cache, no stage report, no table.
        assert!(q.cache.is_empty());
        assert!(q.db.schema("broken").is_err());
    }

    #[test]
    fn check_apis_report_without_running_and_count_stats() {
        let (mut q, _) = system_with_corpus();
        assert_eq!(q.check_stats(), CheckStats::default());

        // Syntax errors come back as a QL000 report, not an Err.
        let report = q.check_program("PIPELINE broken FROM");
        assert_eq!(report.error_count(), 1);
        assert_eq!(report.diagnostics[0].code, "QL000");

        // A clean program checks clean and stores nothing.
        let report = q.check_program(CITY_PIPELINE);
        assert_eq!(report.error_count(), 0);
        assert!(q.db.schema("cities").is_err(), "check_program must not execute");

        // Structured-query checking against live schemas.
        q.run_pipeline(CITY_PIPELINE).unwrap();
        let bad = Query::scan("cities")
            .filter(vec![quarry_query::Predicate::Eq("ghost".into(), Value::Null)]);
        let report = q.snapshot().check_query(&bad);
        assert_eq!(report.error_count(), 1);
        assert_eq!(report.diagnostics[0].code, "QQ002");
        // ... and the same query is refused at execution time.
        assert!(matches!(
            q.snapshot().query(&bad),
            Err(QuarryError::Query(QueryError::Invalid(_)))
        ));

        let stats = q.check_stats();
        // check_program ×2 + check_query ×1 + run_pipeline's implicit gate.
        assert_eq!(stats.checks, 4);
        assert!(stats.errors >= 2, "{stats:?}");
        assert!(stats.total_check_micros >= stats.last_check_micros);
    }

    #[test]
    fn multi_pipeline_script_runs_in_order() {
        let (mut q, _) = system_with_corpus();
        let script = r#"
-- city facts first
PIPELINE cities FROM corpus
EXTRACT infobox
WHERE attribute IN ("name", "state", "population")
RESOLVE BY name
STORE INTO cities KEY name

-- then people
PIPELINE people FROM corpus
EXTRACT infobox
WHERE attribute IN ("name", "birth_year", "employer")
RESOLVE BY name
STORE INTO people KEY name
"#;
        let results = q.run_script(script).unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].0, "cities");
        assert_eq!(results[1].0, "people");
        assert!(q.db.row_count("cities").unwrap() > 0);
        assert!(q.db.row_count("people").unwrap() > 0);
        // A broken second pipeline stops the script with an error.
        assert!(q.run_script("PIPELINE a FROM corpus EXTRACT infobox RESOLVE BY name STORE INTO t1 KEY name\nPIPELINE b FROM").is_err());
    }

    #[test]
    fn user_corrections_flow_into_the_store() {
        let (mut q, corpus) = system_with_corpus();
        q.run_pipeline(CITY_PIPELINE).unwrap();
        q.users.register("editor", false).unwrap();
        for _ in 0..20 {
            q.users.record_contribution("editor", true).unwrap(); // trusted
        }
        let city = &corpus.truth.cities[0];
        let status = q
            .submit_correction(
                "editor",
                Correction {
                    table: "cities".into(),
                    key: vec![city.name.as_str().into()],
                    column: "population".into(),
                    value: Value::Int(123_456),
                },
            )
            .unwrap();
        assert_eq!(status, CorrectionStatus::Applied);
        let tx = q.db.begin();
        let row = q.db.get(tx, "cities", &[city.name.as_str().into()]).unwrap();
        q.db.commit(tx).unwrap();
        let schema = q.db.schema("cities").unwrap();
        assert_eq!(row[schema.column_index("population").unwrap()], Value::Int(123_456));
        // The DGE log recorded the feedback.
        assert!(q.dge.events().iter().any(|e| matches!(e, DgeEvent::Feedback { .. })));
    }

    #[test]
    fn browse_renders_cards_with_links() {
        let (mut q, corpus) = system_with_corpus();
        q.run_script(
            r#"PIPELINE cities FROM corpus
EXTRACT infobox
WHERE attribute IN ("name", "state", "population")
RESOLVE BY name
STORE INTO cities KEY name
PIPELINE companies FROM corpus
EXTRACT infobox
WHERE attribute IN ("name", "headquarters", "industry")
RESOLVE BY name
STORE INTO companies KEY name"#,
        )
        .unwrap();
        // A city that hosts a company headquarters gets a related-link.
        let hq = &corpus.truth.companies[0].headquarters;
        let card = q.browse("cities", &[hq.as_str().into()]).unwrap();
        assert!(card.contains(&format!("cities: {hq}")));
        assert!(card.contains("population ="));
        assert!(card.contains("related in companies:"), "{card}");
        // Missing entities error cleanly.
        assert!(q.browse("cities", &["Atlantis".into()]).is_err());
    }

    #[test]
    fn structured_query_cache_hits_and_write_invalidates() {
        let (mut q, corpus) = system_with_corpus();
        q.run_pipeline(CITY_PIPELINE).unwrap();
        let query =
            Query::scan("cities").aggregate(None, quarry_query::engine::AggFn::Count, "name");

        let first = q.snapshot().query(&query).unwrap();
        assert_eq!(q.query_cache_stats().hits, 0);
        let second = q.snapshot().query(&query).unwrap();
        assert_eq!(second, first);
        assert_eq!(q.query_cache_stats().hits, 1, "repeat between writes is a hit");

        // A committed write to the read table invalidates.
        q.users.register("editor", false).unwrap();
        for _ in 0..20 {
            q.users.record_contribution("editor", true).unwrap();
        }
        q.submit_correction(
            "editor",
            Correction {
                table: "cities".into(),
                key: vec![corpus.truth.cities[0].name.as_str().into()],
                column: "population".into(),
                value: Value::Int(1),
            },
        )
        .unwrap();
        let third = q.snapshot().query(&query).unwrap();
        assert_eq!(third, first, "count unchanged by an update");
        let stats = q.query_cache_stats();
        assert_eq!(stats.hits, 1, "post-write lookup must re-execute");
        assert!(stats.invalidations >= 1, "{stats:?}");

        // Queries on missing tables are uncacheable and error as before.
        assert!(matches!(
            q.snapshot().query(&Query::scan("ghost")),
            Err(QuarryError::Query(QueryError::Storage(_)))
        ));

        // Index DDL through the façade, visible in explain output.
        q.create_index("cities", "state").unwrap();
        let probe = Query::scan("cities")
            .filter(vec![quarry_query::Predicate::Eq("state".into(), "Wisconsin".into())]);
        let plan_text = q.snapshot().explain_query(&probe).unwrap();
        assert!(plan_text.contains("index eq(state"), "{plan_text}");
    }

    #[test]
    fn snapshot_pins_reads_while_the_writer_proceeds() {
        let (mut q, corpus) = system_with_corpus();
        q.run_pipeline(CITY_PIPELINE).unwrap();
        let count =
            Query::scan("cities").aggregate(None, quarry_query::engine::AggFn::Count, "name");
        let snap = q.snapshot();
        let before = snap.query(&count).unwrap();

        // Writer deletes a row after the capture.
        let schema = q.db.schema("cities").unwrap();
        let rows = q.db.scan_autocommit("cities").unwrap();
        let key = schema.key_of(&rows[0]);
        let tx = q.db.begin();
        q.db.delete(tx, "cities", &key).unwrap();
        q.db.commit(tx).unwrap();

        // The held session is immutable; a fresh one sees the delete.
        assert_eq!(snap.query(&count).unwrap(), before);
        let after = q.snapshot();
        assert!(after.lsn() > snap.lsn());
        let n = |r: &QueryResult| r.scalar().cloned();
        assert_eq!(
            n(&after.query(&count).unwrap()),
            Some(Value::Int(rows.len() as i64 - 1)),
            "fresh snapshot sees the delete"
        );
        // Keyword search stays pinned to the captured docs too.
        let (hits, _) = snap.keyword(&corpus.truth.cities[0].name, 3);
        assert!(!hits.is_empty());
    }

    #[test]
    fn qcache_race_window_is_closed_by_snapshot_versions() {
        // Regression for the old guard: the live path read table versions
        // before execution, executed against the *moving* store, and had
        // to re-read versions afterwards to avoid caching a result that a
        // concurrent writer had made inconsistent with the captured
        // versions. A snapshot executes against the captured versions by
        // construction, so its cache entry can never alias newer data.
        let (mut q, _) = system_with_corpus();
        q.run_pipeline(CITY_PIPELINE).unwrap();
        let count =
            Query::scan("cities").aggregate(None, quarry_query::engine::AggFn::Count, "name");

        let stale = q.snapshot(); // captured before the write
        let schema = q.db.schema("cities").unwrap();
        let rows = q.db.scan_autocommit("cities").unwrap();
        let tx = q.db.begin();
        q.db.delete(tx, "cities", &schema.key_of(&rows[0])).unwrap();
        q.db.commit(tx).unwrap();

        // The stale session executes *after* the write and caches its
        // result under the OLD versions (this is the old race window:
        // version capture and execution straddle a committed write).
        let old_count = stale.query(&count).unwrap();
        assert_eq!(old_count.scalar(), Some(&Value::Int(rows.len() as i64)));

        // A current session must not be served the stale entry.
        let fresh = q.snapshot().query(&count).unwrap();
        assert_eq!(fresh.scalar(), Some(&Value::Int(rows.len() as i64 - 1)));
        assert!(q.query_cache_stats().invalidations >= 1);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_read_shims_still_serve() {
        // The pre-snapshot API keeps working (with a deprecation warning)
        // and returns the same answers as an explicit read session.
        let (mut q, corpus) = system_with_corpus();
        q.run_pipeline(CITY_PIPELINE).unwrap();
        let query =
            Query::scan("cities").aggregate(None, quarry_query::engine::AggFn::Count, "name");
        assert_eq!(q.structured(&query).unwrap(), q.snapshot().query(&query).unwrap());
        let kw = format!("population {}", corpus.truth.cities[0].name);
        let (hits, cands) = q.keyword(&kw, 5);
        let (snap_hits, snap_cands) = q.snapshot().keyword(&kw, 5);
        assert_eq!(hits, snap_hits);
        assert_eq!(cands.len(), snap_cands.len());
        assert!(!q.suggest_forms(&kw, 3).is_empty());
        assert_eq!(q.explain_query(&query).unwrap(), q.snapshot().explain_query(&query).unwrap());
        assert_eq!(q.check_query(&query).error_count(), 0);
    }

    #[test]
    fn metrics_unify_facade_instrumentation_views() {
        let (mut q, _) = system_with_corpus();
        q.run_pipeline(CITY_PIPELINE).unwrap();
        let query =
            Query::scan("cities").aggregate(None, quarry_query::engine::AggFn::Count, "name");
        let snap = q.snapshot();
        snap.query(&query).unwrap();
        snap.query(&query).unwrap(); // cache hit
        snap.keyword("population", 3);
        assert!(snap.query(&Query::scan("ghost")).is_err());

        let snap = q.metrics();
        // Façade request counters and latency histograms.
        assert_eq!(snap.counter("facade.pipeline_runs"), 1);
        assert_eq!(snap.counter("facade.queries"), 3);
        assert_eq!(snap.counter("facade.query_errors"), 1);
        assert_eq!(snap.counter("facade.keyword_searches"), 1);
        assert_eq!(snap.histogram("facade.query_us").unwrap().count, 3);
        assert_eq!(snap.histogram("facade.pipeline_us").unwrap().count, 1);
        // Unified views: check gate, query cache, last ExecReport.
        assert_eq!(snap.counter("check.checks"), 1, "pipeline gate counted");
        assert_eq!(snap.counter("qcache.hits"), q.query_cache_stats().hits);
        assert!(
            snap.counters.keys().any(|k| k.starts_with("exec.op.")),
            "last pipeline report operators present: {:?}",
            snap.counters.keys().collect::<Vec<_>>()
        );
        // External layers record through a cloned handle.
        q.metrics_registry().incr("server.requests", 2);
        assert_eq!(q.metrics().counter("server.requests"), 2);
    }

    #[test]
    fn reingest_invalidates_extraction_cache() {
        let (mut q, corpus) = system_with_corpus();
        q.run_pipeline(CITY_PIPELINE).unwrap();
        assert!(!q.cache.is_empty());
        q.ingest(corpus.docs.clone());
        assert!(q.cache.is_empty());
    }
}
