//! MVCC read sessions over the façade: [`Snapshot`] and [`SharedQuarry`].
//!
//! The serve path used to funnel every request — including pure reads —
//! through one `Mutex<Quarry>` because the read methods took `&mut self`.
//! This module is the read half of the redesigned API:
//!
//! - [`Quarry::snapshot`] captures a [`Snapshot`]: an immutable view of
//!   the structured store pinned to one write-clock LSN (see
//!   [`DbSnapshot`]) plus the working document set. Every exploitation
//!   mode — structured query, keyword search, forms, explain, static
//!   checks, stats — is a `&self` method on it, and snapshots never block
//!   writers or each other.
//! - [`SharedQuarry`] packages the split for multi-threaded hosts: a
//!   single-writer mutex around the [`Quarry`] write surface next to a
//!   lock-free snapshot factory for readers. `quarry-serve` is built on
//!   it; nothing there locks the façade to read anymore.
//!
//! Shared mutable read-path state (lazily built keyword index and
//! translator, the query cache, check/metrics counters, the DGE log)
//! lives behind small internal locks keyed by generation — a snapshot
//! only ever *reuses* a cached structure whose key matches its own
//! pinned version, so no reader can observe another LSN's state. See
//! `docs/concurrency.md` for the full scheme.

use crate::dge::{DgeEvent, DgeLog};
use crate::qcache::{QueryCache, QueryCacheStats};
use crate::system::{CheckStats, Quarry, QuarryError};
use parking_lot::Mutex;
use quarry_corpus::Document;
use quarry_exec::{ExecReport, LintReport, MetricsRegistry, MetricsSnapshot};
use quarry_query::engine::{execute_snapshot, Query, QueryResult};
use quarry_query::forms::QueryForm;
use quarry_query::{CandidateQuery, InvertedIndex, SearchHit, Translator};
use quarry_storage::{Database, DbSnapshot};
use std::sync::Arc;

/// Read-path state shared between the writer ([`Quarry`]) and every
/// [`Snapshot`]. All interior locks are leaves — nothing is held while
/// calling back into the engine's own locks, and snapshot capture never
/// takes the writer's lock.
pub(crate) struct ReadState {
    pub(crate) db: Arc<Database>,
    /// (generation, published working set); the writer replaces the pair
    /// wholesale on ingest, so a capture is one lock + two copies.
    pub(crate) docs: Mutex<(u64, Arc<Vec<Document>>)>,
    /// Keyword index, lazily built and keyed by docs generation.
    index: Mutex<Option<(u64, Arc<InvertedIndex>)>>,
    /// Keyword→structured translator, lazily built and keyed by the
    /// snapshot LSN it was derived from (any committed write moves the
    /// clock, so a stale vocabulary can never serve a newer snapshot).
    translator: Mutex<Option<(u64, Arc<Translator>)>>,
    pub(crate) dge: DgeLog,
    pub(crate) qcache: Mutex<QueryCache>,
    pub(crate) check: Mutex<CheckStats>,
    pub(crate) last_report: Mutex<ExecReport>,
    pub(crate) metrics: MetricsRegistry,
}

impl ReadState {
    pub(crate) fn new(db: Arc<Database>, dge: DgeLog, metrics: MetricsRegistry) -> ReadState {
        ReadState {
            db,
            docs: Mutex::new((0, Arc::new(Vec::new()))),
            index: Mutex::new(None),
            translator: Mutex::new(None),
            dge,
            qcache: Mutex::new(QueryCache::default()),
            check: Mutex::new(CheckStats::default()),
            last_report: Mutex::new(ExecReport::new()),
            metrics,
        }
    }

    pub(crate) fn note_check(&self, report: &LintReport, start: std::time::Instant) {
        let micros = start.elapsed().as_micros() as u64;
        let mut cs = self.check.lock();
        cs.checks += 1;
        cs.errors += report.error_count() as u64;
        cs.warnings += report.warning_count() as u64;
        cs.last_check_micros = micros;
        cs.total_check_micros += micros;
    }

    /// The unified observability snapshot behind both [`Quarry::metrics`]
    /// and [`Snapshot::stats`].
    pub(crate) fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.metrics.snapshot();
        let cs = *self.check.lock();
        snap.counters.insert("check.checks".into(), cs.checks);
        snap.counters.insert("check.errors".into(), cs.errors);
        snap.counters.insert("check.warnings".into(), cs.warnings);
        snap.counters.insert("check.total_micros".into(), cs.total_check_micros);
        let qc = self.qcache.lock().stats();
        snap.counters.insert("qcache.hits".into(), qc.hits);
        snap.counters.insert("qcache.misses".into(), qc.misses);
        snap.counters.insert("qcache.invalidations".into(), qc.invalidations);
        snap.counters.insert("qcache.entries".into(), qc.entries as u64);
        let report = self.last_report.lock();
        for (name, n) in &report.counters {
            snap.counters.insert(format!("exec.{name}"), *n);
        }
        for (name, op) in &report.operators {
            snap.counters.insert(format!("exec.op.{name}.invocations"), op.invocations as u64);
            snap.counters.insert(format!("exec.op.{name}.micros"), op.elapsed.as_micros() as u64);
        }
        // Pager buffer-pool residency (present only for paged checkpoint
        // images); surfaced so shard residency is observable remotely.
        if let Some(pool) = self.db.image_pool_stats() {
            snap.counters.insert("pool.hits".into(), pool.hits);
            snap.counters.insert("pool.misses".into(), pool.misses);
            snap.counters.insert("pool.evictions".into(), pool.evictions);
        }
        if let Some(pages) = self.db.image_cached_pages() {
            snap.counters.insert("pool.cached_pages".into(), pages as u64);
        }
        snap
    }
}

/// An immutable read session pinned to one LSN of the write clock.
///
/// Captured by [`Quarry::snapshot`] or [`SharedQuarry::snapshot`] in O(1)
/// `Arc` clones (plus a per-table copy only for tables an uncommitted
/// transaction is touching at capture time). Every method takes `&self`;
/// many snapshots read concurrently while the single writer proceeds.
/// All results are bit-identical — rows, ordering, error kinds, keyword
/// scores, explain output — to what the live façade would have returned
/// at the captured LSN.
pub struct Snapshot {
    db: DbSnapshot,
    docs_gen: u64,
    docs: Arc<Vec<Document>>,
    shared: Arc<ReadState>,
}

impl Snapshot {
    pub(crate) fn capture(shared: &Arc<ReadState>) -> Snapshot {
        let db = shared.db.snapshot();
        let (docs_gen, docs) = {
            let guard = shared.docs.lock();
            (guard.0, Arc::clone(&guard.1))
        };
        Snapshot { db, docs_gen, docs, shared: Arc::clone(shared) }
    }

    /// The write-clock LSN this session is pinned to: the session sees
    /// every write committed at capture time and nothing stamped later.
    pub fn lsn(&self) -> u64 {
        self.db.lsn()
    }

    /// The pinned structured-store view.
    pub fn db(&self) -> &DbSnapshot {
        &self.db
    }

    /// The pinned working document set.
    pub fn docs(&self) -> &[Document] {
        &self.docs
    }

    fn index(&self) -> Arc<InvertedIndex> {
        let mut slot = self.shared.index.lock();
        match &*slot {
            Some((gen, ix)) if *gen == self.docs_gen => Arc::clone(ix),
            _ => {
                let ix = Arc::new(InvertedIndex::build(self.docs.iter()));
                *slot = Some((self.docs_gen, Arc::clone(&ix)));
                ix
            }
        }
    }

    fn translator(&self) -> Arc<Translator> {
        let mut slot = self.shared.translator.lock();
        match &*slot {
            Some((lsn, tr)) if *lsn == self.lsn() => Arc::clone(tr),
            _ => {
                let tr = Arc::new(Translator::from_snapshot(&self.db));
                *slot = Some((self.lsn(), Arc::clone(&tr)));
                tr
            }
        }
    }

    /// Run a structured query against the pinned view, consulting the
    /// shared result cache first.
    ///
    /// The cache guard is expressed in snapshot versions: the table
    /// versions keyed on are read off this immutable view in one capture,
    /// so — unlike the old live-path guard, which had to re-read versions
    /// after execution to detect a racing writer — a hit can never
    /// observe a mixed set of versions.
    pub fn query(&self, q: &Query) -> Result<QueryResult, QuarryError> {
        let start = std::time::Instant::now();
        let result = self.query_inner(q);
        self.shared.metrics.observe("facade.query_us", start.elapsed());
        self.shared.metrics.incr("facade.queries", 1);
        if result.is_err() {
            self.shared.metrics.incr("facade.query_errors", 1);
        }
        result
    }

    fn query_inner(&self, q: &Query) -> Result<QueryResult, QuarryError> {
        let fingerprint = q.fingerprint();
        let versions: Option<Vec<(String, u64)>> = q
            .tables()
            .into_iter()
            .map(|t| self.db.table_version(&t).ok().map(|v| (t, v)))
            .collect();
        if let Some(vs) = &versions {
            if let Some(result) = self.shared.qcache.lock().get(&fingerprint, vs) {
                self.shared.dge.record(DgeEvent::StructuredQuery {
                    rendered: q.display(),
                    rows: result.rows.len(),
                });
                return Ok(result);
            }
        }
        let result = execute_snapshot(&self.db, q)?;
        if let Some(vs) = versions {
            // No post-execution re-check: the snapshot cannot move.
            self.shared.qcache.lock().put(fingerprint, vs, result.clone());
        }
        self.shared
            .dge
            .record(DgeEvent::StructuredQuery { rendered: q.display(), rows: result.rows.len() });
        Ok(result)
    }

    /// Keyword search over the pinned documents: hits plus suggested
    /// structured queries. Read-only — the DGE side channel is internally
    /// synchronized, and the index/translator come from shared
    /// generation-keyed caches.
    pub fn keyword(&self, query: &str, k: usize) -> (Vec<SearchHit>, Vec<CandidateQuery>) {
        let start = std::time::Instant::now();
        let hits = self.index().search(query, k);
        let candidates = self.translator().translate(query, k);
        self.shared.dge.record(DgeEvent::KeywordQuery {
            query: query.to_string(),
            hits: hits.len(),
            candidates: candidates.len(),
        });
        self.shared.metrics.observe("facade.keyword_us", start.elapsed());
        self.shared.metrics.incr("facade.keyword_searches", 1);
        (hits, candidates)
    }

    /// Render the suggested queries for a keyword query as forms.
    pub fn suggest_forms(&self, query: &str, k: usize) -> Vec<QueryForm> {
        let (_, candidates) = self.keyword(query, k);
        candidates.iter().map(|c| quarry_query::forms::render(&c.query)).collect()
    }

    /// Explain a structured query against the pinned view: same physical
    /// plan and rendering as the live path at this LSN.
    pub fn explain_query(&self, q: &Query) -> Result<String, QuarryError> {
        Ok(q.explain_snapshot(&self.db)?)
    }

    /// Statically check a structured query against the pinned schemas.
    pub fn check_query(&self, q: &Query) -> LintReport {
        let start = std::time::Instant::now();
        let report = quarry_query::lint::check_query(&self.db, q);
        self.shared.note_check(&report, start);
        report
    }

    /// Hit/miss/invalidation counters of the shared query cache.
    pub fn query_cache_stats(&self) -> QueryCacheStats {
        self.shared.qcache.lock().stats()
    }

    /// The unified observability snapshot (same view as
    /// [`Quarry::metrics`]). Live counters, not pinned: stats reflect the
    /// system at call time, which is what a serving Stats endpoint wants.
    pub fn stats(&self) -> MetricsSnapshot {
        self.shared.metrics_snapshot()
    }
}

/// The façade split for multi-threaded hosts: a single writer behind a
/// mutex, unlimited concurrent readers through lock-free snapshots.
///
/// This type is how `quarry-serve` holds the system — reads
/// ([`SharedQuarry::snapshot`]) never acquire the writer lock, so a slow
/// (or parked) write request cannot block them, and vice versa.
pub struct SharedQuarry {
    writer: Mutex<Quarry>,
    shared: Arc<ReadState>,
}

impl SharedQuarry {
    /// Wrap a system for shared use.
    pub fn new(quarry: Quarry) -> SharedQuarry {
        let shared = quarry.read_state();
        SharedQuarry { writer: Mutex::new(quarry), shared }
    }

    /// Capture a read session at the current LSN. Never blocks on the
    /// writer lock.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot::capture(&self.shared)
    }

    /// Run a mutation under the single-writer lock.
    pub fn with_writer<R>(&self, f: impl FnOnce(&mut Quarry) -> R) -> R {
        f(&mut self.writer.lock())
    }

    /// A clone of the shared metrics registry (for host-layer counters).
    pub fn metrics_registry(&self) -> MetricsRegistry {
        self.shared.metrics.clone()
    }

    /// Unwrap the writer (e.g. at server shutdown).
    pub fn into_inner(self) -> Quarry {
        self.writer.into_inner()
    }
}

impl std::fmt::Debug for SharedQuarry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedQuarry").finish_non_exhaustive()
    }
}
