//! Standing queries — the "monitoring" exploitation mode of §3.2.
//!
//! §3.2 lists monitoring among the data-exploitation modes ("keyword
//! search, structured querying, browsing, visualization, monitoring"). A
//! monitor is a registered structured query; after each generation step the
//! system re-evaluates it and reports answers that changed — the
//! "tell me when the data about X moves" interaction.

use quarry_query::engine::{execute, Query, QueryResult};
use quarry_storage::Database;
use std::collections::BTreeMap;

/// A fired monitor: its query's answer changed.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorFire {
    /// Monitor name.
    pub name: String,
    /// Previous result (`None` on the first evaluation).
    pub previous: Option<QueryResult>,
    /// Current result.
    pub current: QueryResult,
}

/// A registry of standing queries with their last known answers.
#[derive(Debug, Default)]
pub struct MonitorSet {
    monitors: BTreeMap<String, (Query, Option<QueryResult>)>,
}

impl MonitorSet {
    /// Empty set.
    pub fn new() -> MonitorSet {
        MonitorSet::default()
    }

    /// Register (or replace) a standing query.
    pub fn register(&mut self, name: &str, query: Query) {
        self.monitors.insert(name.to_string(), (query, None));
    }

    /// Remove a monitor. Returns whether it existed.
    pub fn unregister(&mut self, name: &str) -> bool {
        self.monitors.remove(name).is_some()
    }

    /// Number of registered monitors.
    pub fn len(&self) -> usize {
        self.monitors.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.monitors.is_empty()
    }

    /// Re-evaluate every monitor against `db`; returns one fire per monitor
    /// whose answer changed (including the first evaluation). Queries that
    /// error (e.g. their table does not exist yet) are skipped silently —
    /// a monitor may be registered before its pipeline first runs.
    pub fn check(&mut self, db: &Database) -> Vec<MonitorFire> {
        let mut fires = Vec::new();
        for (name, (query, last)) in &mut self.monitors {
            let Ok(current) = execute(db, query) else { continue };
            if last.as_ref() != Some(&current) {
                fires.push(MonitorFire {
                    name: name.clone(),
                    previous: last.clone(),
                    current: current.clone(),
                });
                *last = Some(current);
            }
        }
        fires
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quarry_query::engine::AggFn;
    use quarry_storage::{Column, DataType, TableSchema, Value};

    fn db() -> Database {
        let db = Database::in_memory();
        db.create_table(
            TableSchema::new(
                "cities",
                vec![Column::new("name", DataType::Text), Column::new("population", DataType::Int)],
                &["name"],
                &[],
            )
            .unwrap(),
        )
        .unwrap();
        db
    }

    #[test]
    fn fires_on_first_evaluation_and_on_change() {
        let db = db();
        let mut ms = MonitorSet::new();
        ms.register("total-pop", Query::scan("cities").aggregate(None, AggFn::Sum, "population"));

        db.insert_autocommit("cities", vec!["a".into(), Value::Int(100)]).unwrap();
        let fires = ms.check(&db);
        assert_eq!(fires.len(), 1);
        assert!(fires[0].previous.is_none());

        // No change → no fire.
        assert!(ms.check(&db).is_empty());

        // Data moves → fire with old and new.
        db.insert_autocommit("cities", vec!["b".into(), Value::Int(50)]).unwrap();
        let fires = ms.check(&db);
        assert_eq!(fires.len(), 1);
        assert_eq!(fires[0].previous.as_ref().unwrap().scalar(), Some(&Value::Float(100.0)));
        assert_eq!(fires[0].current.scalar(), Some(&Value::Float(150.0)));
    }

    #[test]
    fn missing_table_is_silent_until_it_appears() {
        let db = Database::in_memory();
        let mut ms = MonitorSet::new();
        ms.register("later", Query::scan("not_yet"));
        assert!(ms.check(&db).is_empty());
        db.create_table(
            TableSchema::new("not_yet", vec![Column::new("x", DataType::Int)], &["x"], &[])
                .unwrap(),
        )
        .unwrap();
        assert_eq!(ms.check(&db).len(), 1);
    }

    #[test]
    fn unregister_and_replace() {
        let mut ms = MonitorSet::new();
        ms.register("m", Query::scan("t"));
        assert_eq!(ms.len(), 1);
        ms.register("m", Query::scan("t2")); // replace resets state
        assert_eq!(ms.len(), 1);
        assert!(ms.unregister("m"));
        assert!(!ms.unregister("m"));
        assert!(ms.is_empty());
    }
}
