//! The wire protocol: length-prefixed binary frames carrying JSON
//! payloads, with torn-frame detection.
//!
//! ## Frame layout (all integers little-endian)
//!
//! ```text
//! offset  size  field
//!      0     4  magic      b"QRYW"
//!      4     2  version    protocol version (currently 1)
//!      6     8  request id caller-chosen; echoed in the response
//!     14     4  len        payload length in bytes
//!     18     4  crc        frame_crc over (len-prefix ‖ payload)
//!     22   len  payload    serde_json-encoded Request or Response
//! ```
//!
//! The checksum reuses [`quarry_storage::wal::frame_crc`], which covers
//! the length prefix *and* the payload — the same discipline the WAL uses
//! so that a zero-filled or truncated tail can never parse as a valid
//! empty frame (`crc32(b"") == 0`). A frame whose checksum does not match
//! is torn: the reader cannot trust `len`, so it cannot resynchronise and
//! must drop the connection.

use quarry_storage::wal::frame_crc;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::io::{self, Read, Write};

use quarry_exec::MetricsSnapshot;
use quarry_query::engine::Query;
use quarry_storage::{TableSchema, Value};

/// Frame magic: the first four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"QRYW";
/// Protocol version carried in every frame.
pub const VERSION: u16 = 1;
/// Fixed header size preceding the payload.
pub const HEADER_LEN: usize = 22;
/// Default cap on payload size (16 MiB) — a defence against a hostile or
/// corrupt length prefix allocating unbounded memory.
pub const DEFAULT_MAX_FRAME: usize = 16 << 20;

/// Everything a client can ask the server to do.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Run a structured query.
    Query(Query),
    /// Run a QDL program over the server's working corpus.
    Qdl(String),
    /// Keyword search returning document hits and suggested queries.
    KeywordSearch {
        /// The keyword query string.
        query: String,
        /// Maximum hits / candidates to return.
        k: usize,
    },
    /// Explain a structured query's physical plan without running it.
    Explain(Query),
    /// Checkpoint the structured store.
    Checkpoint,
    /// Fetch a serialized metrics snapshot.
    Stats,
    /// Begin graceful shutdown: drain in-flight work, then stop accepting.
    Shutdown,
    /// Create a table in the structured store.
    CreateTable(TableSchema),
    /// Create a secondary index.
    CreateIndex {
        /// Table to index.
        table: String,
        /// Column to index.
        column: String,
    },
    /// Insert a batch of rows as one transaction (all or nothing).
    InsertRows {
        /// Target table.
        table: String,
        /// Rows in schema column order.
        rows: Vec<Vec<Value>>,
    },
    /// Delete rows by primary key as one transaction (all or nothing).
    DeleteRows {
        /// Target table.
        table: String,
        /// Primary-key values, one entry per row to delete.
        keys: Vec<Vec<Value>>,
    },
}

/// Mirror of `quarry_lang::ExecStats` with wire-stable integer widths.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct WireExecStats {
    /// Extractor invocations actually executed.
    pub extractor_runs: u64,
    /// Invocations served from the materialization cache.
    pub cache_hits: u64,
    /// Extractions entering the stream (post-dedup).
    pub extractions: u64,
    /// Per-document records entering resolution.
    pub records: u64,
    /// Entities after merging.
    pub entities: u64,
    /// Rows written to the store.
    pub rows_stored: u64,
}

impl From<&quarry_lang::ExecStats> for WireExecStats {
    fn from(s: &quarry_lang::ExecStats) -> WireExecStats {
        WireExecStats {
            extractor_runs: s.extractor_runs as u64,
            cache_hits: s.cache_hits as u64,
            extractions: s.extractions as u64,
            records: s.records as u64,
            entities: s.entities as u64,
            rows_stored: s.rows_stored as u64,
        }
    }
}

/// One keyword-search document hit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireHit {
    /// Matching document id.
    pub doc: u32,
    /// BM25 score (higher is better).
    pub score: f64,
}

/// One suggested structured query for a keyword search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireCandidate {
    /// The suggested query.
    pub query: Query,
    /// Ranking score (higher is better).
    pub score: f64,
    /// Which keywords each part consumed.
    pub explanation: String,
}

/// Which façade subsystem produced an error — mirrors
/// `quarry_core::QuarryError` variants plus serving-layer causes, so
/// clients can match on the cause without parsing messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorKind {
    /// QDL source failed to parse.
    Parse,
    /// A parsed pipeline failed during planning or execution.
    Pipeline,
    /// Storage failure.
    Storage,
    /// Structured-query failure.
    Query,
    /// Invalid corpus configuration.
    Corpus,
    /// Invalid integration configuration.
    Integrate,
    /// Rejected by static analysis.
    Lint,
    /// The request frame or payload was malformed.
    Protocol,
    /// Write rejected: this node serves reads only (a replica). Retry
    /// against the shard's primary.
    ReadOnly,
    /// A node behind a router could not be reached (dead shard with no
    /// promoted replica yet).
    Unavailable,
}

/// The result half of a [`Response`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Payload {
    /// Reply to [`Request::Ping`].
    Pong,
    /// A query's result set.
    Rows {
        /// Output column names.
        columns: Vec<String>,
        /// Result rows, in result order.
        rows: Vec<Vec<Value>>,
    },
    /// A pipeline run's statistics.
    PipelineStats(WireExecStats),
    /// Keyword-search output.
    Hits {
        /// Ranked document hits.
        hits: Vec<WireHit>,
        /// Suggested structured queries.
        candidates: Vec<WireCandidate>,
    },
    /// A rendered physical plan.
    Plan(String),
    /// The request completed with nothing to return (checkpoint, shutdown).
    Done,
    /// A metrics snapshot.
    Metrics(MetricsSnapshot),
    /// The request failed; the server stays up.
    Error {
        /// Which subsystem failed.
        kind: ErrorKind,
        /// The subsystem's rendered error.
        message: String,
    },
    /// Rejected by admission control: too many requests already in
    /// flight. Back off and retry.
    Overloaded,
    /// Rejected because the server is draining for shutdown.
    ShuttingDown,
}

/// What the server sends back for every request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Response {
    /// Echo of the request id this answers.
    pub id: u64,
    /// Server-side handling time in microseconds (admission to reply
    /// serialization; zero for rejections that never executed).
    pub server_micros: u64,
    /// The shard's write-clock LSN this response reflects: the snapshot
    /// LSN for reads, the post-commit LSN for writes, zero for replies
    /// that never touched the store. Routers forward it so a client's
    /// per-shard snapshot view is well-defined. Defaulted on decode so
    /// version-1 peers without the field still parse.
    #[serde(default)]
    pub lsn: u64,
    /// The outcome.
    pub payload: Payload,
}

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the connection cleanly between frames.
    Closed,
    /// The connection ended mid-frame (truncated header or payload).
    Truncated,
    /// The first four bytes were not [`MAGIC`].
    BadMagic([u8; 4]),
    /// Unsupported protocol version.
    BadVersion(u16),
    /// The length prefix exceeds the reader's frame-size limit.
    TooLarge {
        /// Claimed payload length.
        len: usize,
        /// The reader's limit.
        max: usize,
    },
    /// Checksum mismatch: the frame is torn, the stream cannot be trusted.
    BadCrc,
    /// The peer stopped sending mid-frame for longer than the stall
    /// budget (see [`MID_FRAME_STALL_RETRIES`]).
    Stalled,
    /// Underlying I/O failure (including read timeouts).
    Io(io::Error),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Truncated => write!(f, "connection ended mid-frame"),
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            FrameError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            FrameError::TooLarge { len, max } => {
                write!(f, "frame payload of {len} bytes exceeds limit {max}")
            }
            FrameError::BadCrc => write!(f, "frame checksum mismatch (torn frame)"),
            FrameError::Stalled => write!(f, "connection stalled mid-frame"),
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl FrameError {
    /// True when the error is a read timeout — the session uses these to
    /// wake up and check the shutdown flag, not as a protocol violation.
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            FrameError::Io(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut
        )
    }
}

/// Serialize `payload` into one frame and write it.
pub fn write_frame(w: &mut impl Write, req_id: u64, payload: &[u8]) -> io::Result<()> {
    let mut frame = Vec::with_capacity(HEADER_LEN + payload.len());
    frame.extend_from_slice(&MAGIC);
    frame.extend_from_slice(&VERSION.to_le_bytes());
    frame.extend_from_slice(&req_id.to_le_bytes());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&frame_crc(payload).to_le_bytes());
    frame.extend_from_slice(payload);
    w.write_all(&frame)?;
    w.flush()
}

/// Consecutive read timeouts tolerated *inside* a frame before the
/// connection is declared [`FrameError::Stalled`]. A timeout at a frame
/// boundary is an idle wakeup and propagates immediately (sessions use it
/// to poll the shutdown flag); a timeout after the first byte of a frame
/// just means the peer is slow, so the read retries — but a bounded
/// number of times, so a half-written frame cannot pin a session (and
/// with it, shutdown drain) forever.
pub const MID_FRAME_STALL_RETRIES: usize = 240;

/// Read exactly `buf.len()` bytes; distinguishes a clean EOF at the first
/// byte (`Closed` when `clean_eof`) from one mid-buffer (`Truncated`).
/// `clean_eof` is passed only for the first byte of a frame, so it also
/// marks the one place a read timeout is an idle wakeup rather than a
/// mid-frame stall.
fn read_exact_or(r: &mut impl Read, buf: &mut [u8], clean_eof: bool) -> Result<(), FrameError> {
    let mut filled = 0;
    let mut stalls = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(if clean_eof && filled == 0 {
                    FrameError::Closed
                } else {
                    FrameError::Truncated
                });
            }
            Ok(n) => {
                filled += n;
                stalls = 0;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if (e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut)
                    && !(clean_eof && filled == 0) =>
            {
                stalls += 1;
                if stalls > MID_FRAME_STALL_RETRIES {
                    return Err(FrameError::Stalled);
                }
            }
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(())
}

/// Read one frame, returning `(request id, payload bytes)`. `max_frame`
/// bounds the payload allocation.
pub fn read_frame(r: &mut impl Read, max_frame: usize) -> Result<(u64, Vec<u8>), FrameError> {
    let mut header = [0u8; HEADER_LEN];
    read_exact_or(r, &mut header[..1], true)?;
    read_exact_or(r, &mut header[1..], false)?;
    if header[..4] != MAGIC {
        let mut m = [0u8; 4];
        m.copy_from_slice(&header[..4]);
        return Err(FrameError::BadMagic(m));
    }
    let version = u16::from_le_bytes([header[4], header[5]]);
    if version != VERSION {
        return Err(FrameError::BadVersion(version));
    }
    let mut id8 = [0u8; 8];
    id8.copy_from_slice(&header[6..14]);
    let req_id = u64::from_le_bytes(id8);
    let len = u32::from_le_bytes([header[14], header[15], header[16], header[17]]) as usize;
    if len > max_frame {
        return Err(FrameError::TooLarge { len, max: max_frame });
    }
    let crc = u32::from_le_bytes([header[18], header[19], header[20], header[21]]);
    let mut payload = vec![0u8; len];
    read_exact_or(r, &mut payload, false)?;
    if frame_crc(&payload) != crc {
        return Err(FrameError::BadCrc);
    }
    Ok((req_id, payload))
}

fn encode<T: Serialize>(value: &T) -> io::Result<Vec<u8>> {
    serde_json::to_vec(value)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("encode: {e}")))
}

/// Serialize a request and write it as one frame under `req_id`.
pub fn write_request(w: &mut impl Write, req_id: u64, req: &Request) -> io::Result<()> {
    write_frame(w, req_id, &encode(req)?)
}

/// Serialize a response and write it as one frame under its own id.
pub fn write_response(w: &mut impl Write, resp: &Response) -> io::Result<()> {
    write_frame(w, resp.id, &encode(resp)?)
}

/// Read one frame and decode its payload as a [`Response`].
pub fn read_response(r: &mut impl Read, max_frame: usize) -> Result<Response, FrameError> {
    let (_, payload) = read_frame(r, max_frame)?;
    serde_json::from_slice(&payload).map_err(|e| {
        FrameError::Io(io::Error::new(io::ErrorKind::InvalidData, format!("bad response: {e}")))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use quarry_query::Predicate;

    fn round_trip(req: &Request) -> Request {
        let mut buf = Vec::new();
        write_request(&mut buf, 7, req).unwrap();
        let (id, payload) = read_frame(&mut buf.as_slice(), DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(id, 7);
        serde_json::from_slice(&payload).unwrap()
    }

    #[test]
    fn requests_round_trip_bit_identically() {
        let query = Query::scan("cities")
            .filter(vec![Predicate::Eq("state".into(), "Wisconsin".into())])
            .project(&["name", "population"]);
        for req in [
            Request::Ping,
            Request::Query(query.clone()),
            Request::Qdl("PIPELINE p FROM corpus".into()),
            Request::KeywordSearch { query: "population".into(), k: 5 },
            Request::Explain(query),
            Request::Checkpoint,
            Request::Stats,
            Request::Shutdown,
            Request::CreateIndex { table: "cities".into(), column: "state".into() },
            Request::InsertRows {
                table: "cities".into(),
                rows: vec![vec![Value::Int(1), Value::Text("Madison".into())]],
            },
            Request::DeleteRows { table: "cities".into(), keys: vec![vec![Value::Int(1)]] },
        ] {
            assert_eq!(round_trip(&req), req);
        }
    }

    #[test]
    fn responses_round_trip_with_float_and_null_values() {
        let resp = Response {
            id: 42,
            server_micros: 1234,
            lsn: 17,
            payload: Payload::Rows {
                columns: vec!["name".into(), "score".into()],
                rows: vec![
                    vec![Value::Text("Madison".into()), Value::Float(0.1 + 0.2)],
                    vec![Value::Null, Value::Int(-7)],
                ],
            },
        };
        let mut buf = Vec::new();
        write_response(&mut buf, &resp).unwrap();
        let back = read_response(&mut buf.as_slice(), DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn torn_payload_is_detected_by_crc() {
        let mut buf = Vec::new();
        write_request(&mut buf, 1, &Request::Qdl("PIPELINE x FROM corpus".into())).unwrap();
        let last = buf.len() - 1;
        buf[last] ^= 0xFF;
        assert!(matches!(
            read_frame(&mut buf.as_slice(), DEFAULT_MAX_FRAME),
            Err(FrameError::BadCrc)
        ));
    }

    #[test]
    fn zero_filled_stream_does_not_parse_as_a_frame() {
        // frame_crc covers the length prefix, so all-zero bytes (which
        // would carry len=0 and crc=0) must NOT look like a valid empty
        // frame — the WAL discipline this protocol mirrors.
        let zeros = [0u8; 64];
        assert!(matches!(
            read_frame(&mut zeros.as_slice(), DEFAULT_MAX_FRAME),
            Err(FrameError::BadMagic(_))
        ));
        // Even with a valid magic+version, a zeroed remainder is torn.
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&[0u8; 16]);
        assert!(matches!(
            read_frame(&mut buf.as_slice(), DEFAULT_MAX_FRAME),
            Err(FrameError::BadCrc)
        ));
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            read_frame(&mut buf.as_slice(), 1024),
            Err(FrameError::TooLarge { max: 1024, .. })
        ));
    }

    #[test]
    fn truncation_and_clean_close_are_distinguished() {
        assert!(matches!(
            read_frame(&mut [].as_slice(), DEFAULT_MAX_FRAME),
            Err(FrameError::Closed)
        ));
        let mut buf = Vec::new();
        write_request(&mut buf, 1, &Request::Ping).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(matches!(
            read_frame(&mut buf.as_slice(), DEFAULT_MAX_FRAME),
            Err(FrameError::Truncated)
        ));
        buf.truncate(HEADER_LEN / 2);
        assert!(matches!(
            read_frame(&mut buf.as_slice(), DEFAULT_MAX_FRAME),
            Err(FrameError::Truncated)
        ));
    }

    /// Yields `data`, then times out on every further read.
    struct StallingReader {
        data: Vec<u8>,
        pos: usize,
    }

    impl Read for StallingReader {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.pos < self.data.len() {
                let n = buf.len().min(self.data.len() - self.pos);
                buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
                self.pos += n;
                Ok(n)
            } else {
                Err(io::Error::new(io::ErrorKind::WouldBlock, "timeout"))
            }
        }
    }

    #[test]
    fn timeout_at_frame_boundary_is_an_idle_wakeup_not_a_stall() {
        // Nothing read yet: the timeout must surface immediately so a
        // session can poll its shutdown flag.
        let mut r = StallingReader { data: vec![], pos: 0 };
        match read_frame(&mut r, DEFAULT_MAX_FRAME) {
            Err(e) => assert!(e.is_timeout(), "expected idle timeout, got {e}"),
            Ok(_) => panic!("empty reader produced a frame"),
        }
    }

    #[test]
    fn timeout_mid_frame_retries_then_reports_stalled() {
        // A half-written frame must neither be dropped-and-misframed (the
        // partial bytes re-read as a fresh frame) nor retried forever: the
        // reader retries MID_FRAME_STALL_RETRIES times, then gives up.
        let mut buf = Vec::new();
        write_request(&mut buf, 1, &Request::Ping).unwrap();
        buf.truncate(buf.len() - 3);
        let mut r = StallingReader { data: buf, pos: 0 };
        assert!(matches!(read_frame(&mut r, DEFAULT_MAX_FRAME), Err(FrameError::Stalled)));
    }

    /// Interleaves each data byte with a burst of timeouts shorter than
    /// the stall budget — a slow-but-live peer.
    struct TricklingReader {
        data: Vec<u8>,
        pos: usize,
        timeouts_between: usize,
        pending: usize,
    }

    impl Read for TricklingReader {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.pending > 0 && self.pos > 0 {
                self.pending -= 1;
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "timeout"));
            }
            self.pending = self.timeouts_between;
            if self.pos < self.data.len() && !buf.is_empty() {
                buf[0] = self.data[self.pos];
                self.pos += 1;
                Ok(1)
            } else {
                Ok(0)
            }
        }
    }

    #[test]
    fn slow_byte_at_a_time_peer_still_delivers_a_whole_frame() {
        let mut buf = Vec::new();
        write_request(&mut buf, 9, &Request::Ping).unwrap();
        let mut r = TricklingReader { data: buf, pos: 0, timeouts_between: 20, pending: 0 };
        let (id, payload) = read_frame(&mut r, DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(id, 9);
        let req: Request = serde_json::from_slice(&payload).unwrap();
        assert_eq!(req, Request::Ping);
    }
}
