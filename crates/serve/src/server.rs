//! The serving loop: accept → bounded worker set → per-connection
//! sessions over the [`Quarry`](quarry_core::Quarry) façade.
//!
//! ## Concurrency model
//!
//! One accept thread hands sockets to a bounded set of worker threads
//! (sized from [`ExecPool`]'s thread heuristic unless configured); each
//! worker owns one connection at a time and runs its session to
//! completion. Request *execution* follows the façade's single-writer /
//! snapshot-reader split ([`SharedQuarry`]):
//!
//! - **Reads** — `Query`, `KeywordSearch`, `Explain`, `Stats` — capture
//!   an MVCC [`Snapshot`](quarry_core::Snapshot) pinned to the write
//!   clock's current LSN and execute against it on the worker thread.
//!   Snapshot capture never takes a lock a writer holds, so reads run
//!   concurrently with each other *and* with an in-flight write; each
//!   read observes exactly the committed state at its captured LSN.
//! - **Writes** — `Qdl`, `Checkpoint` — go through the single-writer
//!   mutex. Writers serialize among themselves only; a slow pipeline
//!   does not delay a single read.
//!
//! Each request is therefore equivalent to a serial execution at one
//! point of the write clock, and `Checkpoint` still gets quiescence of
//! the *write* surface for free — readers never see a half-applied
//! checkpoint because they read pinned snapshots.
//!
//! ## Admission control
//!
//! A request is admitted only while fewer than `max_in_flight` requests
//! are between admission and reply. Beyond that the server answers
//! [`Payload::Overloaded`] immediately instead of queueing unboundedly:
//! under overload clients get a fast, explicit signal to back off, and
//! latency of admitted work stays bounded — graceful degradation rather
//! than collapse.
//!
//! ## Shutdown
//!
//! A [`Request::Shutdown`] control frame (no signal handling) flips an
//! atomic flag and wakes the accept loop with a loop-back connection.
//! In-flight requests drain: each is answered before its session closes,
//! idle sessions notice the flag at their next read-timeout wakeup, and
//! [`Server::join`] returns the façade only after every thread has
//! exited — so a post-shutdown caller holds the exact state the last
//! drained request produced.

use crate::protocol::{
    read_frame, write_response, ErrorKind, FrameError, Payload, Request, Response, WireCandidate,
    WireHit, DEFAULT_MAX_FRAME,
};
use quarry_core::{Quarry, QuarryError, SharedQuarry};
use quarry_exec::{ExecPool, MetricsRegistry};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// A hook invoked for each admitted request before it executes.
pub type RequestHook = Arc<dyn Fn(&Request) + Send + Sync>;

/// Server tuning knobs. `Default` suits tests and local serving.
#[derive(Clone)]
pub struct ServeConfig {
    /// Worker threads handling connections; `0` sizes from
    /// [`ExecPool`]'s per-CPU heuristic (at least 4, so a small host
    /// still serves several sessions concurrently).
    pub workers: usize,
    /// Requests allowed between admission and reply before new ones are
    /// answered [`Payload::Overloaded`].
    pub max_in_flight: usize,
    /// Per-frame payload cap in bytes.
    pub max_frame: usize,
    /// Session read timeout. Timeouts do not close idle connections —
    /// they are wakeups where the session checks the shutdown flag.
    pub read_timeout: Duration,
    /// Session write timeout; a session that cannot flush a reply within
    /// it drops the connection.
    pub write_timeout: Duration,
    /// Test hook invoked after a request is admitted and before it
    /// executes; lets tests hold a request in flight deterministically.
    pub request_hook: Option<RequestHook>,
    /// Start in read-only mode: every write request is answered with
    /// [`ErrorKind::ReadOnly`]. Replicas serve this way until promotion
    /// flips it via [`Server::set_read_only`].
    pub read_only: bool,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 0,
            max_in_flight: 8,
            max_frame: DEFAULT_MAX_FRAME,
            read_timeout: Duration::from_millis(25),
            write_timeout: Duration::from_secs(5),
            request_hook: None,
            read_only: false,
        }
    }
}

impl std::fmt::Debug for ServeConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeConfig")
            .field("workers", &self.workers)
            .field("max_in_flight", &self.max_in_flight)
            .field("max_frame", &self.max_frame)
            .field("read_timeout", &self.read_timeout)
            .field("write_timeout", &self.write_timeout)
            .field("request_hook", &self.request_hook.as_ref().map(|_| "…"))
            .finish()
    }
}

/// Lock recovering from poisoning; the socket-queue mutex must stay
/// usable even if a worker thread panicked (the panic already failed its
/// own request — see the poison-recovery precedent in `quarry_exec`).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The façade is held as a [`SharedQuarry`] — never wrapped in a mutex
/// of its own — so read requests never contend on a server-side lock
/// (enforced by the `no_facade_mutex_in_serve` source scan and a CI
/// grep).
struct Shared {
    quarry: SharedQuarry,
    metrics: MetricsRegistry,
    in_flight: AtomicUsize,
    shutting_down: AtomicBool,
    read_only: AtomicBool,
    cfg: ServeConfig,
    addr: SocketAddr,
}

impl Shared {
    /// Flip the shutdown flag (idempotent) and wake the accept loop with
    /// a loop-back connection so it observes the flag without signals.
    fn begin_shutdown(&self) {
        if !self.shutting_down.swap(true, Ordering::SeqCst) {
            let _ = TcpStream::connect(self.addr);
        }
    }

    fn draining(&self) -> bool {
        self.shutting_down.load(Ordering::SeqCst)
    }
}

/// A running server. Dropping without [`Server::join`] still shuts the
/// threads down, but `join` is the way to get the façade back.
pub struct Server {
    shared: Arc<Shared>,
    accept: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// start serving `quarry` with `cfg`.
    pub fn start(quarry: Quarry, addr: impl ToSocketAddrs, cfg: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let metrics = quarry.metrics_registry();
        let workers =
            if cfg.workers == 0 { ExecPool::new(0).threads().max(4) } else { cfg.workers };
        let shared = Arc::new(Shared {
            quarry: SharedQuarry::new(quarry),
            metrics,
            in_flight: AtomicUsize::new(0),
            shutting_down: AtomicBool::new(false),
            read_only: AtomicBool::new(cfg.read_only),
            cfg,
            addr: local,
        });

        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let mut worker_handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let shared = Arc::clone(&shared);
            let rx = Arc::clone(&rx);
            let handle = std::thread::Builder::new()
                .name(format!("quarry-serve-worker-{i}"))
                .spawn(move || loop {
                    // Hold the receiver lock only while popping.
                    let stream = lock(&rx).recv();
                    match stream {
                        Ok(stream) => session(&shared, stream),
                        Err(_) => return, // accept loop gone, queue drained
                    }
                })?;
            worker_handles.push(handle);
        }

        let accept_shared = Arc::clone(&shared);
        let accept =
            std::thread::Builder::new().name("quarry-serve-accept".into()).spawn(move || {
                for conn in listener.incoming() {
                    if accept_shared.draining() {
                        break; // wake-up connection or late client: refuse
                    }
                    match conn {
                        Ok(stream) => {
                            accept_shared.metrics.incr("server.connections", 1);
                            if tx.send(stream).is_err() {
                                break;
                            }
                        }
                        Err(_) => continue, // transient accept failure
                    }
                }
                // Dropping `tx` lets workers drain the queue and exit.
            })?;

        Ok(Server { shared, accept: Some(accept), workers: worker_handles })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The registry the server and façade record into.
    pub fn metrics(&self) -> MetricsRegistry {
        self.shared.metrics.clone()
    }

    /// Requests currently between admission and reply.
    pub fn in_flight(&self) -> usize {
        self.shared.in_flight.load(Ordering::SeqCst)
    }

    /// True while write requests are being rejected with
    /// [`ErrorKind::ReadOnly`].
    pub fn read_only(&self) -> bool {
        self.shared.read_only.load(Ordering::SeqCst)
    }

    /// Flip read-only mode. Promotion calls `set_read_only(false)` after
    /// the replica's applier has been promoted; requests already past
    /// the check finish under the old mode.
    pub fn set_read_only(&self, read_only: bool) {
        self.shared.read_only.store(read_only, Ordering::SeqCst);
    }

    /// Start draining: stop accepting, answer new requests
    /// [`Payload::ShuttingDown`], let in-flight work finish. Idempotent;
    /// the same path a [`Request::Shutdown`] frame takes.
    pub fn begin_shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Shut down (if not already draining), wait for every thread to
    /// finish, and hand the façade back with all drained work applied.
    pub fn join(self) -> Quarry {
        let shared = Arc::clone(&self.shared);
        drop(self); // Drop shuts down and joins every thread.
        match Arc::try_unwrap(shared) {
            Ok(shared) => shared.quarry.into_inner(),
            // quarry-audit: allow(QA101, reason = "drop(self) joined every worker thread, so no other Arc<Shared> clone can remain")
            Err(_) => unreachable!("all server threads joined; no other Shared handles exist"),
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shared.begin_shutdown();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // Every request has drained; force buffered commits to stable
        // storage so relaxed durability modes don't lose drained work.
        let _ = self.shared.quarry.with_writer(|q| q.sync_wal());
    }
}

/// Run one connection's session to completion.
fn session(shared: &Shared, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(shared.cfg.read_timeout));
    let _ = stream.set_write_timeout(Some(shared.cfg.write_timeout));
    let _ = stream.set_nodelay(true);
    loop {
        match read_frame(&mut stream, shared.cfg.max_frame) {
            Ok((id, payload)) => {
                let resp = handle(shared, id, &payload);
                if write_response(&mut stream, &resp).is_err() {
                    return;
                }
                if shared.draining() {
                    return; // reply delivered; drain complete for this session
                }
            }
            Err(e) if e.is_timeout() => {
                if shared.draining() {
                    return;
                }
            }
            Err(FrameError::Closed) => return,
            Err(e) => {
                // Malformed frame: the stream cannot be resynchronised.
                // Best-effort error reply (id 0: the real id is unknown
                // or untrusted), then drop the connection. The *server*
                // stays up either way.
                shared.metrics.incr("server.protocol_errors", 1);
                let resp = Response {
                    id: 0,
                    server_micros: 0,
                    lsn: 0,
                    payload: Payload::Error { kind: ErrorKind::Protocol, message: e.to_string() },
                };
                let _ = write_response(&mut stream, &resp);
                return;
            }
        }
    }
}

/// Decode, admit, execute, and time one request.
fn handle(shared: &Shared, id: u64, payload: &[u8]) -> Response {
    shared.metrics.incr("server.requests", 1);
    let req: Request = match serde_json::from_slice(payload) {
        Ok(r) => r,
        // The frame passed its checksum, so framing is intact and the
        // connection can keep serving; only this request fails.
        Err(e) => {
            shared.metrics.incr("server.protocol_errors", 1);
            return Response {
                id,
                server_micros: 0,
                lsn: 0,
                payload: Payload::Error {
                    kind: ErrorKind::Protocol,
                    message: format!("undecodable request: {e}"),
                },
            };
        }
    };

    // Shutdown is a control frame: it must work even under overload, so
    // it bypasses admission.
    if req == Request::Shutdown {
        shared.begin_shutdown();
        return Response { id, server_micros: 0, lsn: 0, payload: Payload::Done };
    }
    if shared.draining() {
        return Response { id, server_micros: 0, lsn: 0, payload: Payload::ShuttingDown };
    }
    if shared.read_only.load(Ordering::SeqCst) && is_write(&req) {
        shared.metrics.incr("server.read_only_rejections", 1);
        return Response {
            id,
            server_micros: 0,
            lsn: 0,
            payload: Payload::Error {
                kind: ErrorKind::ReadOnly,
                message: "replica is read-only; retry against the shard primary".into(),
            },
        };
    }

    // Admission: reserve a slot or reject explicitly.
    let prev = shared.in_flight.fetch_add(1, Ordering::SeqCst);
    if prev >= shared.cfg.max_in_flight {
        shared.in_flight.fetch_sub(1, Ordering::SeqCst);
        shared.metrics.incr("server.overloaded", 1);
        return Response { id, server_micros: 0, lsn: 0, payload: Payload::Overloaded };
    }

    let start = Instant::now();
    let (payload, lsn) = execute(shared, &req);
    let elapsed = start.elapsed();
    shared.in_flight.fetch_sub(1, Ordering::SeqCst);
    shared.metrics.observe("server.request_us", elapsed);
    if matches!(payload, Payload::Error { .. }) {
        shared.metrics.incr("server.request_errors", 1);
    }
    Response { id, server_micros: elapsed.as_micros() as u64, lsn, payload }
}

/// True for requests that mutate the store and must be rejected on a
/// read-only (replica) node. `Shutdown` stays allowed: it is a control
/// frame, not a data write.
fn is_write(req: &Request) -> bool {
    matches!(
        req,
        Request::Qdl(_)
            | Request::Checkpoint
            | Request::CreateTable(_)
            | Request::CreateIndex { .. }
            | Request::InsertRows { .. }
            | Request::DeleteRows { .. }
    )
}

/// Invoke the test hook at a request's *execution point* — after a read
/// has captured its snapshot, or inside the writer critical section for
/// a write — so a hook that parks a request holds exactly the resources
/// that request would hold while executing. The backpressure tests rely
/// on this to prove a parked read blocks no other read and a parked
/// write blocks no read at all.
fn run_hook(shared: &Shared, req: &Request) {
    if let Some(hook) = &shared.cfg.request_hook {
        hook(req);
    }
}

/// Execute an admitted request against the façade, returning the payload
/// and the write-clock LSN the response reflects: the snapshot LSN for
/// reads, the post-commit LSN for writes.
///
/// Reads capture an MVCC snapshot and never touch the writer lock;
/// writes serialize through [`SharedQuarry::with_writer`].
fn execute(shared: &Shared, req: &Request) -> (Payload, u64) {
    match req {
        Request::Ping => {
            run_hook(shared, req);
            (Payload::Pong, 0)
        }
        Request::Query(query) => {
            let snap = shared.quarry.snapshot();
            run_hook(shared, req);
            let payload = match snap.query(query) {
                Ok(r) => Payload::Rows { columns: r.columns, rows: r.rows },
                Err(e) => error_payload(&e),
            };
            (payload, snap.lsn())
        }
        Request::Qdl(src) => shared.quarry.with_writer(|q| {
            run_hook(shared, req);
            let payload = match q.run_pipeline(src) {
                Ok(stats) => Payload::PipelineStats((&stats).into()),
                Err(e) => error_payload(&e),
            };
            (payload, q.db.current_lsn())
        }),
        Request::KeywordSearch { query, k } => {
            let snap = shared.quarry.snapshot();
            run_hook(shared, req);
            let (hits, candidates) = snap.keyword(query, *k);
            let payload = Payload::Hits {
                hits: hits.into_iter().map(|h| WireHit { doc: h.doc.0, score: h.score }).collect(),
                candidates: candidates
                    .into_iter()
                    .map(|c| WireCandidate {
                        query: c.query,
                        score: c.score,
                        explanation: c.explanation,
                    })
                    .collect(),
            };
            (payload, snap.lsn())
        }
        Request::Explain(query) => {
            let snap = shared.quarry.snapshot();
            run_hook(shared, req);
            let payload = match snap.explain_query(query) {
                Ok(plan) => Payload::Plan(plan),
                Err(e) => error_payload(&e),
            };
            (payload, snap.lsn())
        }
        Request::Checkpoint => shared.quarry.with_writer(|q| {
            run_hook(shared, req);
            let payload = match q.checkpoint() {
                Ok(()) => Payload::Done,
                Err(e) => error_payload(&e),
            };
            (payload, q.db.current_lsn())
        }),
        Request::Stats => {
            let snap = shared.quarry.snapshot();
            run_hook(shared, req);
            (Payload::Metrics(snap.stats()), snap.lsn())
        }
        Request::CreateTable(schema) => shared.quarry.with_writer(|q| {
            run_hook(shared, req);
            let payload = match q.db.create_table(schema.clone()) {
                Ok(()) => Payload::Done,
                Err(e) => error_payload(&QuarryError::Storage(e)),
            };
            (payload, q.db.current_lsn())
        }),
        Request::CreateIndex { table, column } => shared.quarry.with_writer(|q| {
            run_hook(shared, req);
            let payload = match q.create_index(table, column) {
                Ok(()) => Payload::Done,
                Err(e) => error_payload(&e),
            };
            (payload, q.db.current_lsn())
        }),
        Request::InsertRows { table, rows } => shared.quarry.with_writer(|q| {
            run_hook(shared, req);
            (
                apply_batch(q, table, rows, |db, tx, table, row| {
                    db.insert(tx, table, row.clone()).map(|_| ())
                }),
                q.db.current_lsn(),
            )
        }),
        Request::DeleteRows { table, keys } => shared.quarry.with_writer(|q| {
            run_hook(shared, req);
            (
                apply_batch(q, table, keys, |db, tx, table, key| db.delete(tx, table, key)),
                q.db.current_lsn(),
            )
        }),
        // Handled before admission; kept total for defensive completeness.
        Request::Shutdown => (Payload::Done, 0),
    }
}

/// Apply one batch of row operations as a single transaction: all rows
/// commit together or the transaction aborts and the error is returned.
fn apply_batch(
    q: &Quarry,
    table: &str,
    items: &[Vec<quarry_storage::Value>],
    op: impl Fn(
        &quarry_storage::Database,
        quarry_storage::TxId,
        &str,
        &Vec<quarry_storage::Value>,
    ) -> Result<(), quarry_storage::StorageError>,
) -> Payload {
    let tx = q.db.begin();
    for item in items {
        if let Err(e) = op(&q.db, tx, table, item) {
            let _ = q.db.abort(tx);
            return error_payload(&QuarryError::Storage(e));
        }
    }
    match q.db.commit(tx) {
        Ok(()) => Payload::Done,
        Err(e) => error_payload(&QuarryError::Storage(e)),
    }
}

/// Map a façade error onto the wire, preserving the variant and the
/// rendered message so clients (and the differential tests) can compare
/// failures exactly.
fn error_payload(e: &QuarryError) -> Payload {
    let kind = match e {
        QuarryError::Parse(_) => ErrorKind::Parse,
        QuarryError::Pipeline(_) => ErrorKind::Pipeline,
        QuarryError::Storage(_) => ErrorKind::Storage,
        QuarryError::Query(_) => ErrorKind::Query,
        QuarryError::Corpus(_) => ErrorKind::Corpus,
        QuarryError::Integrate(_) => ErrorKind::Integrate,
        QuarryError::Lint(_) => ErrorKind::Lint,
    };
    Payload::Error { kind, message: e.to_string() }
}

#[cfg(test)]
mod tests {
    /// The serve path must never wrap the façade in a mutex again: reads
    /// go through snapshots, writes through `SharedQuarry::with_writer`.
    /// Scan this crate's sources for the banned token (assembled from
    /// parts so this test doesn't match itself); CI runs the same grep.
    #[test]
    fn no_facade_mutex_in_serve() {
        let banned = format!("Mutex<{}>", "Quarry");
        let src = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("src");
        for entry in std::fs::read_dir(&src).expect("read crate src dir") {
            let path = entry.expect("dir entry").path();
            if path.extension().and_then(|e| e.to_str()) != Some("rs") {
                continue;
            }
            let text = std::fs::read_to_string(&path).expect("read source file");
            assert!(
                !text.contains(&banned),
                "{} reintroduces {banned}: serve reads must stay lock-free",
                path.display()
            );
        }
    }
}
