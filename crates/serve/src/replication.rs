//! Primary→replica WAL shipping over TCP.
//!
//! Each serving node runs a [`ReplicationListener`] next to its request
//! port; replicas run a [`ReplicationClient`] that connects, handshakes,
//! and applies the primary's committed WAL frames through
//! [`ReplicaApplier`] — the storage layer's convergent replay path.
//!
//! ## Wire format
//!
//! Both directions reuse the WAL's frame encoding (`[len u32 LE]
//! [crc u32 LE][payload]`, checksum over length-prefix ‖ payload), so a
//! shipped data frame is byte-identical to the frame the primary wrote
//! to its own log. Control messages are payloads whose first byte is a
//! tag in `0xC1..=0xC6` — a range no [`LogRecord`] encoding starts with
//! (binary records start `0x01`, JSON records `0x7B`):
//!
//! ```text
//! 0xC1 hello    replica → primary   epoch u64, offset u64, fresh u8
//! 0xC2 seed     primary → replica   one seed LogRecord
//! 0xC3 ack      replica → primary   epoch u64, offset u64
//! 0xC4 reseed   primary → replica   epoch u64, start_offset u64
//! 0xC5 seed-end primary → replica   (empty)
//! 0xC6 resume   primary → replica   epoch u64, offset u64
//! ```
//!
//! ## Handshake
//!
//! The replica sends `hello` with its last applied `(epoch, offset)`
//! (`fresh = 1` when it has no state). The primary answers `resume` when
//! that position is still live — same checkpoint epoch, offset within
//! the log — and otherwise streams a **reseed**: `reseed`, the seed
//! records, `seed-end`. The replica buffers the seed and installs it
//! atomically at `seed-end`, so an interrupted seed (primary death
//! mid-stream) leaves the replica at its previous transaction boundary.
//!
//! ## Ack-LSN contract
//!
//! The replica acks `(epoch, offset)` after applying each batch; the
//! primary records the latest ack per connection
//! ([`ReplicationListener::progress`]). An acked offset means every
//! frame below it is applied *and* appended to the replica's own WAL —
//! promotion never rolls an acked position back. See
//! `docs/replication.md` for the full contract and split-brain stance.
//!
//! All decisions here are deterministic functions of the received
//! frames; timeouts only pace the loops, they never pick outcomes.

use quarry_storage::wal::frame_crc;
use quarry_storage::{parse_frames, Database, ReplicaApplier, ReplicaPosition, TailPoll, WalTail};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

const TAG_HELLO: u8 = 0xC1;
const TAG_SEED: u8 = 0xC2;
const TAG_ACK: u8 = 0xC3;
const TAG_RESEED: u8 = 0xC4;
const TAG_SEED_END: u8 = 0xC5;
const TAG_RESUME: u8 = 0xC6;

/// Socket read timeout: how long one poll blocks for. Short, because the
/// ship loop interleaves ack draining with WAL tailing on one thread.
const POLL_TIMEOUT: Duration = Duration::from_millis(2);
/// Sleep when the tail is idle, pacing the poll loop without adding
/// meaningful replication lag.
const IDLE_SLEEP: Duration = Duration::from_micros(500);

/// See the poison-recovery precedent in `server.rs`.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn get_u64(b: &[u8], at: usize) -> io::Result<u64> {
    let bytes: [u8; 8] = b
        .get(at..at + 8)
        .and_then(|s| s.try_into().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "short control frame"))?;
    Ok(u64::from_le_bytes(bytes))
}

/// Write one WAL-format frame.
fn write_wire_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let mut frame = Vec::with_capacity(8 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&frame_crc(payload).to_le_bytes());
    frame.extend_from_slice(payload);
    w.write_all(&frame)?;
    w.flush()
}

fn control_frame(tag: u8, words: &[u64]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(1 + 8 * words.len());
    payload.push(tag);
    for w in words {
        put_u64(&mut payload, *w);
    }
    payload
}

/// Incremental WAL-frame reader over a socket with a short read timeout.
///
/// One [`FrameBuf::poll`] does a single read syscall (blocking up to the
/// socket timeout) and returns every *complete* frame accumulated so
/// far; partial frames stay buffered. A CRC failure is fatal — the
/// stream cannot be resynchronised, exactly like a torn WAL tail.
struct FrameBuf {
    buf: Vec<u8>,
    chunk: [u8; 16 * 1024],
}

impl FrameBuf {
    fn new() -> FrameBuf {
        FrameBuf { buf: Vec::new(), chunk: [0u8; 16 * 1024] }
    }

    fn poll(&mut self, stream: &mut TcpStream) -> io::Result<Vec<Vec<u8>>> {
        match stream.read(&mut self.chunk) {
            Ok(0) => return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "peer closed")),
            Ok(n) => self.buf.extend_from_slice(&self.chunk[..n]),
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {}
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
        let (records, consumed) = parse_frames(&self.buf, 0)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("torn frame: {e}")))?;
        self.buf.drain(..consumed);
        Ok(records.into_iter().map(|r| r.payload.to_vec()).collect())
    }
}

/// Latest known state of one replica connection, keyed by ack frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplicaProgress {
    /// Checkpoint epoch the replica last acked under.
    pub epoch: u64,
    /// Source-WAL offset the replica has applied through.
    pub acked: u64,
    /// False once the connection has closed.
    pub connected: bool,
}

/// The primary-side shipping endpoint: accepts replica connections and
/// streams committed WAL frames to each.
pub struct ReplicationListener {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    tracker: Arc<Mutex<HashMap<u64, ReplicaProgress>>>,
    accept: Option<std::thread::JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl ReplicationListener {
    /// Bind `addr` and start shipping `db`'s WAL to whoever connects.
    /// The database must be file-backed (an in-memory store has no log
    /// to ship; replica sessions are refused with a closed connection).
    pub fn start(db: Arc<Database>, addr: impl ToSocketAddrs) -> io::Result<ReplicationListener> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let tracker = Arc::new(Mutex::new(HashMap::new()));
        let handlers = Arc::new(Mutex::new(Vec::new()));

        let accept_shutdown = Arc::clone(&shutdown);
        let accept_tracker = Arc::clone(&tracker);
        let accept_handlers = Arc::clone(&handlers);
        let accept =
            std::thread::Builder::new().name("quarry-repl-accept".into()).spawn(move || {
                let mut next_id = 0u64;
                for conn in listener.incoming() {
                    if accept_shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    let id = next_id;
                    next_id += 1;
                    let db = Arc::clone(&db);
                    let tracker = Arc::clone(&accept_tracker);
                    let shutdown = Arc::clone(&accept_shutdown);
                    let handle = std::thread::Builder::new()
                        .name(format!("quarry-repl-ship-{id}"))
                        .spawn(move || {
                            let _ = serve_replica(&db, stream, &tracker, &shutdown, id);
                            if let Some(p) = lock(&tracker).get_mut(&id) {
                                p.connected = false;
                            }
                        });
                    if let Ok(handle) = handle {
                        lock(&accept_handlers).push(handle);
                    }
                }
            })?;

        Ok(ReplicationListener { addr: local, shutdown, tracker, accept: Some(accept), handlers })
    }

    /// The bound shipping address replicas connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Per-connection replica progress, in connection order.
    pub fn progress(&self) -> Vec<ReplicaProgress> {
        let tracker = lock(&self.tracker);
        let mut ids: Vec<&u64> = tracker.keys().collect();
        ids.sort();
        ids.iter().map(|id| tracker[id]).collect()
    }

    /// Stop accepting and shipping; joins every handler thread.
    pub fn shutdown(&mut self) {
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            let _ = TcpStream::connect(self.addr); // wake the accept loop
        }
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        let handles: Vec<_> = lock(&self.handlers).drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for ReplicationListener {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Stream a reseed: `reseed` header, every seed record, `seed-end`.
/// Returns the seed's `(epoch, start_offset)` for the tail cursor.
fn send_reseed(db: &Database, stream: &mut TcpStream) -> io::Result<(u64, u64)> {
    let seed = db.seed_state().map_err(|e| io::Error::other(format!("seed: {e}")))?;
    write_wire_frame(stream, &control_frame(TAG_RESEED, &[seed.epoch, seed.start_offset]))?;
    for rec in &seed.records {
        let bytes = rec
            .encode()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("encode: {e}")))?;
        let mut payload = Vec::with_capacity(1 + bytes.len());
        payload.push(TAG_SEED);
        payload.extend_from_slice(&bytes);
        write_wire_frame(stream, &payload)?;
    }
    write_wire_frame(stream, &control_frame(TAG_SEED_END, &[]))?;
    Ok((seed.epoch, seed.start_offset))
}

/// One replica session on the primary: handshake, then interleave ack
/// draining with WAL tailing until either side goes away.
fn serve_replica(
    db: &Database,
    mut stream: TcpStream,
    tracker: &Mutex<HashMap<u64, ReplicaProgress>>,
    shutdown: &AtomicBool,
    id: u64,
) -> io::Result<()> {
    stream.set_read_timeout(Some(POLL_TIMEOUT))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    stream.set_nodelay(true)?;
    let Some(wal_path) = db.wal_path() else {
        return Err(io::Error::new(io::ErrorKind::Unsupported, "in-memory primary has no WAL"));
    };
    let mut frames = FrameBuf::new();

    // Handshake: wait for hello.
    let hello = loop {
        if shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        if let Some(first) = frames.poll(&mut stream)?.into_iter().next() {
            break first;
        }
    };
    if hello.first() != Some(&TAG_HELLO) {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "expected hello"));
    }
    let replica_epoch = get_u64(&hello, 1)?;
    let replica_offset = get_u64(&hello, 9)?;
    let fresh = hello.get(17).copied().unwrap_or(1) != 0;

    // Resume only when the replica's position is still meaningful:
    // matching epoch and an offset inside the current log. Everything
    // else reseeds — the convergent, always-correct answer.
    let resumable =
        !fresh && replica_epoch == db.checkpoint_epoch() && replica_offset <= db.wal_len();
    let (mut ship_epoch, start) = if resumable {
        write_wire_frame(
            &mut stream,
            &control_frame(TAG_RESUME, &[replica_epoch, replica_offset]),
        )?;
        (replica_epoch, replica_offset)
    } else {
        send_reseed(db, &mut stream)?
    };
    let mut tail = WalTail::new(db.storage_backend(), wal_path, start);
    lock(tracker).insert(id, ReplicaProgress { epoch: ship_epoch, acked: 0, connected: true });

    loop {
        if shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        // Drain acks (also blocks up to POLL_TIMEOUT, pacing the loop).
        for frame in frames.poll(&mut stream)? {
            if frame.first() == Some(&TAG_ACK) {
                let epoch = get_u64(&frame, 1)?;
                let acked = get_u64(&frame, 9)?;
                lock(tracker).insert(id, ReplicaProgress { epoch, acked, connected: true });
            }
        }
        let polled = tail.poll();
        match polled {
            Ok(TailPoll::Records(records)) => {
                for rec in &records {
                    write_wire_frame(&mut stream, &rec.payload)?;
                }
            }
            Ok(TailPoll::Idle) => std::thread::sleep(IDLE_SLEEP),
            // The log shrank or the cursor no longer parses. If the
            // checkpoint epoch moved the log was truncated: renegotiate
            // with a fresh seed. If not, a "truncation" is our own
            // cursor racing the primary's buffered tail — just idle —
            // and a parse failure with an unmoved epoch is real
            // corruption, which closes the session.
            Ok(TailPoll::Truncated) | Err(_) => {
                let was_error = polled.is_err();
                let current = db.checkpoint_epoch();
                if current != ship_epoch {
                    let (epoch, start) = send_reseed(db, &mut stream)?;
                    tail.seek(start);
                    ship_epoch = epoch;
                } else if was_error {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "wal tail unreadable without truncation",
                    ));
                } else {
                    std::thread::sleep(IDLE_SLEEP);
                }
            }
        }
    }
}

/// Retry policy for a [`ReplicationClient`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicationClientConfig {
    /// Consecutive failed connection attempts before the client gives up
    /// (the replica keeps serving reads; promotion stays possible).
    pub reconnect_attempts: u32,
    /// Base delay before each reconnect; doubles per consecutive failure.
    pub backoff: Duration,
}

impl Default for ReplicationClientConfig {
    fn default() -> ReplicationClientConfig {
        ReplicationClientConfig { reconnect_attempts: 10, backoff: Duration::from_millis(5) }
    }
}

/// Observable state of the shipping client.
#[derive(Debug, Clone, Default)]
pub struct ReplicaStatus {
    /// True while a session with the primary is live.
    pub connected: bool,
    /// Completed reconnections over the client's lifetime.
    pub reconnects: u64,
    /// True once the retry budget is exhausted or apply failed; the
    /// shipping thread has exited.
    pub gave_up: bool,
    /// Rendered cause of the last session loss, if any.
    pub last_error: Option<String>,
}

/// The replica-side shipping endpoint: connects to a primary's
/// [`ReplicationListener`], applies its stream, and acks progress.
pub struct ReplicationClient {
    applier: Arc<Mutex<ReplicaApplier>>,
    status: Arc<Mutex<ReplicaStatus>>,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ReplicationClient {
    /// Start shipping `primary`'s WAL into `db`. The applier is the only
    /// writer to `db` until [`ReplicationClient::promote`].
    pub fn start(
        db: Arc<Database>,
        primary: SocketAddr,
        cfg: ReplicationClientConfig,
    ) -> ReplicationClient {
        let applier = Arc::new(Mutex::new(ReplicaApplier::new(db)));
        let status = Arc::new(Mutex::new(ReplicaStatus::default()));
        let stop = Arc::new(AtomicBool::new(false));

        let t_applier = Arc::clone(&applier);
        let t_status = Arc::clone(&status);
        let t_stop = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("quarry-repl-apply".into())
            .spawn(move || run_client(&t_applier, &t_status, &t_stop, primary, cfg))
            .ok();
        ReplicationClient { applier, status, stop, thread }
    }

    /// The shared applier; lock it to read position or pending state.
    /// Held briefly — the shipping thread takes the same lock per batch.
    pub fn applier(&self) -> Arc<Mutex<ReplicaApplier>> {
        Arc::clone(&self.applier)
    }

    /// Position applied and acked so far.
    pub fn position(&self) -> ReplicaPosition {
        lock(&self.applier).position()
    }

    /// Current client status snapshot.
    pub fn status(&self) -> ReplicaStatus {
        lock(&self.status).clone()
    }

    /// Stop shipping and join the thread. Idempotent.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }

    /// Promote this replica to primary: stop shipping, discard
    /// transactions whose commits never arrived, adopt the transaction-id
    /// floor, and sync the local log. The database is then writable by
    /// its new owner.
    pub fn promote(&mut self) -> quarry_storage::Result<()> {
        self.stop();
        lock(&self.applier).promote()
    }
}

impl Drop for ReplicationClient {
    fn drop(&mut self) {
        self.stop();
    }
}

/// The shipping thread: bounded-backoff reconnect loop around sessions.
fn run_client(
    applier: &Mutex<ReplicaApplier>,
    status: &Mutex<ReplicaStatus>,
    stop: &AtomicBool,
    primary: SocketAddr,
    cfg: ReplicationClientConfig,
) {
    let mut failures = 0u32;
    while !stop.load(Ordering::SeqCst) {
        if failures > 0 {
            if failures > cfg.reconnect_attempts {
                let mut st = lock(status);
                st.gave_up = true;
                st.connected = false;
                return;
            }
            let delay = cfg.backoff * 2u32.saturating_pow(failures - 1);
            // Sleep in small slices so stop() stays responsive.
            let mut remaining = delay;
            while !remaining.is_zero() && !stop.load(Ordering::SeqCst) {
                let slice = remaining.min(Duration::from_millis(5));
                std::thread::sleep(slice);
                remaining = remaining.saturating_sub(slice);
            }
            if stop.load(Ordering::SeqCst) {
                return;
            }
        }
        match client_session(applier, status, stop, primary) {
            // Clean stop.
            Ok(()) => return,
            Err(SessionEnd::Transport(e)) => {
                let mut st = lock(status);
                st.connected = false;
                st.last_error = Some(e.to_string());
                st.reconnects = st.reconnects.saturating_add(1);
                drop(st);
                failures += 1;
            }
            // A deterministic apply failure would repeat on every retry.
            Err(SessionEnd::Apply(e)) => {
                let mut st = lock(status);
                st.connected = false;
                st.gave_up = true;
                st.last_error = Some(e);
                return;
            }
        }
    }
}

enum SessionEnd {
    /// The connection died; retrying may succeed.
    Transport(io::Error),
    /// Applying a frame failed; retrying cannot help.
    Apply(String),
}

impl From<io::Error> for SessionEnd {
    fn from(e: io::Error) -> SessionEnd {
        SessionEnd::Transport(e)
    }
}

/// One connected session: hello, then apply-and-ack until the stream
/// ends or `stop` is set.
fn client_session(
    applier: &Mutex<ReplicaApplier>,
    status: &Mutex<ReplicaStatus>,
    stop: &AtomicBool,
    primary: SocketAddr,
) -> Result<(), SessionEnd> {
    let mut stream = TcpStream::connect(primary).map_err(SessionEnd::Transport)?;
    stream.set_read_timeout(Some(POLL_TIMEOUT)).map_err(SessionEnd::Transport)?;
    stream.set_write_timeout(Some(Duration::from_secs(5))).map_err(SessionEnd::Transport)?;
    stream.set_nodelay(true).map_err(SessionEnd::Transport)?;

    {
        let a = lock(applier);
        let pos = a.position();
        let mut payload = control_frame(TAG_HELLO, &[pos.epoch, pos.offset]);
        payload.push(u8::from(!a.attached()));
        drop(a);
        write_wire_frame(&mut stream, &payload)?;
    }
    lock(status).connected = true;

    let mut frames = FrameBuf::new();
    loop {
        if stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        let batch = frames.poll(&mut stream)?;
        if batch.is_empty() {
            continue; // the poll itself blocked up to POLL_TIMEOUT
        }
        // Apply the whole batch under one applier lock so promotion
        // serializes against it, then ack once.
        let mut ack_now = false;
        let mut a = lock(applier);
        for payload in &batch {
            let result = match payload.first() {
                Some(&TAG_RESEED) => {
                    let epoch = get_u64(payload, 1)?;
                    let start = get_u64(payload, 9)?;
                    a.begin_reseed(epoch, start);
                    Ok(())
                }
                Some(&TAG_SEED) => a.seed_record(&payload[1..]),
                Some(&TAG_SEED_END) => {
                    ack_now = true;
                    a.finish_reseed()
                }
                Some(&TAG_RESUME) => {
                    let epoch = get_u64(payload, 1)?;
                    let offset = get_u64(payload, 9)?;
                    a.resume(epoch, offset);
                    ack_now = true;
                    Ok(())
                }
                _ => {
                    ack_now = true;
                    a.apply_frame(payload)
                }
            };
            if let Err(e) = result {
                return Err(SessionEnd::Apply(format!("apply: {e}")));
            }
        }
        let pos = a.position();
        drop(a);
        if ack_now {
            write_wire_frame(&mut stream, &control_frame(TAG_ACK, &[pos.epoch, pos.offset]))?;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quarry_storage::{Column, DataType, TableSchema, Value};

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("quarry-shiprepl-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn schema() -> TableSchema {
        TableSchema::new(
            "t",
            vec![Column::new("id", DataType::Int), Column::new("val", DataType::Text)],
            &["id"],
            &[],
        )
        .unwrap()
    }

    fn dump(db: &Database) -> String {
        let mut out = String::new();
        for name in db.table_names() {
            out.push_str(&format!("{:?}\n", db.schema(&name).unwrap()));
            for row in db.scan_autocommit(&name).unwrap() {
                out.push_str(&format!("{row:?}\n"));
            }
        }
        out
    }

    /// Spin until the replica's acked position covers the primary's
    /// current log under the same epoch.
    fn await_caught_up(listener: &ReplicationListener, client: &ReplicationClient, db: &Database) {
        for _ in 0..4000 {
            let pos = client.position();
            if pos.epoch == db.checkpoint_epoch() && pos.offset >= db.wal_len() {
                // And the primary has seen the ack.
                let acked = listener
                    .progress()
                    .iter()
                    .any(|p| p.connected && p.epoch == pos.epoch && p.acked >= db.wal_len());
                if acked {
                    return;
                }
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        panic!("replica never caught up: {:?} vs len {}", client.position(), db.wal_len());
    }

    #[test]
    fn ships_seed_live_frames_and_checkpoint_reseed() {
        let dir = tmpdir("live");
        let primary = Arc::new(Database::open(dir.join("p.wal")).unwrap());
        primary.create_table(schema()).unwrap();
        primary.insert_autocommit("t", vec![Value::Int(1), Value::Text("a".into())]).unwrap();

        let mut listener = ReplicationListener::start(Arc::clone(&primary), "127.0.0.1:0").unwrap();
        let replica = Arc::new(Database::open(dir.join("r.wal")).unwrap());
        let mut client = ReplicationClient::start(
            Arc::clone(&replica),
            listener.local_addr(),
            ReplicationClientConfig::default(),
        );

        // Seed covers pre-connection history.
        await_caught_up(&listener, &client, &primary);
        assert_eq!(dump(&primary), dump(&replica));

        // Live tail covers post-connection writes.
        primary.insert_autocommit("t", vec![Value::Int(2), Value::Text("b".into())]).unwrap();
        await_caught_up(&listener, &client, &primary);
        assert_eq!(dump(&primary), dump(&replica));

        // A checkpoint truncates the log and bumps the epoch; the
        // session renegotiates with a reseed and keeps shipping.
        primary.checkpoint().unwrap();
        primary.insert_autocommit("t", vec![Value::Int(3), Value::Text("c".into())]).unwrap();
        await_caught_up(&listener, &client, &primary);
        assert_eq!(dump(&primary), dump(&replica));

        client.stop();
        listener.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn promotion_makes_the_replica_writable_at_a_boundary() {
        let dir = tmpdir("promote");
        let primary = Arc::new(Database::open(dir.join("p.wal")).unwrap());
        primary.create_table(schema()).unwrap();
        for i in 0..5 {
            primary
                .insert_autocommit("t", vec![Value::Int(i), Value::Text(format!("v{i}"))])
                .unwrap();
        }
        let mut listener = ReplicationListener::start(Arc::clone(&primary), "127.0.0.1:0").unwrap();
        let replica = Arc::new(Database::open(dir.join("r.wal")).unwrap());
        let mut client = ReplicationClient::start(
            Arc::clone(&replica),
            listener.local_addr(),
            ReplicationClientConfig::default(),
        );
        await_caught_up(&listener, &client, &primary);
        let expected = dump(&primary);
        listener.shutdown(); // primary "dies"
        client.promote().unwrap();
        assert_eq!(dump(&replica), expected);
        // The promoted node allocates fresh transaction ids and accepts
        // writes.
        replica.insert_autocommit("t", vec![Value::Int(99), Value::Text("post".into())]).unwrap();
        assert_eq!(replica.row_count("t").unwrap(), 6);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bounded_backoff_gives_up_against_a_dead_primary() {
        let dir = tmpdir("backoff");
        // Reserve an address with no listener behind it.
        let sock = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = sock.local_addr().unwrap();
        drop(sock);
        let replica = Arc::new(Database::open(dir.join("r.wal")).unwrap());
        let mut client = ReplicationClient::start(
            Arc::clone(&replica),
            addr,
            ReplicationClientConfig { reconnect_attempts: 2, backoff: Duration::from_millis(1) },
        );
        for _ in 0..4000 {
            if client.status().gave_up {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        let status = client.status();
        assert!(status.gave_up, "client should exhaust its retry budget");
        assert!(!status.connected);
        // A gave-up replica still promotes (to its last boundary: empty).
        client.promote().unwrap();
        assert!(replica.table_names().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
