//! `quarry-serve`: the network front door for a Quarry system.
//!
//! The source paper frames its blueprint as a shared *service* over
//! extracted structure — queries, keyword search, and feedback all
//! arrive from many concurrent users. This crate puts the
//! [`Quarry`](quarry_core::Quarry) façade behind a TCP socket using only
//! `std::net` (no async runtime, matching the std-only pattern of
//! `quarry_exec`):
//!
//! - [`protocol`] — length-prefixed binary frames with CRC torn-frame
//!   detection carrying JSON requests/responses (byte layout documented
//!   in `docs/serving.md`).
//! - [`server`] — accept loop, bounded worker set, per-connection
//!   sessions with timeouts and frame-size limits, admission control
//!   with explicit `Overloaded` rejections, and graceful drain-then-stop
//!   shutdown driven by a control frame.
//! - [`client`] — a blocking client with configurable bounded
//!   reconnect/backoff, used by the tests and the `pr5_loadgen` bench.
//! - [`replication`] — primary→replica WAL shipping: a listener that
//!   streams committed WAL frames and a client that applies them through
//!   the storage layer's convergent replay path (`docs/replication.md`).

#![forbid(unsafe_code)]

pub mod client;
pub mod protocol;
pub mod replication;
pub mod server;

pub use client::{Client, ClientConfig, ClientError};
pub use protocol::{
    ErrorKind, FrameError, Payload, Request, Response, WireCandidate, WireExecStats, WireHit,
};
pub use replication::{
    ReplicaProgress, ReplicaStatus, ReplicationClient, ReplicationClientConfig, ReplicationListener,
};
pub use server::{RequestHook, ServeConfig, Server};
