//! A small blocking client for the Quarry wire protocol.
//!
//! [`Client::request`] sends one frame and waits for the matching reply.
//! If the connection died since the last exchange (server restart, idle
//! drop), the client transparently reconnects and resends, governed by
//! [`ClientConfig`]: `reconnect_attempts` bounds how many fresh
//! connections one request may consume and `backoff` is the base delay
//! before each (doubling per attempt). The default is a single immediate
//! reconnect — the original hardcoded policy — which is safe because
//! every protocol request is either read-only or idempotent (QDL
//! pipelines re-run to the same stored rows; `InsertRows`/`DeleteRows`
//! re-apply to the same keys). Rejections ([`Payload::Overloaded`],
//! [`Payload::ShuttingDown`]) are **never** retried regardless of
//! configuration: they are the server's explicit back-off signal,
//! surfaced to the caller as typed errors.

use crate::protocol::{
    read_response, write_request, ErrorKind, FrameError, Payload, Request, Response, WireCandidate,
    WireExecStats, WireHit, DEFAULT_MAX_FRAME,
};
use quarry_exec::MetricsSnapshot;
use quarry_query::engine::Query;
use quarry_storage::{TableSchema, Value};
use std::fmt;
use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Any failure a client call can surface.
#[derive(Debug)]
pub enum ClientError {
    /// Connection or transport failure (after the one reconnect attempt).
    Io(io::Error),
    /// The reply frame was malformed.
    Frame(FrameError),
    /// The server answered with a typed error.
    Server {
        /// Which subsystem failed.
        kind: ErrorKind,
        /// The server's rendered error message.
        message: String,
    },
    /// Rejected by admission control; back off and retry.
    Overloaded,
    /// The server is draining for shutdown.
    ShuttingDown,
    /// The reply did not match the request (wrong id or payload shape).
    Unexpected(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Frame(e) => write!(f, "frame error: {e}"),
            ClientError::Server { kind, message } => {
                write!(f, "server error ({kind:?}): {message}")
            }
            ClientError::Overloaded => write!(f, "server overloaded"),
            ClientError::ShuttingDown => write!(f, "server shutting down"),
            ClientError::Unexpected(m) => write!(f, "unexpected reply: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// Retry policy for a [`Client`]: how it behaves when the transport dies
/// under a request. Server rejections are never retried whatever these
/// values say — only dead connections are.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientConfig {
    /// Reply/write timeout per exchange.
    pub read_timeout: Duration,
    /// Fresh connections a single request may consume after its original
    /// one dies. Zero disables reconnection entirely.
    pub reconnect_attempts: u32,
    /// Base delay before each reconnect attempt; doubles per attempt
    /// (`backoff`, `2·backoff`, `4·backoff`, …). Zero reconnects
    /// immediately.
    pub backoff: Duration,
}

impl Default for ClientConfig {
    /// The historical policy: one immediate reconnect, 30-second replies.
    fn default() -> ClientConfig {
        ClientConfig {
            read_timeout: Duration::from_secs(30),
            reconnect_attempts: 1,
            backoff: Duration::ZERO,
        }
    }
}

/// A blocking connection to a Quarry server.
pub struct Client {
    addr: SocketAddr,
    stream: TcpStream,
    next_id: u64,
    cfg: ClientConfig,
    max_frame: usize,
}

impl Client {
    /// Connect with the default policy (30-second reply timeout, one
    /// immediate reconnect).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        Client::connect_with_config(addr, ClientConfig::default())
    }

    /// Connect with an explicit reply timeout and the default reconnect
    /// policy.
    pub fn connect_with(addr: impl ToSocketAddrs, read_timeout: Duration) -> io::Result<Client> {
        Client::connect_with_config(addr, ClientConfig { read_timeout, ..ClientConfig::default() })
    }

    /// Connect with a full retry policy.
    pub fn connect_with_config(addr: impl ToSocketAddrs, cfg: ClientConfig) -> io::Result<Client> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address resolved"))?;
        let stream = Client::open(addr, cfg.read_timeout)?;
        Ok(Client { addr, stream, next_id: 1, cfg, max_frame: DEFAULT_MAX_FRAME })
    }

    fn open(addr: SocketAddr, read_timeout: Duration) -> io::Result<TcpStream> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(read_timeout))?;
        stream.set_write_timeout(Some(read_timeout))?;
        stream.set_nodelay(true)?;
        Ok(stream)
    }

    /// True when the transport error indicates a dead connection worth
    /// one reconnect (as opposed to a timeout or a protocol violation).
    fn is_disconnect(e: &ClientError) -> bool {
        match e {
            ClientError::Io(e) => matches!(
                e.kind(),
                io::ErrorKind::BrokenPipe
                    | io::ErrorKind::ConnectionReset
                    | io::ErrorKind::ConnectionAborted
                    | io::ErrorKind::NotConnected
                    | io::ErrorKind::UnexpectedEof
            ),
            ClientError::Frame(FrameError::Closed | FrameError::Truncated) => true,
            ClientError::Frame(FrameError::Io(e)) => {
                !matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
            }
            _ => false,
        }
    }

    fn exchange(&mut self, id: u64, req: &Request) -> Result<Response, ClientError> {
        write_request(&mut self.stream, id, req)?;
        read_response(&mut self.stream, self.max_frame).map_err(ClientError::Frame)
    }

    /// Send `req` and wait for its reply, reconnecting per the
    /// configured policy if the connection has died since the last
    /// exchange. Server rejections pass straight through — only
    /// transport deaths are retried.
    pub fn request(&mut self, req: &Request) -> Result<Response, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let mut attempt = 0u32;
        let resp = loop {
            match self.exchange(id, req) {
                Ok(resp) => break resp,
                Err(e) if Client::is_disconnect(&e) && attempt < self.cfg.reconnect_attempts => {
                    let delay = self.cfg.backoff * 2u32.saturating_pow(attempt);
                    if !delay.is_zero() {
                        std::thread::sleep(delay);
                    }
                    attempt += 1;
                    match Client::open(self.addr, self.cfg.read_timeout) {
                        Ok(stream) => self.stream = stream,
                        // Connect refused/unreachable: keep burning
                        // attempts against the same dead endpoint.
                        Err(ce) if attempt < self.cfg.reconnect_attempts => {
                            let _ = ce;
                        }
                        Err(ce) => return Err(ClientError::Io(ce)),
                    }
                }
                Err(e) => return Err(e),
            }
        };
        // A protocol-error reply carries id 0 (the server could not
        // trust the request id); accept it so the cause surfaces.
        if resp.id != id && resp.id != 0 {
            return Err(ClientError::Unexpected(format!(
                "response id {} for request {id}",
                resp.id
            )));
        }
        Ok(resp)
    }

    /// Send `req` and map rejection payloads onto typed errors, handing
    /// back everything else.
    fn call(&mut self, req: &Request) -> Result<Payload, ClientError> {
        match self.request(req)?.payload {
            Payload::Error { kind, message } => Err(ClientError::Server { kind, message }),
            Payload::Overloaded => Err(ClientError::Overloaded),
            Payload::ShuttingDown => Err(ClientError::ShuttingDown),
            other => Ok(other),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Ping)? {
            Payload::Pong => Ok(()),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Run a structured query; returns `(columns, rows)`.
    pub fn query(&mut self, q: &Query) -> Result<(Vec<String>, Vec<Vec<Value>>), ClientError> {
        match self.call(&Request::Query(q.clone()))? {
            Payload::Rows { columns, rows } => Ok((columns, rows)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Run a QDL program on the server.
    pub fn qdl(&mut self, src: &str) -> Result<WireExecStats, ClientError> {
        match self.call(&Request::Qdl(src.to_string()))? {
            Payload::PipelineStats(stats) => Ok(stats),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Keyword search; returns ranked hits and suggested queries.
    pub fn keyword(
        &mut self,
        query: &str,
        k: usize,
    ) -> Result<(Vec<WireHit>, Vec<WireCandidate>), ClientError> {
        match self.call(&Request::KeywordSearch { query: query.to_string(), k })? {
            Payload::Hits { hits, candidates } => Ok((hits, candidates)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Explain a structured query's physical plan.
    pub fn explain(&mut self, q: &Query) -> Result<String, ClientError> {
        match self.call(&Request::Explain(q.clone()))? {
            Payload::Plan(plan) => Ok(plan),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Checkpoint the server's structured store.
    pub fn checkpoint(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Checkpoint)? {
            Payload::Done => Ok(()),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Fetch the server's unified metrics snapshot.
    pub fn stats(&mut self) -> Result<MetricsSnapshot, ClientError> {
        match self.call(&Request::Stats)? {
            Payload::Metrics(snap) => Ok(snap),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Ask the server to drain and shut down.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Shutdown)? {
            Payload::Done => Ok(()),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Create a table in the server's structured store.
    pub fn create_table(&mut self, schema: TableSchema) -> Result<(), ClientError> {
        match self.call(&Request::CreateTable(schema))? {
            Payload::Done => Ok(()),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Create a secondary index.
    pub fn create_index(&mut self, table: &str, column: &str) -> Result<(), ClientError> {
        match self
            .call(&Request::CreateIndex { table: table.to_string(), column: column.to_string() })?
        {
            Payload::Done => Ok(()),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Insert a batch of rows as one transaction.
    pub fn insert_rows(&mut self, table: &str, rows: Vec<Vec<Value>>) -> Result<(), ClientError> {
        match self.call(&Request::InsertRows { table: table.to_string(), rows })? {
            Payload::Done => Ok(()),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Delete rows by primary key as one transaction.
    pub fn delete_rows(&mut self, table: &str, keys: Vec<Vec<Value>>) -> Result<(), ClientError> {
        match self.call(&Request::DeleteRows { table: table.to_string(), keys })? {
            Payload::Done => Ok(()),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }
}
