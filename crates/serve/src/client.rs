//! A small blocking client for the Quarry wire protocol.
//!
//! [`Client::request`] sends one frame and waits for the matching reply.
//! If the connection died since the last exchange (server restart, idle
//! drop), the client transparently reconnects **once** and resends —
//! safe here because every protocol request is either read-only or
//! idempotent (QDL pipelines re-run to the same stored rows). Rejections
//! ([`Payload::Overloaded`], [`Payload::ShuttingDown`]) are *not*
//! retried: they are the server's explicit back-off signal, surfaced to
//! the caller as typed errors.

use crate::protocol::{
    read_response, write_request, ErrorKind, FrameError, Payload, Request, Response, WireCandidate,
    WireExecStats, WireHit, DEFAULT_MAX_FRAME,
};
use quarry_exec::MetricsSnapshot;
use quarry_query::engine::Query;
use quarry_storage::Value;
use std::fmt;
use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Any failure a client call can surface.
#[derive(Debug)]
pub enum ClientError {
    /// Connection or transport failure (after the one reconnect attempt).
    Io(io::Error),
    /// The reply frame was malformed.
    Frame(FrameError),
    /// The server answered with a typed error.
    Server {
        /// Which subsystem failed.
        kind: ErrorKind,
        /// The server's rendered error message.
        message: String,
    },
    /// Rejected by admission control; back off and retry.
    Overloaded,
    /// The server is draining for shutdown.
    ShuttingDown,
    /// The reply did not match the request (wrong id or payload shape).
    Unexpected(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Frame(e) => write!(f, "frame error: {e}"),
            ClientError::Server { kind, message } => {
                write!(f, "server error ({kind:?}): {message}")
            }
            ClientError::Overloaded => write!(f, "server overloaded"),
            ClientError::ShuttingDown => write!(f, "server shutting down"),
            ClientError::Unexpected(m) => write!(f, "unexpected reply: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// A blocking connection to a Quarry server.
pub struct Client {
    addr: SocketAddr,
    stream: TcpStream,
    next_id: u64,
    read_timeout: Duration,
    max_frame: usize,
}

impl Client {
    /// Connect with a 30-second reply timeout.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        Client::connect_with(addr, Duration::from_secs(30))
    }

    /// Connect with an explicit reply timeout.
    pub fn connect_with(addr: impl ToSocketAddrs, read_timeout: Duration) -> io::Result<Client> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address resolved"))?;
        let stream = Client::open(addr, read_timeout)?;
        Ok(Client { addr, stream, next_id: 1, read_timeout, max_frame: DEFAULT_MAX_FRAME })
    }

    fn open(addr: SocketAddr, read_timeout: Duration) -> io::Result<TcpStream> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(read_timeout))?;
        stream.set_write_timeout(Some(read_timeout))?;
        stream.set_nodelay(true)?;
        Ok(stream)
    }

    /// True when the transport error indicates a dead connection worth
    /// one reconnect (as opposed to a timeout or a protocol violation).
    fn is_disconnect(e: &ClientError) -> bool {
        match e {
            ClientError::Io(e) => matches!(
                e.kind(),
                io::ErrorKind::BrokenPipe
                    | io::ErrorKind::ConnectionReset
                    | io::ErrorKind::ConnectionAborted
                    | io::ErrorKind::NotConnected
                    | io::ErrorKind::UnexpectedEof
            ),
            ClientError::Frame(FrameError::Closed | FrameError::Truncated) => true,
            ClientError::Frame(FrameError::Io(e)) => {
                !matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
            }
            _ => false,
        }
    }

    fn exchange(&mut self, id: u64, req: &Request) -> Result<Response, ClientError> {
        write_request(&mut self.stream, id, req)?;
        read_response(&mut self.stream, self.max_frame).map_err(ClientError::Frame)
    }

    /// Send `req` and wait for its reply, reconnecting once if the
    /// connection has died since the last exchange.
    pub fn request(&mut self, req: &Request) -> Result<Response, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let resp = match self.exchange(id, req) {
            Ok(resp) => resp,
            Err(e) if Client::is_disconnect(&e) => {
                self.stream = Client::open(self.addr, self.read_timeout)?;
                self.exchange(id, req)?
            }
            Err(e) => return Err(e),
        };
        // A protocol-error reply carries id 0 (the server could not
        // trust the request id); accept it so the cause surfaces.
        if resp.id != id && resp.id != 0 {
            return Err(ClientError::Unexpected(format!(
                "response id {} for request {id}",
                resp.id
            )));
        }
        Ok(resp)
    }

    /// Send `req` and map rejection payloads onto typed errors, handing
    /// back everything else.
    fn call(&mut self, req: &Request) -> Result<Payload, ClientError> {
        match self.request(req)?.payload {
            Payload::Error { kind, message } => Err(ClientError::Server { kind, message }),
            Payload::Overloaded => Err(ClientError::Overloaded),
            Payload::ShuttingDown => Err(ClientError::ShuttingDown),
            other => Ok(other),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Ping)? {
            Payload::Pong => Ok(()),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Run a structured query; returns `(columns, rows)`.
    pub fn query(&mut self, q: &Query) -> Result<(Vec<String>, Vec<Vec<Value>>), ClientError> {
        match self.call(&Request::Query(q.clone()))? {
            Payload::Rows { columns, rows } => Ok((columns, rows)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Run a QDL program on the server.
    pub fn qdl(&mut self, src: &str) -> Result<WireExecStats, ClientError> {
        match self.call(&Request::Qdl(src.to_string()))? {
            Payload::PipelineStats(stats) => Ok(stats),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Keyword search; returns ranked hits and suggested queries.
    pub fn keyword(
        &mut self,
        query: &str,
        k: usize,
    ) -> Result<(Vec<WireHit>, Vec<WireCandidate>), ClientError> {
        match self.call(&Request::KeywordSearch { query: query.to_string(), k })? {
            Payload::Hits { hits, candidates } => Ok((hits, candidates)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Explain a structured query's physical plan.
    pub fn explain(&mut self, q: &Query) -> Result<String, ClientError> {
        match self.call(&Request::Explain(q.clone()))? {
            Payload::Plan(plan) => Ok(plan),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Checkpoint the server's structured store.
    pub fn checkpoint(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Checkpoint)? {
            Payload::Done => Ok(()),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Fetch the server's unified metrics snapshot.
    pub fn stats(&mut self) -> Result<MetricsSnapshot, ClientError> {
        match self.call(&Request::Stats)? {
            Payload::Metrics(snap) => Ok(snap),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Ask the server to drain and shut down.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Shutdown)? {
            Payload::Done => Ok(()),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }
}
