//! Schema matching: which attributes of two extracted schemas correspond?
//!
//! The paper's example: `location` and `address` extracted from two
//! Wikipedia infoboxes "may in fact match". Evidence combined here:
//! label string similarity and instance-value distribution overlap
//! (Jaccard for categorical values, range overlap for numeric ones).
//! Correspondences feed a mediated-schema merge.

use crate::similarity::jaro_winkler;
use quarry_storage::Value;
use std::collections::{BTreeMap, HashSet};

/// An attribute with sample instance values (the matcher's input).
#[derive(Debug, Clone, PartialEq)]
pub struct AttributeProfile {
    /// Attribute label as extracted.
    pub name: String,
    /// Sample of observed values.
    pub values: Vec<Value>,
}

impl AttributeProfile {
    /// Build from a name and values.
    pub fn new(name: &str, values: Vec<Value>) -> AttributeProfile {
        AttributeProfile { name: name.to_string(), values }
    }

    fn numeric_range(&self) -> Option<(f64, f64)> {
        let nums: Vec<f64> = self.values.iter().filter_map(Value::as_f64).collect();
        if nums.len() * 2 < self.values.len().max(1) {
            return None; // mostly non-numeric
        }
        let lo = nums.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = nums.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        if lo.is_finite() && hi.is_finite() {
            Some((lo, hi))
        } else {
            None
        }
    }

    fn text_set(&self) -> HashSet<String> {
        self.values.iter().filter_map(Value::as_text).map(str::to_lowercase).collect()
    }
}

/// A discovered correspondence between two attributes.
#[derive(Debug, Clone, PartialEq)]
pub struct Correspondence {
    /// Attribute name on the left schema.
    pub left: String,
    /// Attribute name on the right schema.
    pub right: String,
    /// Combined evidence score in `[0,1]`.
    pub score: f64,
}

/// Configuration of the evidence combination.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchemaMatcher {
    /// Weight of label similarity.
    pub name_weight: f64,
    /// Weight of value-distribution overlap.
    pub value_weight: f64,
    /// Minimum combined score to report a correspondence.
    pub threshold: f64,
}

impl Default for SchemaMatcher {
    fn default() -> Self {
        SchemaMatcher { name_weight: 0.35, value_weight: 0.65, threshold: 0.45 }
    }
}

impl SchemaMatcher {
    /// Value-distribution overlap of two profiles.
    pub fn value_overlap(a: &AttributeProfile, b: &AttributeProfile) -> f64 {
        match (a.numeric_range(), b.numeric_range()) {
            (Some((alo, ahi)), Some((blo, bhi))) => {
                let inter = (ahi.min(bhi) - alo.max(blo)).max(0.0);
                let union = (ahi.max(bhi) - alo.min(blo)).max(f64::EPSILON);
                inter / union
            }
            (None, None) => {
                let sa = a.text_set();
                let sb = b.text_set();
                if sa.is_empty() && sb.is_empty() {
                    return 0.0;
                }
                let inter = sa.intersection(&sb).count() as f64;
                let union = (sa.len() + sb.len()) as f64 - inter;
                inter / union
            }
            // One numeric, one categorical: structurally different.
            _ => 0.0,
        }
    }

    /// Score one attribute pair.
    pub fn score(&self, a: &AttributeProfile, b: &AttributeProfile) -> f64 {
        let name = jaro_winkler(&a.name.to_lowercase(), &b.name.to_lowercase());
        // (Near-)identical labels are decisive on their own: two infoboxes
        // both calling a field `founded` correspond even when their value
        // ranges happen not to overlap in the sample.
        if name >= 0.95 {
            return name;
        }
        let value = Self::value_overlap(a, b);
        self.name_weight * name + self.value_weight * value
    }

    /// Find a 1:1 correspondence set between two schemas, greedily by score.
    pub fn match_schemas(
        &self,
        left: &[AttributeProfile],
        right: &[AttributeProfile],
    ) -> Vec<Correspondence> {
        let mut scored: Vec<(f64, usize, usize)> = Vec::new();
        for (i, a) in left.iter().enumerate() {
            for (j, b) in right.iter().enumerate() {
                let s = self.score(a, b);
                if s >= self.threshold {
                    scored.push((s, i, j));
                }
            }
        }
        scored.sort_by(|x, y| y.0.partial_cmp(&x.0).unwrap_or(std::cmp::Ordering::Equal));
        let mut used_l = HashSet::new();
        let mut used_r = HashSet::new();
        let mut out = Vec::new();
        for (s, i, j) in scored {
            if used_l.contains(&i) || used_r.contains(&j) {
                continue;
            }
            used_l.insert(i);
            used_r.insert(j);
            out.push(Correspondence {
                left: left[i].name.clone(),
                right: right[j].name.clone(),
                score: s,
            });
        }
        out
    }

    /// Merge two schemas under a correspondence set: corresponding
    /// attributes unify under the left (preferred) name; the rest pass
    /// through. Returns merged name → source names.
    pub fn merge(
        left: &[AttributeProfile],
        right: &[AttributeProfile],
        correspondences: &[Correspondence],
    ) -> BTreeMap<String, Vec<String>> {
        let mut merged: BTreeMap<String, Vec<String>> = BTreeMap::new();
        let mut right_mapped: HashSet<&str> = HashSet::new();
        for a in left {
            merged.insert(a.name.clone(), vec![a.name.clone()]);
        }
        for c in correspondences {
            if let Some(sources) = merged.get_mut(&c.left) {
                sources.push(c.right.clone());
                right_mapped.insert(c.right.as_str());
            }
        }
        for b in right {
            if !right_mapped.contains(b.name.as_str()) {
                merged.entry(b.name.clone()).or_insert_with(|| vec![b.name.clone()]);
            }
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(vals: &[&str]) -> Vec<Value> {
        vals.iter().map(|v| Value::Text((*v).into())).collect()
    }

    fn ints(vals: &[i64]) -> Vec<Value> {
        vals.iter().map(|&v| Value::Int(v)).collect()
    }

    #[test]
    fn location_address_match_via_values() {
        // Dissimilar labels, shared value domain — the paper's example shape.
        let a = AttributeProfile::new("location", texts(&["Madison", "Oakton", "Riverdale"]));
        let b = AttributeProfile::new("address", texts(&["Madison", "Riverdale", "Hillford"]));
        let m = SchemaMatcher::default();
        let s = m.score(&a, &b);
        assert!(s >= m.threshold, "score {s}");
    }

    #[test]
    fn numeric_ranges_overlap() {
        let a = AttributeProfile::new("population", ints(&[5_000, 900_000]));
        let b = AttributeProfile::new("residents", ints(&[10_000, 800_000]));
        let overlap = SchemaMatcher::value_overlap(&a, &b);
        assert!(overlap > 0.8, "{overlap}");
        // Disjoint ranges do not overlap.
        let c = AttributeProfile::new("founded", ints(&[1780, 1950]));
        assert_eq!(SchemaMatcher::value_overlap(&a, &c), 0.0);
    }

    #[test]
    fn numeric_vs_text_is_zero() {
        let a = AttributeProfile::new("population", ints(&[1, 2, 3]));
        let b = AttributeProfile::new("name", texts(&["x", "y"]));
        assert_eq!(SchemaMatcher::value_overlap(&a, &b), 0.0);
    }

    #[test]
    fn one_to_one_greedy_assignment() {
        let left = vec![
            AttributeProfile::new("population", ints(&[5_000, 900_000])),
            AttributeProfile::new("state", texts(&["Wisconsin", "Iowa", "Ohio"])),
        ];
        let right = vec![
            AttributeProfile::new("residents", ints(&[10_000, 700_000])),
            AttributeProfile::new("location", texts(&["Wisconsin", "Ohio", "Texas"])),
            AttributeProfile::new("founded", ints(&[1800, 1950])),
        ];
        let m = SchemaMatcher::default();
        let cs = m.match_schemas(&left, &right);
        let find = |l: &str| cs.iter().find(|c| c.left == l).map(|c| c.right.clone());
        assert_eq!(find("population"), Some("residents".into()));
        assert_eq!(find("state"), Some("location".into()));
        // 1:1: each right attribute used at most once.
        let mut rights: Vec<_> = cs.iter().map(|c| &c.right).collect();
        rights.sort();
        rights.dedup();
        assert_eq!(rights.len(), cs.len());
    }

    #[test]
    fn identical_labels_match_on_name_alone() {
        let a = AttributeProfile::new("founded", ints(&[1800, 1900]));
        let b = AttributeProfile::new("founded", ints(&[1950, 2000]));
        let m = SchemaMatcher::default();
        assert!(m.score(&a, &b) >= m.threshold);
    }

    #[test]
    fn merge_unifies_and_passes_through() {
        let left = vec![AttributeProfile::new("population", ints(&[1, 2]))];
        let right = vec![
            AttributeProfile::new("residents", ints(&[1, 2])),
            AttributeProfile::new("mayor", texts(&["a"])),
        ];
        let cs = vec![Correspondence {
            left: "population".into(),
            right: "residents".into(),
            score: 0.9,
        }];
        let merged = SchemaMatcher::merge(&left, &right, &cs);
        assert_eq!(merged["population"], vec!["population".to_string(), "residents".to_string()]);
        assert!(merged.contains_key("mayor"));
        assert!(!merged.contains_key("residents"));
    }

    #[test]
    fn empty_profiles_do_not_spuriously_match() {
        let a = AttributeProfile::new("alpha", vec![]);
        let b = AttributeProfile::new("omega", vec![]);
        let m = SchemaMatcher::default();
        assert!(m.score(&a, &b) < m.threshold);
    }
}
