//! Pairwise record matching: do two extracted records describe the same
//! real-world entity?

use crate::similarity::{jaro_winkler, name_similarity};
use quarry_storage::Value;
use std::collections::BTreeMap;

/// A record assembled from extractions: one entity mention with its fields.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Caller-assigned id (e.g. document id).
    pub id: usize,
    /// Field name → value.
    pub fields: BTreeMap<String, Value>,
}

impl Record {
    /// Build a record from `(field, value)` pairs.
    pub fn new(id: usize, fields: impl IntoIterator<Item = (&'static str, Value)>) -> Record {
        Record { id, fields: fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect() }
    }

    /// Text view of a field.
    pub fn text(&self, field: &str) -> Option<&str> {
        self.fields.get(field).and_then(Value::as_text)
    }
}

/// Matching thresholds and weights.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchConfig {
    /// Field holding the entity name (scored with name similarity).
    pub name_field: String,
    /// Weight of name similarity in the final score.
    pub name_weight: f64,
    /// Weight of supporting-field agreement.
    pub field_weight: f64,
    /// Score at or above which the pair is declared a match.
    pub match_threshold: f64,
    /// Score below which the pair is declared a non-match; the band between
    /// the two thresholds is "uncertain" — exactly the cases the paper
    /// routes to human intervention.
    pub nonmatch_threshold: f64,
}

impl Default for MatchConfig {
    fn default() -> Self {
        MatchConfig {
            name_field: "name".into(),
            name_weight: 0.7,
            field_weight: 0.3,
            match_threshold: 0.8,
            nonmatch_threshold: 0.55,
        }
    }
}

/// Invalid matcher configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum IntegrateError {
    /// `nonmatch_threshold` exceeds `match_threshold` (the uncertain band
    /// would be negative).
    InvertedThresholds {
        /// The configured match threshold.
        match_threshold: f64,
        /// The configured non-match threshold.
        nonmatch_threshold: f64,
    },
    /// A weight lies outside `[0,1]`.
    InvalidWeight {
        /// Which weight.
        parameter: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl std::fmt::Display for IntegrateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IntegrateError::InvertedThresholds { match_threshold, nonmatch_threshold } => write!(
                f,
                "match config: nonmatch_threshold {nonmatch_threshold} > match_threshold {match_threshold}"
            ),
            IntegrateError::InvalidWeight { parameter, value } => {
                write!(f, "match config: {parameter} = {value} outside [0,1]")
            }
        }
    }
}

impl std::error::Error for IntegrateError {}

impl MatchConfig {
    /// Check thresholds and weights are coherent.
    pub fn validate(&self) -> Result<(), IntegrateError> {
        for (parameter, value) in [
            ("name_weight", self.name_weight),
            ("field_weight", self.field_weight),
            ("match_threshold", self.match_threshold),
            ("nonmatch_threshold", self.nonmatch_threshold),
        ] {
            if !(0.0..=1.0).contains(&value) {
                return Err(IntegrateError::InvalidWeight { parameter, value });
            }
        }
        if self.nonmatch_threshold > self.match_threshold {
            return Err(IntegrateError::InvertedThresholds {
                match_threshold: self.match_threshold,
                nonmatch_threshold: self.nonmatch_threshold,
            });
        }
        Ok(())
    }
}

/// Trinary match decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchDecision {
    /// Confidently the same entity.
    Match,
    /// Confidently different entities.
    NonMatch,
    /// The automatic matcher cannot tell; a candidate for HI review.
    Uncertain,
}

/// Compute a match score in `[0,1]` for a record pair.
pub fn match_score(a: &Record, b: &Record, cfg: &MatchConfig) -> f64 {
    match_score_with(a, b, cfg, &name_similarity)
}

/// [`match_score`] with a pluggable name-similarity kernel, so callers
/// can interpose a memo cache (see `quarry_integrate::parallel`). The
/// kernel MUST be a pure function of its two arguments for results to
/// stay identical to [`match_score`].
pub fn match_score_with(
    a: &Record,
    b: &Record,
    cfg: &MatchConfig,
    name_sim_fn: &impl Fn(&str, &str) -> f64,
) -> f64 {
    let name_sim = match (a.text(&cfg.name_field), b.text(&cfg.name_field)) {
        (Some(na), Some(nb)) => name_sim_fn(na, nb),
        _ => 0.0,
    };
    // Supporting fields: agreement ratio over fields present in both.
    let mut agree = 0.0;
    let mut total = 0.0;
    for (k, va) in &a.fields {
        if k == &cfg.name_field {
            continue;
        }
        let Some(vb) = b.fields.get(k) else { continue };
        total += 1.0;
        agree += match (va, vb) {
            (Value::Text(x), Value::Text(y)) => jaro_winkler(x, y),
            (x, y) if x == y => 1.0,
            (x, y) => match (x.as_f64(), y.as_f64()) {
                // Near-equal numbers count partially (crawl edits nudge
                // values); the steep slope means a 2% relative difference
                // already reads as disagreement — essential for year-like
                // values where 1931 vs 1962 is "relatively close" but
                // semantically a different person.
                (Some(fx), Some(fy)) if fx != 0.0 || fy != 0.0 => {
                    let rel = (fx - fy).abs() / fx.abs().max(fy.abs());
                    (1.0 - rel * 50.0).max(0.0)
                }
                _ => 0.0,
            },
        };
    }
    let field_sim = if total == 0.0 { name_sim } else { agree / total };
    cfg.name_weight * name_sim + cfg.field_weight * field_sim
}

/// Decide a pair.
pub fn decide(a: &Record, b: &Record, cfg: &MatchConfig) -> (MatchDecision, f64) {
    decide_with(a, b, cfg, &name_similarity)
}

/// [`decide`] with a pluggable name-similarity kernel.
pub fn decide_with(
    a: &Record,
    b: &Record,
    cfg: &MatchConfig,
    name_sim_fn: &impl Fn(&str, &str) -> f64,
) -> (MatchDecision, f64) {
    let s = match_score_with(a, b, cfg, name_sim_fn);
    let d = if s >= cfg.match_threshold {
        MatchDecision::Match
    } else if s < cfg.nonmatch_threshold {
        MatchDecision::NonMatch
    } else {
        MatchDecision::Uncertain
    };
    (d, s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: usize, name: &str, employer: &str, year: i64) -> Record {
        Record::new(
            id,
            [
                ("name", Value::Text(name.into())),
                ("employer", Value::Text(employer.into())),
                ("birth_year", Value::Int(year)),
            ],
        )
    }

    #[test]
    fn same_person_under_variant_matches() {
        let a = rec(0, "David Smith", "Acme Systems", 1962);
        let b = rec(1, "D. Smith", "Acme Systems", 1962);
        let (d, s) = decide(&a, &b, &MatchConfig::default());
        assert_eq!(d, MatchDecision::Match, "score {s}");
    }

    #[test]
    fn different_people_do_not_match() {
        let a = rec(0, "David Smith", "Acme Systems", 1962);
        let b = rec(1, "Laura Johnson", "Nimbus Labs", 1975);
        let (d, _) = decide(&a, &b, &MatchConfig::default());
        assert_eq!(d, MatchDecision::NonMatch);
    }

    #[test]
    fn conflicting_evidence_is_uncertain() {
        // Same surname + initial-compatible name but disagreeing fields.
        let a = rec(0, "David Smith", "Acme Systems", 1962);
        let b = rec(1, "D. Smith", "Nimbus Labs", 1931);
        let (d, s) = decide(&a, &b, &MatchConfig::default());
        assert_eq!(d, MatchDecision::Uncertain, "score {s}");
    }

    #[test]
    fn score_is_bounded_and_symmetric() {
        let cfg = MatchConfig::default();
        let a = rec(0, "David Smith", "Acme", 1962);
        let b = rec(1, "Sarah Miller", "Vertex", 1970);
        let ab = match_score(&a, &b, &cfg);
        let ba = match_score(&b, &a, &cfg);
        assert!((0.0..=1.0).contains(&ab));
        assert!((ab - ba).abs() < 1e-9);
    }

    #[test]
    fn missing_fields_fall_back_to_name_only() {
        let a = Record::new(0, [("name", Value::Text("David Smith".into()))]);
        let b = Record::new(1, [("name", Value::Text("David Smith".into()))]);
        let (d, s) = decide(&a, &b, &MatchConfig::default());
        assert_eq!(d, MatchDecision::Match);
        assert!(s > 0.95);
    }

    #[test]
    fn near_numeric_values_score_partially() {
        let cfg = MatchConfig::default();
        let a = rec(0, "David Smith", "Acme", 1962);
        let b = rec(1, "David Smith", "Acme", 1963); // crawl-edit nudge
        let s = match_score(&a, &b, &cfg);
        assert!(s > 0.9, "{s}");
    }

    #[test]
    fn missing_name_scores_zero_name_component() {
        let cfg = MatchConfig::default();
        let a = Record::new(0, [("employer", Value::Text("Acme".into()))]);
        let b = Record::new(1, [("employer", Value::Text("Acme".into()))]);
        let s = match_score(&a, &b, &cfg);
        assert!(s < cfg.match_threshold);
    }
}
