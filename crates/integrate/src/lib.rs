//! Information-integration (II) operators.
//!
//! Extraction yields semantically heterogeneous structure — the paper's own
//! examples are `"David Smith"` vs `"D. Smith"` (the same person) and
//! `location` vs `address` (the same attribute). This crate resolves both
//! kinds of heterogeneity:
//!
//! - [`similarity`] — string similarity measures (Levenshtein, Jaro-Winkler,
//!   q-gram Jaccard, TF-IDF cosine, person-name similarity);
//! - [`blocking`] — candidate-pair generation that avoids the O(n²) compare
//!   (key blocking, sorted neighborhood, q-gram index);
//! - [`matcher`] — pairwise record match scoring over named fields;
//! - [`cluster`] — union-find transitive clustering of match decisions into
//!   entities, plus pairwise precision/recall scoring;
//! - [`schema_match`] — attribute correspondence discovery from label
//!   similarity and value-distribution overlap, and mediated-schema merging.

#![forbid(unsafe_code)]

pub mod blocking;
pub mod cluster;
pub mod matcher;
pub mod parallel;
pub mod schema_match;
pub mod similarity;

pub use cluster::{pairwise_score, Clustering, UnionFind};
pub use matcher::{IntegrateError, MatchConfig, MatchDecision, Record};
pub use parallel::{score_pairs, SimCache};
pub use schema_match::{Correspondence, SchemaMatcher};
