//! String similarity measures.
//!
//! All measures return values in `[0, 1]`, are symmetric, and give 1.0 for
//! identical inputs (property-tested below).

use std::collections::{HashMap, HashSet};

/// Levenshtein edit distance (insert/delete/substitute, unit costs).
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    // One-row DP.
    let mut row: Vec<usize> = (0..=b.len()).collect();
    for (i, ca) in a.iter().enumerate() {
        let mut prev = row[0];
        row[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let cost = if ca == cb { 0 } else { 1 };
            let val = (prev + cost).min(row[j] + 1).min(row[j + 1] + 1);
            prev = row[j + 1];
            row[j + 1] = val;
        }
    }
    row[b.len()]
}

/// Levenshtein similarity: `1 - dist / max_len`.
pub fn levenshtein_sim(a: &str, b: &str) -> f64 {
    let max = a.chars().count().max(b.chars().count());
    if max == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max as f64
}

/// Jaro similarity.
pub fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_used = vec![false; b.len()];
    let mut matches = 0usize;
    let mut a_matched = Vec::new();
    for (i, ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_used[j] && b[j] == *ca {
                b_used[j] = true;
                a_matched.push(i);
                matches += 1;
                break;
            }
        }
    }
    if matches == 0 {
        return 0.0;
    }
    // Count transpositions among matched characters.
    let b_matched: Vec<usize> =
        b_used.iter().enumerate().filter(|(_, &u)| u).map(|(j, _)| j).collect();
    let transpositions = a_matched.iter().zip(&b_matched).filter(|(&i, &j)| a[i] != b[j]).count();
    let m = matches as f64;
    let t = transpositions as f64 / 2.0;
    (m / a.len() as f64 + m / b.len() as f64 + (m - t) / m) / 3.0
}

/// Jaro-Winkler: Jaro boosted by the common prefix (up to 4 chars).
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let j = jaro(a, b);
    let prefix = a.chars().zip(b.chars()).take(4).take_while(|(x, y)| x == y).count();
    j + prefix as f64 * 0.1 * (1.0 - j)
}

/// Character q-grams of a string (padded with `#` so short strings work).
pub fn qgrams(s: &str, q: usize) -> HashSet<String> {
    assert!(q >= 1);
    let padded: Vec<char> = std::iter::repeat_n('#', q - 1)
        .chain(s.chars())
        .chain(std::iter::repeat_n('#', q - 1))
        .collect();
    padded.windows(q).map(|w| w.iter().collect::<String>()).collect()
}

/// Jaccard similarity of q-gram sets.
pub fn qgram_jaccard(a: &str, b: &str, q: usize) -> f64 {
    let ga = qgrams(a, q);
    let gb = qgrams(b, q);
    if ga.is_empty() && gb.is_empty() {
        return 1.0;
    }
    let inter = ga.intersection(&gb).count() as f64;
    let union = (ga.len() + gb.len()) as f64 - inter;
    inter / union
}

/// A TF-IDF vector space over a corpus of token bags, for cosine similarity
/// of longer strings (titles, descriptions).
#[derive(Debug, Clone, Default)]
pub struct TfIdf {
    doc_freq: HashMap<String, usize>,
    n_docs: usize,
}

impl TfIdf {
    /// Fit document frequencies over a corpus of texts.
    pub fn fit<'a>(texts: impl IntoIterator<Item = &'a str>) -> TfIdf {
        let mut model = TfIdf::default();
        for t in texts {
            model.n_docs += 1;
            let tokens: HashSet<String> = Self::tokens(t).collect();
            for tok in tokens {
                *model.doc_freq.entry(tok).or_insert(0) += 1;
            }
        }
        model
    }

    fn tokens(t: &str) -> impl Iterator<Item = String> + '_ {
        t.split(|c: char| !c.is_alphanumeric()).filter(|w| !w.is_empty()).map(|w| w.to_lowercase())
    }

    fn vector(&self, text: &str) -> HashMap<String, f64> {
        let mut tf: HashMap<String, f64> = HashMap::new();
        for tok in Self::tokens(text) {
            *tf.entry(tok).or_insert(0.0) += 1.0;
        }
        for (tok, w) in tf.iter_mut() {
            let df = self.doc_freq.get(tok).copied().unwrap_or(0);
            let idf = ((self.n_docs as f64 + 1.0) / (df as f64 + 1.0)).ln() + 1.0;
            *w *= idf;
        }
        tf
    }

    /// Cosine similarity of two texts under the fitted weights.
    pub fn cosine(&self, a: &str, b: &str) -> f64 {
        let va = self.vector(a);
        let vb = self.vector(b);
        let dot: f64 = va.iter().filter_map(|(t, w)| vb.get(t).map(|w2| w * w2)).sum();
        let na: f64 = va.values().map(|w| w * w).sum::<f64>().sqrt();
        let nb: f64 = vb.values().map(|w| w * w).sum::<f64>().sqrt();
        if na == 0.0 || nb == 0.0 {
            return if a == b { 1.0 } else { 0.0 };
        }
        (dot / (na * nb)).clamp(0.0, 1.0)
    }
}

/// Person-name similarity, variant-aware.
///
/// Handles the paper's "David Smith" vs "D. Smith" example plus the other
/// corpus variants ("Smith, David"; middle initials). Strategy: normalize
/// both names to `(first-ish, middle?, last)` parts, compare last names
/// strictly and first names leniently (an initial matches any name starting
/// with it).
pub fn name_similarity(a: &str, b: &str) -> f64 {
    let pa = NameParts::parse(a);
    let pb = NameParts::parse(b);
    let last = jaro_winkler(&pa.last, &pb.last);
    if last < 0.85 {
        return last * 0.5; // different surnames dominate the decision
    }
    let first = first_name_sim(&pa.first, &pb.first);
    0.6 * last + 0.4 * first
}

fn first_name_sim(a: &str, b: &str) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.5; // unknown first name: weak evidence either way
    }
    let ia = a.len() == 1;
    let ib = b.len() == 1;
    if ia || ib {
        let (init, full) = if ia { (a, b) } else { (b, a) };
        if full.starts_with(init) {
            // Compatible but inherently ambiguous: "D." could be any
            // D-name. Strong enough to match with supporting field
            // agreement, weak enough to land in the uncertain band without
            // it — exactly the pairs HI review exists for.
            return 0.75;
        }
        return 0.0;
    }
    jaro_winkler(a, b)
}

#[derive(Debug, PartialEq)]
struct NameParts {
    first: String,
    last: String,
}

impl NameParts {
    fn parse(name: &str) -> NameParts {
        let name = name.trim();
        // "Smith, David" form.
        if let Some((last, first)) = name.split_once(',') {
            let first_tok = first.trim().split(' ').next().unwrap_or("").trim_matches('.');
            return NameParts { first: first_tok.to_lowercase(), last: last.trim().to_lowercase() };
        }
        let toks: Vec<&str> = name.split(' ').filter(|t| !t.is_empty()).collect();
        match toks.len() {
            0 => NameParts { first: String::new(), last: String::new() },
            1 => NameParts { first: String::new(), last: toks[0].to_lowercase() },
            _ => NameParts {
                first: toks[0].trim_matches('.').to_lowercase(),
                // Skip roman-numeral generation suffixes for the last name.
                last: toks
                    .iter()
                    .rev()
                    .find(|t| !t.chars().all(|c| matches!(c, 'I' | 'V' | 'X')))
                    .unwrap_or(&toks[toks.len() - 1])
                    .trim_matches('.')
                    .to_lowercase(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("abc", ""), 3);
    }

    #[test]
    fn jaro_winkler_prefix_boost() {
        let j = jaro("martha", "marhta");
        assert!((j - 0.9444).abs() < 0.001, "{j}");
        let jw = jaro_winkler("martha", "marhta");
        assert!(jw > j);
        assert_eq!(jaro_winkler("abc", "abc"), 1.0);
        assert_eq!(jaro("abc", "xyz"), 0.0);
    }

    #[test]
    fn qgram_jaccard_behaviour() {
        assert_eq!(qgram_jaccard("night", "night", 2), 1.0);
        let s = qgram_jaccard("night", "nacht", 2);
        assert!(s > 0.0 && s < 0.5, "{s}");
        assert_eq!(qgram_jaccard("", "", 2), 1.0);
    }

    #[test]
    fn tfidf_cosine_ranks_shared_rare_words() {
        let model = TfIdf::fit([
            "a survey of entity resolution",
            "a survey of query optimization",
            "scalable entity resolution systems",
            "the common the words the",
        ]);
        let close = model.cosine("entity resolution", "scalable entity resolution systems");
        let far = model.cosine("entity resolution", "a survey of query optimization");
        assert!(close > far, "{close} vs {far}");
        assert!(model.cosine("same text", "same text") > 0.999);
        assert_eq!(model.cosine("", ""), 1.0);
    }

    #[test]
    fn name_similarity_handles_paper_example() {
        // The paper's motivating pair.
        assert!(name_similarity("David Smith", "D. Smith") > 0.8);
        // Inverted form.
        assert!(name_similarity("David Smith", "Smith, David") > 0.9);
        // Middle initial variant.
        assert!(name_similarity("David Smith", "David R. Smith") > 0.8);
        // Different people.
        assert!(name_similarity("David Smith", "Laura Johnson") < 0.5);
        // Same surname, different first name: not a match.
        assert!(name_similarity("David Smith", "Sarah Smith") < 0.85);
        // Initial incompatible with first name.
        assert!(name_similarity("David Smith", "K. Smith") < 0.7);
    }

    #[test]
    fn name_parsing_forms() {
        assert_eq!(
            NameParts::parse("Smith, David"),
            NameParts { first: "david".into(), last: "smith".into() }
        );
        assert_eq!(
            NameParts::parse("David Smith II"),
            NameParts { first: "david".into(), last: "smith".into() }
        );
        assert_eq!(
            NameParts::parse("D. Smith"),
            NameParts { first: "d".into(), last: "smith".into() }
        );
    }

    proptest! {
        #[test]
        fn prop_measures_bounded_symmetric(a in "[a-zA-Z .]{0,15}", b in "[a-zA-Z .]{0,15}") {
            for f in [levenshtein_sim, jaro, jaro_winkler] {
                let ab = f(&a, &b);
                let ba = f(&b, &a);
                prop_assert!((0.0..=1.0).contains(&ab), "{ab}");
                prop_assert!((ab - ba).abs() < 1e-12);
            }
            let q = qgram_jaccard(&a, &b, 2);
            prop_assert!((0.0..=1.0).contains(&q));
            prop_assert!((q - qgram_jaccard(&b, &a, 2)).abs() < 1e-12);
        }

        #[test]
        fn prop_identity_scores_one(a in "[a-zA-Z]{1,15}") {
            prop_assert_eq!(levenshtein_sim(&a, &a), 1.0);
            prop_assert_eq!(jaro(&a, &a), 1.0);
            prop_assert_eq!(jaro_winkler(&a, &a), 1.0);
            prop_assert_eq!(qgram_jaccard(&a, &a, 3), 1.0);
        }

        #[test]
        fn prop_levenshtein_triangle(a in "[a-z]{0,8}", b in "[a-z]{0,8}", c in "[a-z]{0,8}") {
            prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
        }
    }
}
