//! Blocking: generate candidate pairs without the O(n²) all-pairs compare.
//!
//! DESIGN.md calls blocking out for ablation (E2): turning it off means
//! every pair is scored, which is exact but quadratic; each strategy here
//! trades a little recall for a large cut in pairs considered.

use std::collections::{BTreeSet, HashMap};

/// A candidate pair of record indexes, always ordered `(lo, hi)`.
pub type Pair = (usize, usize);

fn ordered(a: usize, b: usize) -> Pair {
    if a < b {
        (a, b)
    } else {
        (b, a)
    }
}

/// No blocking: all `n·(n−1)/2` pairs (the exact baseline).
pub fn all_pairs(n: usize) -> Vec<Pair> {
    let mut out = Vec::with_capacity(n.saturating_sub(1) * n / 2);
    for i in 0..n {
        for j in i + 1..n {
            out.push((i, j));
        }
    }
    out
}

/// Key blocking: records sharing a blocking key are candidates.
///
/// `key` maps a record to its blocking key (e.g. lowercased last name).
pub fn key_blocking<T>(records: &[T], key: impl Fn(&T) -> String) -> Vec<Pair> {
    let mut buckets: HashMap<String, Vec<usize>> = HashMap::new();
    for (i, r) in records.iter().enumerate() {
        buckets.entry(key(r)).or_default().push(i);
    }
    let mut out = BTreeSet::new();
    for bucket in buckets.values() {
        for (x, &i) in bucket.iter().enumerate() {
            for &j in &bucket[x + 1..] {
                out.insert(ordered(i, j));
            }
        }
    }
    out.into_iter().collect()
}

/// Sorted-neighborhood blocking: sort by a key, slide a window of size `w`;
/// records within a window are candidates. Catches near-miss keys that pure
/// key blocking separates.
pub fn sorted_neighborhood<T>(records: &[T], key: impl Fn(&T) -> String, w: usize) -> Vec<Pair> {
    assert!(w >= 2, "window must cover at least 2 records");
    let mut order: Vec<usize> = (0..records.len()).collect();
    order.sort_by_key(|&i| key(&records[i]));
    let mut out = BTreeSet::new();
    for start in 0..order.len() {
        for off in 1..w {
            let Some(&j) = order.get(start + off) else { break };
            out.insert(ordered(order[start], j));
        }
    }
    out.into_iter().collect()
}

/// Q-gram blocking: records sharing at least `min_common` q-grams of their
/// key string are candidates. Robust to typos anywhere in the key.
pub fn qgram_blocking<T>(
    records: &[T],
    key: impl Fn(&T) -> String,
    q: usize,
    min_common: usize,
) -> Vec<Pair> {
    let mut posting: HashMap<String, Vec<usize>> = HashMap::new();
    for (i, r) in records.iter().enumerate() {
        for g in crate::similarity::qgrams(&key(r).to_lowercase(), q) {
            posting.entry(g).or_default().push(i);
        }
    }
    let mut common: HashMap<Pair, usize> = HashMap::new();
    for ids in posting.values() {
        if ids.len() > 50 {
            continue; // ultra-frequent gram: no discriminative power
        }
        for (x, &i) in ids.iter().enumerate() {
            for &j in &ids[x + 1..] {
                if i != j {
                    *common.entry(ordered(i, j)).or_insert(0) += 1;
                }
            }
        }
    }
    let mut out: Vec<Pair> =
        common.into_iter().filter(|(_, c)| *c >= min_common).map(|(p, _)| p).collect();
    out.sort_unstable();
    out
}

/// Blocking quality report: how many candidate pairs were produced, and what
/// fraction of the true pairs they cover (pairs completeness).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockingStats {
    /// Candidate pairs produced.
    pub candidates: usize,
    /// All possible pairs.
    pub possible: usize,
    /// True matching pairs covered by the candidates.
    pub true_covered: usize,
    /// All true matching pairs.
    pub true_total: usize,
}

impl BlockingStats {
    /// Fraction of the pair space avoided (higher = cheaper).
    pub fn reduction_ratio(&self) -> f64 {
        if self.possible == 0 {
            return 0.0;
        }
        1.0 - self.candidates as f64 / self.possible as f64
    }

    /// Fraction of true matches still reachable (higher = safer).
    pub fn pairs_completeness(&self) -> f64 {
        if self.true_total == 0 {
            return 1.0;
        }
        self.true_covered as f64 / self.true_total as f64
    }
}

/// Score a candidate set against the true pair set.
pub fn evaluate(candidates: &[Pair], true_pairs: &BTreeSet<Pair>, n: usize) -> BlockingStats {
    let cand: BTreeSet<Pair> = candidates.iter().copied().collect();
    BlockingStats {
        candidates: cand.len(),
        possible: n.saturating_sub(1) * n / 2,
        true_covered: true_pairs.intersection(&cand).count(),
        true_total: true_pairs.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names() -> Vec<String> {
        vec![
            "David Smith".into(),    // 0
            "D. Smith".into(),       // 1 (dup of 0)
            "Laura Johnson".into(),  // 2
            "Johnson, Laura".into(), // 3 (dup of 2)
            "Peter Miller".into(),   // 4
        ]
    }

    #[allow(clippy::ptr_arg)] // must match Fn(&String) for key_blocking
    fn last_token_lower(s: &String) -> String {
        s.trim_end_matches('.')
            .split([' ', ','])
            .rfind(|t| !t.is_empty())
            .unwrap_or("")
            .to_lowercase()
    }

    #[test]
    fn all_pairs_count() {
        assert_eq!(all_pairs(5).len(), 10);
        assert!(all_pairs(0).is_empty());
        assert!(all_pairs(1).is_empty());
    }

    #[test]
    fn key_blocking_groups_same_key() {
        let recs = names();
        let pairs = key_blocking(&recs, last_token_lower);
        // "David Smith"/"D. Smith" share key "smith".
        assert!(pairs.contains(&(0, 1)));
        // Johnson pair: "Laura Johnson" keys to johnson, "Johnson, Laura" keys to laura — missed.
        assert!(!pairs.contains(&(2, 3)));
        assert!(pairs.len() < all_pairs(recs.len()).len());
    }

    #[test]
    fn sorted_neighborhood_window() {
        let recs: Vec<String> = (0..10).map(|i| format!("key{i:02}")).collect();
        let pairs = sorted_neighborhood(&recs, |s| s.clone(), 3);
        // Window 3 links each record to its next two neighbors: 9+8 = 17 pairs.
        assert_eq!(pairs.len(), 17);
        assert!(pairs.contains(&(0, 1)));
        assert!(pairs.contains(&(0, 2)));
        assert!(!pairs.contains(&(0, 3)));
    }

    #[test]
    #[should_panic(expected = "window")]
    fn sorted_neighborhood_rejects_tiny_window() {
        sorted_neighborhood(&names(), |s| s.clone(), 1);
    }

    #[test]
    fn qgram_blocking_tolerates_typos() {
        let recs = vec!["Jonathan".to_string(), "Jonathon".into(), "Elizabeth".into()];
        let pairs = qgram_blocking(&recs, |s| s.clone(), 3, 3);
        assert!(pairs.contains(&(0, 1)));
        assert!(!pairs.contains(&(0, 2)));
    }

    #[test]
    fn evaluate_reports_reduction_and_completeness() {
        let recs = names();
        let true_pairs: BTreeSet<Pair> = [(0, 1), (2, 3)].into_iter().collect();
        let pairs = key_blocking(&recs, last_token_lower);
        let stats = evaluate(&pairs, &true_pairs, recs.len());
        assert_eq!(stats.possible, 10);
        assert_eq!(stats.true_total, 2);
        assert_eq!(stats.true_covered, 1);
        assert!(stats.reduction_ratio() > 0.5);
        assert_eq!(stats.pairs_completeness(), 0.5);

        let exact = evaluate(&all_pairs(recs.len()), &true_pairs, recs.len());
        assert_eq!(exact.pairs_completeness(), 1.0);
        assert_eq!(exact.reduction_ratio(), 0.0);
    }
}
