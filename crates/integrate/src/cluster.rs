//! Entity clustering: union-find transitive closure over match decisions,
//! and pairwise scoring against ground-truth clusters.

use std::collections::{BTreeMap, BTreeSet};

/// Disjoint-set forest with path compression and union by rank.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
}

impl UnionFind {
    /// `n` singleton sets, elements `0..n`.
    pub fn new(n: usize) -> UnionFind {
        UnionFind { parent: (0..n).collect(), rank: vec![0; n] }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merge the sets of `a` and `b`. Returns true if they were separate.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
        true
    }

    /// True when `a` and `b` are in the same set.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }
}

/// A clustering of `0..n` into entity groups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clustering {
    /// Element → cluster id (cluster ids are dense, ordered by first member).
    pub assignment: Vec<usize>,
    /// Cluster id → members, each sorted.
    pub clusters: Vec<Vec<usize>>,
}

impl Clustering {
    /// Build a clustering from matched pairs over `0..n`.
    pub fn from_pairs(n: usize, matched: impl IntoIterator<Item = (usize, usize)>) -> Clustering {
        let mut uf = UnionFind::new(n);
        for (a, b) in matched {
            uf.union(a, b);
        }
        Self::from_union_find(&mut uf)
    }

    /// Extract the clustering from a union-find structure.
    pub fn from_union_find(uf: &mut UnionFind) -> Clustering {
        let n = uf.len();
        let mut root_to_cluster: BTreeMap<usize, usize> = BTreeMap::new();
        let mut assignment = vec![0usize; n];
        let mut clusters: Vec<Vec<usize>> = Vec::new();
        for (x, slot) in assignment.iter_mut().enumerate() {
            let root = uf.find(x);
            let cid = *root_to_cluster.entry(root).or_insert_with(|| {
                clusters.push(Vec::new());
                clusters.len() - 1
            });
            *slot = cid;
            clusters[cid].push(x);
        }
        Clustering { assignment, clusters }
    }

    /// All intra-cluster pairs.
    pub fn pairs(&self) -> BTreeSet<(usize, usize)> {
        let mut out = BTreeSet::new();
        for c in &self.clusters {
            for (i, &a) in c.iter().enumerate() {
                for &b in &c[i + 1..] {
                    out.insert((a, b));
                }
            }
        }
        out
    }

    /// Number of clusters.
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// True when there are no elements.
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }
}

/// Pairwise precision/recall/F1 of a predicted clustering against truth.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PairwiseScore {
    /// Predicted-pair precision.
    pub precision: f64,
    /// True-pair recall.
    pub recall: f64,
    /// Harmonic mean.
    pub f1: f64,
}

/// Score predicted clusters against true clusters by their pair sets.
pub fn pairwise_score(predicted: &Clustering, truth: &Clustering) -> PairwiseScore {
    let p = predicted.pairs();
    let t = truth.pairs();
    let tp = p.intersection(&t).count() as f64;
    let precision = if p.is_empty() { 1.0 } else { tp / p.len() as f64 };
    let recall = if t.is_empty() { 1.0 } else { tp / t.len() as f64 };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    PairwiseScore { precision, recall, f1 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn union_find_merges_and_finds() {
        let mut uf = UnionFind::new(6);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2), "already merged");
        assert!(uf.same(0, 2));
        assert!(!uf.same(0, 3));
    }

    #[test]
    fn clustering_from_pairs() {
        let c = Clustering::from_pairs(5, [(0, 1), (3, 4)]);
        assert_eq!(c.clusters.len(), 3);
        assert_eq!(c.assignment[0], c.assignment[1]);
        assert_eq!(c.assignment[3], c.assignment[4]);
        assert_ne!(c.assignment[0], c.assignment[2]);
        assert_eq!(c.pairs().len(), 2);
    }

    #[test]
    fn transitive_closure() {
        let c = Clustering::from_pairs(4, [(0, 1), (1, 2), (2, 3)]);
        assert_eq!(c.clusters.len(), 1);
        assert_eq!(c.pairs().len(), 6);
    }

    #[test]
    fn perfect_prediction_scores_one() {
        let t = Clustering::from_pairs(6, [(0, 1), (2, 3)]);
        let s = pairwise_score(&t, &t);
        assert_eq!((s.precision, s.recall, s.f1), (1.0, 1.0, 1.0));
    }

    #[test]
    fn over_and_under_merging_penalized() {
        let truth = Clustering::from_pairs(4, [(0, 1), (2, 3)]);
        // Over-merge: everything together → recall 1, precision 2/6.
        let over = Clustering::from_pairs(4, [(0, 1), (1, 2), (2, 3)]);
        let s = pairwise_score(&over, &truth);
        assert_eq!(s.recall, 1.0);
        assert!((s.precision - 2.0 / 6.0).abs() < 1e-9);
        // Under-merge: no pairs → precision 1 (vacuous), recall 0.
        let under = Clustering::from_pairs(4, []);
        let s = pairwise_score(&under, &truth);
        assert_eq!(s.precision, 1.0);
        assert_eq!(s.recall, 0.0);
        assert_eq!(s.f1, 0.0);
    }

    #[test]
    fn singleton_truth_scores_vacuously_perfect() {
        let t = Clustering::from_pairs(3, []);
        let p = Clustering::from_pairs(3, []);
        let s = pairwise_score(&p, &t);
        assert_eq!(s.f1, 1.0);
    }

    proptest! {
        #[test]
        fn prop_union_find_is_equivalence(
            n in 2usize..20,
            edges in proptest::collection::vec((0usize..20, 0usize..20), 0..30)
        ) {
            let mut uf = UnionFind::new(n);
            for (a, b) in edges {
                let (a, b) = (a % n, b % n);
                uf.union(a, b);
            }
            // Reflexive, symmetric, transitive (checked exhaustively).
            for x in 0..n {
                prop_assert!(uf.same(x, x));
                for y in 0..n {
                    prop_assert_eq!(uf.same(x, y), uf.same(y, x));
                    for z in 0..n {
                        if uf.same(x, y) && uf.same(y, z) {
                            prop_assert!(uf.same(x, z));
                        }
                    }
                }
            }
        }

        #[test]
        fn prop_assignment_matches_clusters(
            n in 1usize..15,
            edges in proptest::collection::vec((0usize..15, 0usize..15), 0..20)
        ) {
            let edges: Vec<_> = edges.into_iter().map(|(a, b)| (a % n, b % n)).collect();
            let c = Clustering::from_pairs(n, edges);
            for (cid, members) in c.clusters.iter().enumerate() {
                for &m in members {
                    prop_assert_eq!(c.assignment[m], cid);
                }
            }
            let total: usize = c.clusters.iter().map(Vec::len).sum();
            prop_assert_eq!(total, n);
        }
    }
}
