//! Parallel pairwise scoring over candidate blocks, with a memoised
//! name-similarity kernel.
//!
//! Blocking produces candidate pairs; the expensive part is scoring
//! them. [`score_pairs`] fans the pair list out over a `quarry-exec`
//! pool and returns decisions **in pair order**, which is all a caller
//! needs to reproduce the sequential algorithm exactly: clustering
//! decisions (union-find merges, uncertain-pair queues) are applied by
//! the caller in that same order.

use crate::blocking::Pair;
use crate::matcher::{decide, decide_with, MatchConfig, MatchDecision, Record};
use crate::similarity::name_similarity;
use quarry_exec::{ExecPool, ExecReport, MemoCache};

/// Memo cache for `name_similarity`, keyed by the (ordered) string pair.
/// Name strings recur heavily across candidate pairs — every record in a
/// block is compared against every other — so memoisation converts the
/// quadratic number of kernel runs into roughly the number of distinct
/// name pairs.
pub struct SimCache {
    inner: MemoCache<(String, String), f64>,
}

impl SimCache {
    /// Cache with room for about `capacity` distinct name pairs.
    pub fn new(capacity: usize) -> SimCache {
        SimCache { inner: MemoCache::new(capacity) }
    }

    /// Memoised [`name_similarity`].
    pub fn similarity(&self, a: &str, b: &str) -> f64 {
        // Canonicalise the key: the kernel is symmetric.
        let key =
            if a <= b { (a.to_string(), b.to_string()) } else { (b.to_string(), a.to_string()) };
        self.inner.get_or_insert_with(key, || name_similarity(a, b))
    }

    /// Lookups served from cache.
    pub fn hits(&self) -> u64 {
        self.inner.hits()
    }

    /// Lookups that ran the kernel.
    pub fn misses(&self) -> u64 {
        self.inner.misses()
    }
}

impl Default for SimCache {
    fn default() -> SimCache {
        SimCache::new(1 << 16)
    }
}

/// Score every candidate pair on `pool`, returning
/// `(pair, decision, score)` in the same order as `pairs` — byte-for-byte
/// what a sequential `decide` loop would produce, because the memoised
/// kernel returns the same value as `name_similarity` for every input.
pub fn score_pairs(
    records: &[Record],
    pairs: &[Pair],
    cfg: &MatchConfig,
    pool: &ExecPool,
    cache: Option<&SimCache>,
    report: &mut ExecReport,
) -> Vec<(Pair, MatchDecision, f64)> {
    let out = pool.map(
        "integrate/score-pairs",
        pairs,
        |_, &(i, j)| {
            let (d, s) = match cache {
                Some(c) => decide_with(&records[i], &records[j], cfg, &|a, b| c.similarity(a, b)),
                None => decide(&records[i], &records[j], cfg),
            };
            ((i, j), d, s)
        },
        report,
    );
    if let Some(c) = cache {
        report.incr("sim_cache_hits", c.hits());
        report.incr("sim_cache_misses", c.misses());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocking::all_pairs;
    use quarry_storage::Value;

    fn records() -> Vec<Record> {
        // Recurring names so the memo cache actually gets hits.
        let names = ["David Smith", "D. Smith", "Laura Johnson", "David Smith", "L. Johnson"];
        names
            .iter()
            .enumerate()
            .map(|(i, n)| Record::new(i, [("name", Value::Text((*n).into()))]))
            .collect()
    }

    #[test]
    fn parallel_scores_equal_sequential_decide() {
        let recs = records();
        let pairs = all_pairs(recs.len());
        let cfg = MatchConfig::default();
        let expected: Vec<_> = pairs
            .iter()
            .map(|&(i, j)| {
                let (d, s) = decide(&recs[i], &recs[j], &cfg);
                ((i, j), d, s)
            })
            .collect();
        for threads in [1, 2, 4] {
            let pool = ExecPool::new(threads).with_batch_size(2);
            let cache = SimCache::default();
            let mut report = ExecReport::new();
            let got = score_pairs(&recs, &pairs, &cfg, &pool, Some(&cache), &mut report);
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn cache_hits_on_recurring_names() {
        let recs = records();
        let pairs = all_pairs(recs.len());
        let cfg = MatchConfig::default();
        let pool = ExecPool::sequential();
        let cache = SimCache::default();
        let mut report = ExecReport::new();
        score_pairs(&recs, &pairs, &cfg, &pool, Some(&cache), &mut report);
        // Two identical "David Smith" records make several pairs share a
        // canonical key.
        assert!(report.counter("sim_cache_hits") > 0);
        assert_eq!(
            report.counter("sim_cache_hits") + report.counter("sim_cache_misses"),
            pairs.len() as u64
        );
    }
}
