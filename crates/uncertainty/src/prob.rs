//! Probability combination and calibration measurement.

/// Noisy-or combination: probability that at least one of several
/// independent witnesses is right. Used when multiple extractors find the
/// same fact.
pub fn noisy_or(probs: &[f64]) -> f64 {
    let mut miss = 1.0;
    for &p in probs {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        miss *= 1.0 - p;
    }
    1.0 - miss
}

/// Conjunction of independent events (a derivation needs all inputs right).
pub fn all_of(probs: &[f64]) -> f64 {
    probs
        .iter()
        .inspect(|p| {
            assert!((0.0..=1.0).contains(*p), "probability {p} out of range");
        })
        .product()
}

/// Weighted fusion of correlated estimates (weights need not sum to 1).
pub fn weighted(pairs: &[(f64, f64)]) -> f64 {
    let wsum: f64 = pairs.iter().map(|(_, w)| w).sum();
    if wsum == 0.0 {
        return 0.0;
    }
    pairs.iter().map(|(p, w)| p * w).sum::<f64>() / wsum
}

/// Brier score of probabilistic predictions against boolean outcomes:
/// mean squared error, 0 = perfect, 0.25 = uninformed coin.
pub fn brier_score(predictions: &[(f64, bool)]) -> f64 {
    if predictions.is_empty() {
        return 0.0;
    }
    predictions
        .iter()
        .map(|&(p, y)| {
            let t = if y { 1.0 } else { 0.0 };
            (p - t) * (p - t)
        })
        .sum::<f64>()
        / predictions.len() as f64
}

/// One reliability bin: predictions in `[lo, hi)`, their mean confidence,
/// and the empirical accuracy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationBin {
    /// Bin lower bound.
    pub lo: f64,
    /// Bin upper bound.
    pub hi: f64,
    /// Number of predictions in the bin.
    pub count: usize,
    /// Mean predicted confidence.
    pub mean_confidence: f64,
    /// Fraction that were actually correct.
    pub accuracy: f64,
}

/// A reliability diagram: is a 0.8-confidence prediction right 80% of the
/// time? (E9 runs this over extractor confidences.)
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationReport {
    /// The bins, low to high.
    pub bins: Vec<CalibrationBin>,
    /// Expected calibration error: |confidence − accuracy| weighted by bin mass.
    pub ece: f64,
    /// Brier score over all predictions.
    pub brier: f64,
}

impl CalibrationReport {
    /// Build a report with `n_bins` equal-width bins.
    pub fn from_predictions(predictions: &[(f64, bool)], n_bins: usize) -> CalibrationReport {
        assert!(n_bins >= 1);
        let mut sums = vec![(0usize, 0.0f64, 0usize); n_bins]; // (count, conf sum, correct)
        for &(p, y) in predictions {
            let b = ((p * n_bins as f64) as usize).min(n_bins - 1);
            sums[b].0 += 1;
            sums[b].1 += p;
            sums[b].2 += usize::from(y);
        }
        let total = predictions.len().max(1) as f64;
        let mut bins = Vec::with_capacity(n_bins);
        let mut ece = 0.0;
        for (i, (count, conf_sum, correct)) in sums.into_iter().enumerate() {
            let lo = i as f64 / n_bins as f64;
            let hi = (i + 1) as f64 / n_bins as f64;
            let (mean_confidence, accuracy) = if count == 0 {
                (0.0, 0.0)
            } else {
                (conf_sum / count as f64, correct as f64 / count as f64)
            };
            if count > 0 {
                ece += (count as f64 / total) * (mean_confidence - accuracy).abs();
            }
            bins.push(CalibrationBin { lo, hi, count, mean_confidence, accuracy });
        }
        CalibrationReport { bins, ece, brier: brier_score(predictions) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn noisy_or_basics() {
        assert_eq!(noisy_or(&[]), 0.0);
        assert!((noisy_or(&[0.5, 0.5]) - 0.75).abs() < 1e-12);
        assert_eq!(noisy_or(&[1.0, 0.1]), 1.0);
        assert_eq!(noisy_or(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn all_of_basics() {
        assert_eq!(all_of(&[]), 1.0);
        assert!((all_of(&[0.9, 0.9]) - 0.81).abs() < 1e-12);
        assert_eq!(all_of(&[0.5, 0.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_probability_panics() {
        noisy_or(&[1.5]);
    }

    #[test]
    fn weighted_fusion() {
        assert!((weighted(&[(1.0, 1.0), (0.0, 1.0)]) - 0.5).abs() < 1e-12);
        assert!((weighted(&[(1.0, 3.0), (0.0, 1.0)]) - 0.75).abs() < 1e-12);
        assert_eq!(weighted(&[]), 0.0);
    }

    #[test]
    fn brier_extremes() {
        assert_eq!(brier_score(&[(1.0, true), (0.0, false)]), 0.0);
        assert_eq!(brier_score(&[(1.0, false)]), 1.0);
        assert_eq!(brier_score(&[(0.5, true), (0.5, false)]), 0.25);
        assert_eq!(brier_score(&[]), 0.0);
    }

    #[test]
    fn calibration_of_perfect_predictor() {
        let preds: Vec<(f64, bool)> = (0..100)
            .map(|i| {
                let p = if i % 2 == 0 { 0.95 } else { 0.05 };
                (p, i % 2 == 0)
            })
            .collect();
        let r = CalibrationReport::from_predictions(&preds, 10);
        assert!(r.ece < 0.06, "ece {}", r.ece);
        assert!(r.brier < 0.01);
    }

    #[test]
    fn calibration_of_overconfident_predictor() {
        // Claims 0.9 but is right half the time.
        let preds: Vec<(f64, bool)> = (0..100).map(|i| (0.9, i % 2 == 0)).collect();
        let r = CalibrationReport::from_predictions(&preds, 10);
        assert!(r.ece > 0.35, "ece {}", r.ece);
        let hot = r.bins.iter().find(|b| b.count > 0).unwrap();
        assert!((hot.accuracy - 0.5).abs() < 1e-9);
    }

    #[test]
    fn bins_partition_mass() {
        let preds: Vec<(f64, bool)> = vec![(0.05, false), (0.55, true), (0.999, true)];
        let r = CalibrationReport::from_predictions(&preds, 4);
        assert_eq!(r.bins.iter().map(|b| b.count).sum::<usize>(), 3);
        assert_eq!(r.bins.len(), 4);
    }

    proptest! {
        #[test]
        fn prop_noisy_or_bounds_and_monotone(ps in proptest::collection::vec(0.0f64..=1.0, 0..8), extra in 0.0f64..=1.0) {
            let base = noisy_or(&ps);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&base));
            let mut more = ps.clone();
            more.push(extra);
            prop_assert!(noisy_or(&more) >= base - 1e-12);
        }

        #[test]
        fn prop_all_of_never_exceeds_min(ps in proptest::collection::vec(0.0f64..=1.0, 1..8)) {
            let m = ps.iter().copied().fold(1.0f64, f64::min);
            prop_assert!(all_of(&ps) <= m + 1e-12);
        }
    }
}
