//! Possible-worlds semantics over independent uncertain tuples.
//!
//! A set of tuples, each present with an independent probability, induces
//! 2^n worlds. For the small per-entity tuple sets that IE produces (a
//! handful of candidate values per attribute), exact enumeration is
//! feasible; this module enumerates worlds, ranks them, and computes
//! marginals of predicates over them.

/// A set of independent uncertain tuples with labels.
#[derive(Debug, Clone, Default)]
pub struct WorldSet<T> {
    tuples: Vec<(T, f64)>,
}

/// One world: which tuples are present, and its probability.
#[derive(Debug, Clone, PartialEq)]
pub struct World {
    /// Membership bitmask over the tuple list (bit i = tuple i present).
    pub mask: u64,
    /// The world's probability.
    pub prob: f64,
}

impl<T> WorldSet<T> {
    /// Empty set.
    pub fn new() -> WorldSet<T> {
        WorldSet { tuples: Vec::new() }
    }

    /// Add a tuple with presence probability `p`.
    pub fn add(&mut self, tuple: T, p: f64) {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        assert!(self.tuples.len() < 63, "world enumeration capped at 63 tuples");
        self.tuples.push((tuple, p));
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The tuples present in a world mask.
    pub fn members(&self, mask: u64) -> Vec<&T> {
        self.tuples
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, (t, _))| t)
            .collect()
    }

    /// Enumerate every world with its probability. O(2^n) — intended for
    /// n ≲ 20.
    pub fn worlds(&self) -> Vec<World> {
        let n = self.tuples.len();
        let mut out = Vec::with_capacity(1 << n);
        for mask in 0u64..(1 << n) {
            let mut prob = 1.0;
            for (i, (_, p)) in self.tuples.iter().enumerate() {
                prob *= if mask & (1 << i) != 0 { *p } else { 1.0 - *p };
            }
            out.push(World { mask, prob });
        }
        out
    }

    /// The `k` most probable worlds, most probable first.
    pub fn top_k(&self, k: usize) -> Vec<World> {
        let mut ws = self.worlds();
        ws.sort_by(|a, b| b.prob.partial_cmp(&a.prob).unwrap_or(std::cmp::Ordering::Equal));
        ws.truncate(k);
        ws
    }

    /// Marginal probability that a predicate over the present-tuple set
    /// holds, summed over all worlds.
    pub fn marginal(&self, pred: impl Fn(&[&T]) -> bool) -> f64 {
        self.worlds().into_iter().filter(|w| pred(&self.members(w.mask))).map(|w| w.prob).sum()
    }

    /// Marginal probability that tuple `i` is present (closed form).
    pub fn tuple_marginal(&self, i: usize) -> f64 {
        self.tuples[i].1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn set(ps: &[f64]) -> WorldSet<usize> {
        let mut s = WorldSet::new();
        for (i, &p) in ps.iter().enumerate() {
            s.add(i, p);
        }
        s
    }

    #[test]
    fn two_tuples_four_worlds() {
        let s = set(&[0.9, 0.5]);
        let ws = s.worlds();
        assert_eq!(ws.len(), 4);
        let total: f64 = ws.iter().map(|w| w.prob).sum();
        assert!((total - 1.0).abs() < 1e-12);
        // World {0} alone: 0.9 * 0.5.
        let w = ws.iter().find(|w| w.mask == 0b01).unwrap();
        assert!((w.prob - 0.45).abs() < 1e-12);
    }

    #[test]
    fn top_k_ranks_by_probability() {
        let s = set(&[0.9, 0.8]);
        let top = s.top_k(2);
        assert_eq!(top[0].mask, 0b11);
        assert!((top[0].prob - 0.72).abs() < 1e-12);
        assert!(top[0].prob >= top[1].prob);
    }

    #[test]
    fn marginal_of_predicate() {
        let s = set(&[0.5, 0.5]);
        // P(at least one present) = 0.75.
        let p = s.marginal(|members| !members.is_empty());
        assert!((p - 0.75).abs() < 1e-12);
        // P(exactly the second present) = 0.25.
        let p = s.marginal(|members| members == [&1usize]);
        assert!((p - 0.25).abs() < 1e-12);
    }

    #[test]
    fn certain_tuples_collapse_worlds() {
        let s = set(&[1.0, 0.5]);
        let nonzero = s.worlds().into_iter().filter(|w| w.prob > 0.0).count();
        assert_eq!(nonzero, 2);
    }

    #[test]
    fn members_reads_mask() {
        let s = set(&[0.1, 0.2, 0.3]);
        assert_eq!(s.members(0b101), vec![&0usize, &2usize]);
        assert!(s.members(0).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_probability_rejected() {
        set(&[1.2]);
    }

    proptest! {
        #[test]
        fn prop_world_probs_sum_to_one(ps in proptest::collection::vec(0.0f64..=1.0, 0..10)) {
            let s = set(&ps);
            let total: f64 = s.worlds().iter().map(|w| w.prob).sum();
            prop_assert!((total - 1.0).abs() < 1e-9);
        }

        #[test]
        fn prop_presence_marginal_matches_input(ps in proptest::collection::vec(0.01f64..=0.99, 1..8), idx in 0usize..8) {
            let s = set(&ps);
            let i = idx % ps.len();
            let via_worlds = s.marginal(|members| members.iter().any(|&&m| m == i));
            prop_assert!((via_worlds - s.tuple_marginal(i)).abs() < 1e-9);
        }
    }
}
