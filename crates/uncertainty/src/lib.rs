//! Uncertainty management and provenance (blueprint Part V).
//!
//! IE, II, and HI all make fallible decisions; the blueprint dedicates a
//! subsystem to "the uncertainty that arise[s] during the IE, II, and HI
//! processes" and to "the provenance and explanation for the derived
//! structured data". Three pieces:
//!
//! - [`prob`] — confidence combination rules (noisy-or for independent
//!   supporting evidence, products for conjunctions, weighted fusion) and a
//!   calibration meter (Brier score, reliability bins) used by E9;
//! - [`lineage`] — a provenance DAG from source spans through operator
//!   applications to derived tuples, with human-readable explanations;
//! - [`worlds`] — possible-worlds semantics over independent uncertain
//!   tuples: world enumeration and marginal probabilities for small sets.

#![forbid(unsafe_code)]

pub mod lineage;
pub mod prob;
pub mod worlds;

pub use lineage::{LineageGraph, NodeId, NodeKind};
pub use prob::{brier_score, noisy_or, CalibrationReport};
pub use worlds::WorldSet;
