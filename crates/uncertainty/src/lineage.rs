//! Provenance lineage: a DAG from source text spans through operator
//! applications to derived tuples.
//!
//! Every derived fact must be explainable: "this `population = 250,000`
//! tuple came from bytes 120..127 of doc 3 via the infobox extractor, merged
//! with bytes 88..95 of doc 7 via entity resolution, confirmed by user u2."
//! The graph stores exactly that derivation structure; explanations render
//! it as an indented tree.

use quarry_corpus::DocId;
use quarry_extract::Span;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Identifier of a lineage node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// What a lineage node represents.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NodeKind {
    /// A span of raw source text.
    Source {
        /// Source document.
        doc: DocId,
        /// Byte span in the document.
        span: Span,
        /// A short excerpt of the covered text (for explanations).
        excerpt: String,
    },
    /// An operator application (extractor, matcher, HI review...).
    Operator {
        /// Operator name, e.g. `infobox`, `entity-match`, `hi-vote`.
        name: String,
        /// Confidence the operator assigned to its output.
        confidence: f64,
    },
    /// A derived tuple/value in the structured store.
    Tuple {
        /// Table the tuple landed in.
        table: String,
        /// Human-readable rendering of the tuple.
        display: String,
    },
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Node {
    kind: NodeKind,
    /// Nodes this one was derived from.
    inputs: Vec<NodeId>,
}

/// An append-only provenance DAG.
///
/// Nodes are immutable once added and inputs must already exist, so the
/// graph is acyclic by construction.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LineageGraph {
    nodes: Vec<Node>,
}

impl LineageGraph {
    /// Empty graph.
    pub fn new() -> LineageGraph {
        LineageGraph::default()
    }

    fn add(&mut self, kind: NodeKind, inputs: Vec<NodeId>) -> NodeId {
        for i in &inputs {
            assert!((i.0 as usize) < self.nodes.len(), "lineage input {i:?} does not exist yet");
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node { kind, inputs });
        id
    }

    /// Record a source span.
    pub fn source(&mut self, doc: DocId, span: Span, excerpt: &str) -> NodeId {
        let excerpt = if excerpt.len() > 60 {
            let cut = (0..=60).rev().find(|&i| excerpt.is_char_boundary(i)).unwrap_or(0);
            format!("{}…", &excerpt[..cut])
        } else {
            excerpt.to_string()
        };
        self.add(NodeKind::Source { doc, span, excerpt }, Vec::new())
    }

    /// Record an operator application over existing nodes.
    pub fn operator(&mut self, name: &str, confidence: f64, inputs: Vec<NodeId>) -> NodeId {
        self.add(NodeKind::Operator { name: name.to_string(), confidence }, inputs)
    }

    /// Record a derived tuple.
    pub fn tuple(&mut self, table: &str, display: &str, inputs: Vec<NodeId>) -> NodeId {
        self.add(NodeKind::Tuple { table: table.to_string(), display: display.to_string() }, inputs)
    }

    /// The kind of a node.
    pub fn kind(&self, id: NodeId) -> &NodeKind {
        &self.nodes[id.0 as usize].kind
    }

    /// Direct inputs of a node.
    pub fn inputs(&self, id: NodeId) -> &[NodeId] {
        &self.nodes[id.0 as usize].inputs
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All transitive ancestors of a node (not including itself), deduped.
    pub fn ancestors(&self, id: NodeId) -> Vec<NodeId> {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack: Vec<NodeId> = self.inputs(id).to_vec();
        let mut out = Vec::new();
        while let Some(n) = stack.pop() {
            if seen[n.0 as usize] {
                continue;
            }
            seen[n.0 as usize] = true;
            out.push(n);
            stack.extend_from_slice(self.inputs(n));
        }
        out.sort_unstable();
        out
    }

    /// The source spans a node ultimately derives from.
    pub fn source_spans(&self, id: NodeId) -> Vec<(DocId, Span)> {
        let mut out: Vec<(DocId, Span)> = self
            .ancestors(id)
            .into_iter()
            .chain(std::iter::once(id))
            .filter_map(|n| match self.kind(n) {
                NodeKind::Source { doc, span, .. } => Some((*doc, *span)),
                _ => None,
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Render a human-readable derivation tree for a node.
    pub fn explain(&self, id: NodeId) -> String {
        let mut out = String::new();
        self.explain_rec(id, 0, &mut out);
        out
    }

    fn explain_rec(&self, id: NodeId, depth: usize, out: &mut String) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        match self.kind(id) {
            NodeKind::Source { doc, span, excerpt } => {
                let _ = writeln!(out, "source {doc} {span}: \"{excerpt}\"");
            }
            NodeKind::Operator { name, confidence } => {
                let _ = writeln!(out, "via {name} (confidence {confidence:.2})");
            }
            NodeKind::Tuple { table, display } => {
                let _ = writeln!(out, "tuple in {table}: {display}");
            }
        }
        for &i in self.inputs(id) {
            self.explain_rec(i, depth + 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (LineageGraph, NodeId) {
        let mut g = LineageGraph::new();
        let s1 = g.source(DocId(3), Span::new(120, 127), "250,000");
        let s2 = g.source(DocId(7), Span::new(88, 95), "250000");
        let e1 = g.operator("infobox", 0.95, vec![s1]);
        let e2 = g.operator("prose-rule", 0.75, vec![s2]);
        let merge = g.operator("entity-match", 0.9, vec![e1, e2]);
        let t = g.tuple("cities", "population = 250000", vec![merge]);
        (g, t)
    }

    #[test]
    fn builds_and_navigates() {
        let (g, t) = sample();
        assert_eq!(g.len(), 6);
        assert_eq!(g.inputs(t).len(), 1);
        assert_eq!(g.ancestors(t).len(), 5);
    }

    #[test]
    fn source_spans_collects_leaves() {
        let (g, t) = sample();
        let spans = g.source_spans(t);
        assert_eq!(spans, vec![(DocId(3), Span::new(120, 127)), (DocId(7), Span::new(88, 95)),]);
    }

    #[test]
    fn explanation_renders_the_full_derivation() {
        let (g, t) = sample();
        let text = g.explain(t);
        assert!(text.contains("tuple in cities: population = 250000"));
        assert!(text.contains("via entity-match (confidence 0.90)"));
        assert!(text.contains("source doc:3 [120..127): \"250,000\""));
        // Indentation depth reflects derivation depth.
        assert!(text.lines().any(|l| l.starts_with("      source")));
    }

    #[test]
    #[should_panic(expected = "does not exist yet")]
    fn forward_references_rejected() {
        let mut g = LineageGraph::new();
        g.operator("bad", 0.5, vec![NodeId(99)]);
    }

    #[test]
    fn long_excerpts_truncate_on_char_boundary() {
        let mut g = LineageGraph::new();
        let long = "é".repeat(100);
        let id = g.source(DocId(0), Span::new(0, 200), &long);
        match g.kind(id) {
            NodeKind::Source { excerpt, .. } => {
                assert!(excerpt.ends_with('…'));
                assert!(excerpt.len() <= 64);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn diamond_ancestry_dedupes() {
        let mut g = LineageGraph::new();
        let s = g.source(DocId(0), Span::new(0, 5), "hello");
        let a = g.operator("op-a", 0.9, vec![s]);
        let b = g.operator("op-b", 0.8, vec![s]);
        let t = g.tuple("t", "x", vec![a, b]);
        let anc = g.ancestors(t);
        assert_eq!(anc.len(), 3); // s, a, b — s only once
    }

    #[test]
    fn serde_round_trip() {
        let (g, t) = sample();
        let json = serde_json::to_string(&g).unwrap();
        let g2: LineageGraph = serde_json::from_str(&json).unwrap();
        assert_eq!(g2.explain(t), g.explain(t));
    }
}
