//! Self-audit: the checked-in workspace must pass its own analyzer.
//!
//! This is the same invariant CI enforces with `quarry-audit --deny`,
//! held as a plain test so `cargo test` alone catches regressions: no
//! error-severity finding outside `audit/baseline.txt`, and no baseline
//! entry that no longer matches anything (stale debt must be removed,
//! not hoarded).

use quarry_audit::{audit_workspace, Baseline};
use std::path::PathBuf;

#[test]
fn workspace_self_audit_is_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let out = audit_workspace(&root).expect("workspace loads");
    assert!(out.reachable_fns > 0, "call graph found no serve roots");

    let baseline_path = root.join("audit/baseline.txt");
    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => Baseline::parse(&text).expect("baseline parses"),
        Err(_) => Baseline::default(),
    };

    let fresh = out.new_findings(&baseline);
    assert!(
        fresh.is_empty(),
        "{} new audit error(s); fix them, add a reasoned allow, or regenerate the \
         baseline with `cargo run -p quarry-audit -- --write-baseline`:\n{:#?}",
        fresh.len(),
        fresh.iter().map(|(f, _)| f).collect::<Vec<_>>()
    );
    let error_keys: Vec<_> = out
        .findings
        .iter()
        .zip(&out.keys)
        .filter(|(f, _)| f.diagnostic.severity == quarry_audit::Severity::Error)
        .map(|(_, k)| k.clone())
        .collect();
    assert_eq!(baseline.stale(&error_keys), 0, "stale baseline entries; regenerate");
}
