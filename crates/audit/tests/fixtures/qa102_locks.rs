// QA102 fixture: lock-order inversions, in-body and across one
// call-graph hop. Mapped to crates/storage/src/engine.rs.

impl Database {
    pub fn inverted(&self) {
        let active = self.active.lock();
        let tables = self.tables.lock();
        drop((active, tables));
    }

    pub fn hop(&self) {
        let active = self.active.lock();
        helper_locks_tables();
        drop(active);
    }

    pub fn ordered(&self) {
        let tables = self.tables.lock();
        let active = self.active.lock();
        drop((tables, active));
    }

    pub fn scoped(&self) {
        {
            let active = self.active.lock();
            drop(active);
        }
        let tables = self.tables.lock();
        drop(tables);
    }
}

fn helper_locks_tables() {
    let tables = GLOBAL.tables.lock();
    drop(tables);
}
