// QA103 fixture: the facade mutex the serving layer must never reclaim
// (this seeded violation replaces the old CI grep). Mapped to
// crates/serve/src/state.rs.

pub struct Shared {
    quarry: Mutex<Quarry>,
}

// A string mention must not fire: the lexer keeps literals opaque.
pub const GREP_BAIT: &str = "Mutex<Quarry>";
