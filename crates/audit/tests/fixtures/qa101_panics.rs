// QA101 fixture: panic-family calls in serve-reachable code. Mapped to
// the virtual path crates/serve/src/handler.rs by the golden test.

pub fn handle(req: &Request) -> Response {
    let body = req.body.as_ref().unwrap();
    let n: usize = body.parse().expect("numeric body");
    if n > LIMIT {
        panic!("over limit");
    }
    let row = &rows[n];
    Response::ok(row)
}

pub fn fallible(req: &Request) -> Result<Response, Error> {
    let body = req.body.as_ref().ok_or(Error::Empty)?;
    Ok(Response::ok(body))
}

#[cfg(test)]
mod tests {
    #[test]
    fn harness_unwraps_are_fine() {
        let v: Option<u8> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
