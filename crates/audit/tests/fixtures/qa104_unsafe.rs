// QA104 fixture: unsafe blocks with and without SAFETY comments.
// Mapped to crates/corpus/src/mutate.rs.

pub fn undocumented(text: &mut String) {
    let bytes = unsafe { text.as_bytes_mut() };
    bytes[0] = b'0';
}

pub fn documented(text: &mut String) {
    // SAFETY: only ASCII digit bytes are written below, so the buffer
    // remains valid UTF-8.
    let bytes = unsafe { text.as_bytes_mut() };
    bytes[0] = b'1';
}
