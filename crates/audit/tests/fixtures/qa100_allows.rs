// Suppression fixture: a reasoned allow (silent), a reason-less allow
// (QA100), and an unused allow (QA105). Mapped to
// crates/serve/src/session.rs.

pub fn reasoned(opt: Option<u8>) -> u8 {
    // quarry-audit: allow(QA101, reason = "caller checked is_some above")
    opt.unwrap()
}

pub fn reasonless(opt: Option<u8>) -> u8 {
    // quarry-audit: allow(QA101)
    opt.unwrap()
}

// quarry-audit: allow(QA104, reason = "nothing unsafe here any more")
pub fn stale_allow() {}
