//! Property tests over the suppression machinery: an
//! `// quarry-audit: allow(...)` comment suppresses exactly the one
//! diagnostic on the line below it — never a neighbour, never a
//! different rule — and auditing is deterministic.

use proptest::prelude::*;
use quarry_audit::{audit_sources, codes, Manifest};

fn manifest() -> Manifest {
    Manifest::parse("order = [\"tables\", \"active\"]").unwrap()
}

/// A serve-reachable function with `n` unwrap statements, one per line,
/// with a reasoned allow above statement `target` (if any).
fn source(n: usize, target: Option<usize>) -> String {
    let mut src = String::from("pub fn handle(xs: &[Option<u8>]) {\n");
    for i in 0..n {
        if target == Some(i) {
            src.push_str("    // quarry-audit: allow(QA101, reason = \"fixture\")\n");
        }
        src.push_str(&format!("    let _v{i} = xs.get({i}).cloned().flatten().unwrap();\n"));
    }
    src.push_str("}\n");
    src
}

proptest! {
    #[test]
    fn prop_allow_suppresses_exactly_its_target(n in 1usize..8, pick in 0usize..8) {
        let target = pick % n;
        let path = "crates/serve/src/handler.rs".to_string();

        // Without the allow: one QA101 error per statement.
        let bare = audit_sources(vec![(path.clone(), source(n, None))], &manifest());
        let bare_101 = bare.findings.iter().filter(|f| f.code == codes::PANIC_REACHABLE).count();
        prop_assert_eq!(bare_101, n);

        // With the allow: exactly one fewer, and the survivors are
        // every statement except the targeted one.
        let out = audit_sources(vec![(path, source(n, Some(target)))], &manifest());
        // Map finding lines back to statement indices. The allow comment
        // shifts statements >= target down one line; statements start at
        // line 2 of the file.
        let survived: Vec<usize> = out
            .findings
            .iter()
            .filter(|f| f.code == codes::PANIC_REACHABLE)
            .map(|f| {
                let line = f.line;
                let idx = line - 2; // 0-based statement slot
                if idx > target { idx - 1 } else { idx }
            })
            .collect();
        prop_assert_eq!(survived.len(), n - 1);
        prop_assert!(!survived.contains(&target), "target {target} not suppressed: {survived:?}");
        for i in (0..n).filter(|&i| i != target) {
            prop_assert!(survived.contains(&i), "allow over-suppressed statement {i}");
        }
        // No collateral rule noise, and the allow itself is counted used
        // (no QA105), reasoned (no QA100).
        prop_assert!(!out.findings.iter().any(|f| f.code == codes::UNUSED_ALLOW));
        prop_assert!(!out.findings.iter().any(|f| f.code == codes::BAD_ALLOW));
    }

    #[test]
    fn prop_audit_is_deterministic(n in 1usize..6) {
        let path = "crates/serve/src/handler.rs".to_string();
        let a = audit_sources(vec![(path.clone(), source(n, None))], &manifest());
        let b = audit_sources(vec![(path, source(n, None))], &manifest());
        let ka: Vec<String> = a.keys.iter().map(|k| format!("{k:?}")).collect();
        let kb: Vec<String> = b.keys.iter().map(|k| format!("{k:?}")).collect();
        prop_assert_eq!(ka, kb);
    }
}
