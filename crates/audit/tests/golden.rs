//! Golden-file tests: the caret renderer's exact output for each QA rule
//! family, driven by the fixtures under `tests/fixtures/`.
//!
//! Regenerate after an intentional renderer or rule change with:
//! `GOLDEN_REGEN=1 cargo test -p quarry-audit --test golden`

use quarry_audit::{audit_sources, codes, reports, Manifest, Severity};
use std::path::PathBuf;

fn manifest() -> Manifest {
    Manifest::parse("order = [\"writer\", \"tables\", \"active\", \"wal\", \"docs\"]").unwrap()
}

/// Audit one fixture under a virtual workspace path and compare the
/// rendered reports (errors and warnings) against a golden file.
fn golden(fixture: &str, virtual_path: &str, golden_name: &str) {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(root.join("tests/fixtures").join(fixture)).unwrap();
    let out = audit_sources(vec![(virtual_path.to_string(), src)], &manifest());
    let got: String = reports(&out.files, &out.findings)
        .iter()
        .map(|r| r.render())
        .collect::<Vec<_>>()
        .join("\n");
    let golden_path = root.join("tests/golden").join(golden_name);
    if std::env::var("GOLDEN_REGEN").is_ok() {
        std::fs::write(&golden_path, &got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&golden_path)
        .unwrap_or_else(|e| panic!("missing golden {golden_name} ({e}); run with GOLDEN_REGEN=1"));
    assert_eq!(got, want, "renderer output drifted for {fixture}");
}

#[test]
fn qa101_panic_reachability_render() {
    golden("qa101_panics.rs", "crates/serve/src/handler.rs", "qa101.txt");
}

#[test]
fn qa102_lock_order_render() {
    golden("qa102_locks.rs", "crates/storage/src/engine.rs", "qa102.txt");
}

#[test]
fn qa103_forbidden_construct_render() {
    golden("qa103_forbidden.rs", "crates/serve/src/state.rs", "qa103.txt");
}

#[test]
fn qa104_unsafe_hygiene_render() {
    golden("qa104_unsafe.rs", "crates/corpus/src/mutate.rs", "qa104.txt");
}

#[test]
fn qa100_and_qa105_allow_hygiene_render() {
    golden("qa100_allows.rs", "crates/serve/src/session.rs", "qa100.txt");
}

/// The seeded Mutex<Quarry> fixture must fail the audit the way the old
/// `! grep` CI step failed the build — but only via real code, not the
/// string literal bait.
#[test]
fn qa103_catches_the_seeded_facade_mutex() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(root.join("tests/fixtures/qa103_forbidden.rs")).unwrap();
    let out = audit_sources(vec![("crates/serve/src/state.rs".to_string(), src)], &manifest());
    let q103: Vec<_> = out.findings.iter().filter(|f| f.code == codes::FORBIDDEN).collect();
    assert_eq!(q103.len(), 1, "exactly the struct field, not the string: {q103:#?}");
    assert_eq!(q103[0].diagnostic.severity, Severity::Error);
    // The same source outside crates/serve is not a finding.
    let src = std::fs::read_to_string(root.join("tests/fixtures/qa103_forbidden.rs")).unwrap();
    let out = audit_sources(vec![("crates/core/src/state.rs".to_string(), src)], &manifest());
    assert!(!out.findings.iter().any(|f| f.code == codes::FORBIDDEN));
}

/// Clean sources produce no findings at all.
#[test]
fn clean_sources_are_silent() {
    let out = audit_sources(
        vec![
            (
                "crates/serve/src/clean.rs".to_string(),
                "pub fn handle(req: &Request) -> Result<Response, Error> {\n    \
                 let body = req.body.as_ref().ok_or(Error::Empty)?;\n    \
                 Ok(Response::ok(body.get(0).copied()))\n}\n"
                    .to_string(),
            ),
            (
                "crates/storage/src/clean.rs".to_string(),
                "impl Database {\n    pub fn ordered(&self) {\n        \
                 let tables = self.tables.lock();\n        \
                 let active = self.active.lock();\n        drop((tables, active));\n    }\n}\n"
                    .to_string(),
            ),
        ],
        &manifest(),
    );
    assert!(out.findings.is_empty(), "{:#?}", out.findings);
}
