//! Per-file item index: functions, impl/mod context, and test regions.
//!
//! This is a *scanner-grade* item model, not an AST: it walks the code
//! token stream (comments filtered out) with a brace-matching stack and
//! records, for every `fn`, its name, the impl type it belongs to, its
//! body's token range, the names it calls, and whether it is test code.
//! Test code — `#[test]` functions and everything inside a `#[cfg(test)]`
//! module — is indexed but flagged, so rules aimed at production paths
//! (QA101/QA102) can skip it while whole-file rules (QA103) can still
//! exclude the region precisely.
//!
//! The model is deliberately heuristic in the same way the call graph is:
//! an over-approximation that errs toward *indexing* things. Constructs it
//! cannot attribute to a function (consts, statics, struct fields) remain
//! visible to file-scope rules through the raw token stream.

use crate::lexer::{TokKind, Token};
use quarry_exec::diag::Span;

/// One `fn` item found in a file.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Bare function name (`handle`).
    pub name: String,
    /// Qualified display name (`Server::handle` inside an impl).
    pub qual: String,
    /// Span of the name token (diagnostics anchor here for fn-level findings).
    pub name_span: Span,
    /// `[start, end)` range in the file's *code token* array covering the
    /// body including both braces. Empty (`start == end`) for bodyless
    /// declarations (trait methods, extern).
    pub body: (usize, usize),
    /// True for `#[test]` fns and anything inside a `#[cfg(test)]` mod.
    pub is_test: bool,
    /// Callee names appearing in the body, with the code-token index of
    /// each call site, in source order.
    pub calls: Vec<(String, usize)>,
}

/// A lexed, indexed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with forward slashes (`crates/serve/src/server.rs`).
    pub path: String,
    /// Crate name derived from the path (`serve`, or `quarry` for the root `src/`).
    pub crate_name: String,
    /// Full source text.
    pub src: String,
    /// Every token, comments included.
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of the non-comment tokens, in order.
    pub code: Vec<usize>,
    /// Function items in file order.
    pub fns: Vec<FnItem>,
    /// `[start, end)` code-token ranges lying inside `#[cfg(test)]` mods.
    pub test_regions: Vec<(usize, usize)>,
}

impl SourceFile {
    /// Lex and index one source file. `path` uses forward slashes.
    pub fn parse(path: &str, src: &str) -> SourceFile {
        let tokens = crate::lexer::lex(src);
        let code: Vec<usize> =
            tokens.iter().enumerate().filter(|(_, t)| !t.is_comment()).map(|(i, _)| i).collect();
        let mut file = SourceFile {
            path: path.to_string(),
            crate_name: crate_of(path),
            src: src.to_string(),
            tokens,
            code,
            fns: Vec::new(),
            test_regions: Vec::new(),
        };
        Indexer::new(&file).run(&mut file);
        file
    }

    /// The code token at code-index `i`, if in range.
    pub fn ct(&self, i: usize) -> Option<&Token> {
        self.code.get(i).map(|&ti| &self.tokens[ti])
    }

    /// True when code-token index `i` lies inside a `#[cfg(test)]` region.
    pub fn in_test_region(&self, i: usize) -> bool {
        self.test_regions.iter().any(|&(s, e)| i >= s && i < e)
    }

    /// 1-based line number of a byte offset (for allow-comment matching).
    pub fn line_of(&self, offset: usize) -> usize {
        quarry_exec::diag::line_col_of(&self.src, offset).0
    }
}

/// `crates/serve/src/server.rs` → `serve`; `src/lib.rs` → `quarry`.
fn crate_of(path: &str) -> String {
    let parts: Vec<&str> = path.split('/').collect();
    match parts.as_slice() {
        ["crates", name, ..] => (*name).to_string(),
        _ => "quarry".to_string(),
    }
}

/// Names that look like calls but are control flow or bindings.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "fn", "let",
    "mut", "ref", "move", "in", "as", "where", "impl", "dyn", "pub", "use", "mod", "struct",
    "enum", "trait", "type", "const", "static", "unsafe", "async", "await", "crate", "super",
    "self", "Self", "true", "false",
];

struct Indexer {
    /// (mod-name, is_cfg_test) stack of named modules entered.
    test_depth: usize,
    /// Impl type stack (`Server`), innermost last.
    impl_types: Vec<String>,
}

impl Indexer {
    fn new(_file: &SourceFile) -> Indexer {
        Indexer { test_depth: 0, impl_types: Vec::new() }
    }

    fn run(mut self, file: &mut SourceFile) {
        let mut fns = Vec::new();
        let mut test_regions = Vec::new();
        self.scan(file, 0, file.code.len(), &mut fns, &mut test_regions);
        file.fns = fns;
        file.test_regions = test_regions;
    }

    /// Walk code tokens `[from, to)` at one nesting level, recursing into
    /// mod/impl/fn bodies.
    fn scan(
        &mut self,
        file: &SourceFile,
        from: usize,
        to: usize,
        fns: &mut Vec<FnItem>,
        test_regions: &mut Vec<(usize, usize)>,
    ) {
        let mut i = from;
        while i < to {
            let tok = match file.ct(i) {
                Some(t) => t,
                None => break,
            };
            if tok.is_ident("fn") {
                i = self.index_fn(file, i, to, fns, test_regions);
            } else if tok.is_ident("mod") {
                i = self.index_mod(file, i, to, fns, test_regions);
            } else if tok.is_ident("impl") {
                i = self.index_impl(file, i, to, fns, test_regions);
            } else if tok.is_punct('{') {
                // Unattributed block (match arm, const init, ...): recurse
                // so nested items keep mod/impl context.
                let end = match_brace(file, i, to);
                self.scan(file, i + 1, end, fns, test_regions);
                i = end + 1;
            } else {
                i += 1;
            }
        }
    }

    /// Index `fn name ... { body }` starting at the `fn` token; returns the
    /// code index just past the body.
    fn index_fn(
        &mut self,
        file: &SourceFile,
        at: usize,
        to: usize,
        fns: &mut Vec<FnItem>,
        test_regions: &mut Vec<(usize, usize)>,
    ) -> usize {
        let Some(name_tok) = file.ct(at + 1).filter(|t| t.kind == TokKind::Ident) else {
            return at + 1;
        };
        let name = name_tok.text.clone();
        let name_span = name_tok.span;
        let attrs = attrs_before(file, at);
        let is_test =
            self.test_depth > 0 || attrs.iter().any(|a| a == "test" || a.starts_with("cfg(test"));

        // The body is the first `{` before a `;` at this level.
        let mut j = at + 2;
        let mut body = (j, j);
        while j < to {
            let t = match file.ct(j) {
                Some(t) => t,
                None => break,
            };
            if t.is_punct(';') {
                body = (j, j); // bodyless declaration
                break;
            }
            if t.is_punct('{') {
                let end = match_brace(file, j, to);
                body = (j, (end + 1).min(to));
                break;
            }
            // Skip over parenthesized args and bracketed generics wholesale
            // so a `;` inside them can't end the signature early.
            if t.is_punct('(') {
                j = match_delim(file, j, to, '(', ')') + 1;
                continue;
            }
            if t.is_punct('[') {
                j = match_delim(file, j, to, '[', ']') + 1;
                continue;
            }
            j += 1;
        }

        let qual = match self.impl_types.last() {
            Some(ty) => format!("{ty}::{name}"),
            None => name.clone(),
        };
        let calls = collect_calls(file, body.0, body.1);
        fns.push(FnItem { name, qual, name_span, body, is_test, calls });

        // Recurse into the body for nested fns / test mods.
        if body.1 > body.0 {
            self.scan(file, body.0 + 1, body.1.saturating_sub(1), fns, test_regions);
        }
        body.1.max(at + 2)
    }

    fn index_mod(
        &mut self,
        file: &SourceFile,
        at: usize,
        to: usize,
        fns: &mut Vec<FnItem>,
        test_regions: &mut Vec<(usize, usize)>,
    ) -> usize {
        // `mod name;` or `mod name { ... }`
        let attrs = attrs_before(file, at);
        let cfg_test = attrs.iter().any(|a| a.starts_with("cfg(test"));
        let mut j = at + 2;
        loop {
            match file.ct(j) {
                Some(t) if t.is_punct(';') => return j + 1,
                Some(t) if t.is_punct('{') => break,
                Some(_) if j < to => j += 1,
                _ => return j,
            }
        }
        let end = match_brace(file, j, to);
        if cfg_test {
            test_regions.push((j, (end + 1).min(to)));
            self.test_depth += 1;
        }
        self.scan(file, j + 1, end, fns, test_regions);
        if cfg_test {
            self.test_depth -= 1;
        }
        end + 1
    }

    fn index_impl(
        &mut self,
        file: &SourceFile,
        at: usize,
        to: usize,
        fns: &mut Vec<FnItem>,
        test_regions: &mut Vec<(usize, usize)>,
    ) -> usize {
        // Find the `{`; the impl type is the first ident after `for`, or
        // else the first ident after `impl` that is not a generic param.
        let mut j = at + 1;
        let mut after_for = false;
        let mut ty: Option<String> = None;
        let mut ty_after_for: Option<String> = None;
        let mut angle = 0i32;
        while j < to {
            let t = match file.ct(j) {
                Some(t) => t,
                None => break,
            };
            if t.is_punct('{') && angle <= 0 {
                break;
            }
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') {
                angle -= 1;
            } else if t.is_ident("for") {
                after_for = true;
            } else if t.kind == TokKind::Ident && angle == 0 {
                if after_for && ty_after_for.is_none() {
                    ty_after_for = Some(t.text.clone());
                } else if !after_for && ty.is_none() {
                    ty = Some(t.text.clone());
                }
            }
            j += 1;
        }
        let impl_ty = ty_after_for.or(ty).unwrap_or_else(|| "impl".to_string());
        if j >= to {
            return j;
        }
        let end = match_brace(file, j, to);
        self.impl_types.push(impl_ty);
        self.scan(file, j + 1, end, fns, test_regions);
        self.impl_types.pop();
        end + 1
    }
}

/// Attribute texts (`cfg(test)`, `test`, `inline`) of the `#[...]` groups
/// immediately preceding code token `at`, skipping visibility and
/// qualifier tokens (`pub`, `(crate)`, `async`, `unsafe`, `const`, ...).
fn attrs_before(file: &SourceFile, at: usize) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = at;
    while i > 0 {
        i -= 1;
        let t = match file.ct(i) {
            Some(t) => t,
            None => break,
        };
        let skippable = t.is_ident("pub")
            || t.is_ident("async")
            || t.is_ident("unsafe")
            || t.is_ident("const")
            || t.is_ident("extern")
            || t.is_ident("crate")
            || t.is_ident("super")
            || t.is_ident("in")
            || t.kind == TokKind::Literal
            || t.is_punct('(')
            || t.is_punct(')');
        if skippable {
            continue;
        }
        if t.is_punct(']') {
            // Walk back to the matching `[`, then require a `#` before it.
            let mut depth = 1i32;
            let mut j = i;
            while j > 0 && depth > 0 {
                j -= 1;
                let u = match file.ct(j) {
                    Some(u) => u,
                    None => return out,
                };
                if u.is_punct(']') {
                    depth += 1;
                } else if u.is_punct('[') {
                    depth -= 1;
                }
            }
            if j == 0 || !file.ct(j - 1).is_some_and(|u| u.is_punct('#')) {
                return out;
            }
            let text: String = ((j + 1)..i)
                .filter_map(|k| file.ct(k).map(|t| t.text.clone()))
                .collect::<Vec<_>>()
                .join("");
            out.push(text);
            i = j - 1; // continue from before the `#`
        } else {
            break;
        }
    }
    out
}

/// Code index of the `}` matching the `{` at `open` (clamped to `to - 1`
/// when unbalanced).
fn match_brace(file: &SourceFile, open: usize, to: usize) -> usize {
    match_delim(file, open, to, '{', '}')
}

fn match_delim(file: &SourceFile, open: usize, to: usize, od: char, cd: char) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < to {
        if let Some(t) = file.ct(i) {
            if t.is_punct(od) {
                depth += 1;
            } else if t.is_punct(cd) {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
        }
        i += 1;
    }
    to.saturating_sub(1)
}

/// Callee names in a body: `name(...)` free calls, `.name(...)` method
/// calls, and `Path::name(...)` — always the ident directly before the
/// `(`. Macro bangs (`panic!(`) are *not* calls; QA101 handles them.
fn collect_calls(file: &SourceFile, from: usize, to: usize) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    for i in from..to {
        let Some(t) = file.ct(i) else { continue };
        if t.kind != TokKind::Ident || NON_CALL_KEYWORDS.contains(&t.text.as_str()) {
            continue;
        }
        let next_open = file.ct(i + 1).is_some_and(|n| n.is_punct('('));
        if !next_open {
            continue;
        }
        // `fn name(` is a declaration, `name!(...)` a macro.
        if i > from && file.ct(i - 1).is_some_and(|p| p.is_ident("fn")) {
            continue;
        }
        out.push((t.text.clone(), i));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
pub struct S;

impl S {
    pub fn alpha(&self) -> usize {
        self.beta();
        helper(1)
    }
    fn beta(&self) {}
}

fn helper(x: usize) -> usize { x }

#[cfg(test)]
mod tests {
    #[test]
    fn checks_alpha() { super::helper(2); }
}
"#;

    #[test]
    fn fns_are_indexed_with_impl_context() {
        let f = SourceFile::parse("crates/demo/src/lib.rs", SRC);
        let names: Vec<&str> = f.fns.iter().map(|i| i.qual.as_str()).collect();
        assert_eq!(names, ["S::alpha", "S::beta", "helper", "checks_alpha"]);
        assert_eq!(f.crate_name, "demo");
    }

    #[test]
    fn test_code_is_flagged_and_regioned() {
        let f = SourceFile::parse("crates/demo/src/lib.rs", SRC);
        let by_name = |n: &str| f.fns.iter().find(|i| i.name == n).unwrap();
        assert!(!by_name("alpha").is_test);
        assert!(by_name("checks_alpha").is_test);
        assert_eq!(f.test_regions.len(), 1);
    }

    #[test]
    fn calls_are_collected_in_order() {
        let f = SourceFile::parse("crates/demo/src/lib.rs", SRC);
        let alpha = f.fns.iter().find(|i| i.name == "alpha").unwrap();
        let callees: Vec<&str> = alpha.calls.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(callees, ["beta", "helper"]);
    }

    #[test]
    fn test_fn_without_cfg_mod_is_flagged_by_attribute() {
        let f = SourceFile::parse(
            "crates/demo/src/lib.rs",
            "#[test]\nfn standalone() { x.unwrap(); }\nfn real() {}",
        );
        assert!(f.fns.iter().find(|i| i.name == "standalone").unwrap().is_test);
        assert!(!f.fns.iter().find(|i| i.name == "real").unwrap().is_test);
    }

    #[test]
    fn trait_impls_attribute_to_the_implementing_type() {
        let f = SourceFile::parse(
            "crates/demo/src/lib.rs",
            "impl<T> Iterator for Wrapper<T> { fn next(&mut self) -> Option<T> { None } }",
        );
        assert_eq!(f.fns[0].qual, "Wrapper::next");
    }
}
