//! The findings baseline: pre-existing debt, tracked explicitly.
//!
//! A baseline entry keys a finding by *what* it is, not *where on the
//! line* it is: `code | path | enclosing item | normalized snippet | n`,
//! where `n` disambiguates repeats of the same snippet in the same item.
//! Line numbers are deliberately absent so unrelated edits above a finding
//! don't churn the file; moving the code to another function or changing
//! the flagged expression retires the entry and surfaces the finding
//! again — which is the point.
//!
//! CI runs `quarry-audit --deny`: any finding **not** in the baseline
//! fails the build. `--write-baseline` regenerates the file; diffs to it
//! are reviewed like any other code change, so new debt is a visible,
//! deliberate act rather than grep-rot.

use crate::rules::Finding;
use std::collections::HashMap;

/// Stable identity of one finding in the baseline.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Key {
    /// Rule code (`QA101`).
    pub code: String,
    /// Workspace-relative file path.
    pub path: String,
    /// Qualified enclosing item, or `<file>` for file-scope findings.
    pub item: String,
    /// Whitespace-normalized flagged source text, truncated.
    pub snippet: String,
    /// 1-based occurrence counter among identical (code,path,item,snippet).
    pub occurrence: usize,
}

const FIELD_SEP: char = '\t';
const SNIPPET_MAX: usize = 80;

/// Normalize a flagged span's text into its baseline snippet.
pub fn snippet_of(text: &str) -> String {
    let collapsed: String = text.split_whitespace().collect::<Vec<_>>().join(" ");
    if collapsed.len() > SNIPPET_MAX {
        let mut end = SNIPPET_MAX;
        while !collapsed.is_char_boundary(end) {
            end -= 1;
        }
        format!("{}…", &collapsed[..end])
    } else {
        collapsed
    }
}

/// Assign occurrence numbers to findings in file order and return the keys
/// parallel to `findings`.
pub fn keys_for(findings: &[Finding]) -> Vec<Key> {
    let mut seen: HashMap<(String, String, String, String), usize> = HashMap::new();
    findings
        .iter()
        .map(|f| {
            let base = (f.code.to_string(), f.path.clone(), f.item.clone(), snippet_of(&f.snippet));
            let n = seen.entry(base.clone()).or_insert(0);
            *n += 1;
            Key { code: base.0, path: base.1, item: base.2, snippet: base.3, occurrence: *n }
        })
        .collect()
}

/// Parsed baseline file contents.
#[derive(Debug, Default)]
pub struct Baseline {
    entries: HashMap<Key, ()>,
}

impl Baseline {
    /// Parse the baseline text. Lines are `code\tpath\titem\tsnippet\tn`;
    /// blank lines and `#` comments are skipped.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut entries = HashMap::new();
        for (ln, line) in text.lines().enumerate() {
            let line = line.trim_end();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let parts: Vec<&str> = line.split(FIELD_SEP).collect();
            let [code, path, item, snippet, n] = parts.as_slice() else {
                return Err(format!("baseline line {}: expected 5 tab-separated fields", ln + 1));
            };
            let occurrence: usize =
                n.parse().map_err(|_| format!("baseline line {}: bad occurrence `{n}`", ln + 1))?;
            entries.insert(
                Key {
                    code: code.to_string(),
                    path: path.to_string(),
                    item: item.to_string(),
                    snippet: snippet.to_string(),
                    occurrence,
                },
                (),
            );
        }
        Ok(Baseline { entries })
    }

    /// True when `key` is accepted debt.
    pub fn contains(&self, key: &Key) -> bool {
        self.entries.contains_key(key)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the baseline has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries present in the baseline but matching no current finding —
    /// retired debt the next `--write-baseline` will drop.
    pub fn stale(&self, current: &[Key]) -> usize {
        let live: std::collections::HashSet<&Key> = current.iter().collect();
        self.entries.keys().filter(|k| !live.contains(*k)).count()
    }

    /// Render `keys` as baseline file text, sorted and commented.
    pub fn render(keys: &[Key]) -> String {
        let mut sorted: Vec<&Key> = keys.iter().collect();
        sorted.sort();
        let mut out = String::from(
            "# quarry-audit baseline: accepted pre-existing findings.\n\
             # One finding per line: code<TAB>path<TAB>item<TAB>snippet<TAB>occurrence.\n\
             # Regenerate with: cargo run -p quarry-audit -- --write-baseline\n",
        );
        for k in sorted {
            out.push_str(&format!(
                "{}\t{}\t{}\t{}\t{}\n",
                k.code, k.path, k.item, k.snippet, k.occurrence
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quarry_exec::diag::{Diagnostic, Severity, Span};

    fn finding(code: &'static str, path: &str, item: &str, snippet: &str) -> Finding {
        Finding {
            code,
            path: path.to_string(),
            item: item.to_string(),
            snippet: snippet.to_string(),
            diagnostic: Diagnostic {
                code,
                severity: Severity::Error,
                span: Span::new(0, 1),
                message: String::new(),
                help: None,
            },
            line: 1,
        }
    }

    #[test]
    fn round_trips_through_render_and_parse() {
        let findings = vec![
            finding("QA101", "crates/a/src/lib.rs", "f", "x.unwrap()"),
            finding("QA101", "crates/a/src/lib.rs", "f", "x.unwrap()"),
            finding("QA103", "crates/b/src/lib.rs", "<file>", "serde_json"),
        ];
        let keys = keys_for(&findings);
        assert_eq!(keys[0].occurrence, 1);
        assert_eq!(keys[1].occurrence, 2);
        let text = Baseline::render(&keys);
        let parsed = Baseline::parse(&text).unwrap();
        assert_eq!(parsed.len(), 3);
        for k in &keys {
            assert!(parsed.contains(k));
        }
        assert_eq!(parsed.stale(&keys), 0);
        assert_eq!(parsed.stale(&keys[..1]), 2);
    }

    #[test]
    fn snippets_normalize_whitespace_and_truncate() {
        assert_eq!(snippet_of("a  b\n   c"), "a b c");
        let long = "x".repeat(200);
        assert!(snippet_of(&long).len() <= SNIPPET_MAX + "…".len());
    }

    #[test]
    fn malformed_lines_error() {
        assert!(Baseline::parse("QA101\tonly\tthree").is_err());
        assert!(Baseline::parse("QA101\ta\tb\tc\tnotnum").is_err());
        assert!(Baseline::parse("# comment\n\n").unwrap().is_empty());
    }
}
