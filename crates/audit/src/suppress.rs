//! `// quarry-audit: allow(...)` suppression comments.
//!
//! A finding is suppressible only at its site, only by code, and only
//! with a written reason:
//!
//! ```text
//! // quarry-audit: allow(QA101, reason = "slice length checked above")
//! let len = u32::from_le_bytes(buf[0..4].try_into().unwrap());
//! ```
//!
//! An allow covers the named codes on its **own line** (trailing comment)
//! and on the **next line** — nothing wider, so one comment can never
//! blanket a region. An allow without a non-empty `reason = "..."` is
//! itself a finding (QA100): undocumented suppressions are exactly the
//! unstructured artifact this tool exists to eliminate. Unused allows are
//! reported as QA105 warnings so stale suppressions get cleaned up.

use crate::index::SourceFile;
use quarry_exec::diag::Span;

/// One parsed allow comment.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Codes it suppresses (`QA101`, ...).
    pub codes: Vec<String>,
    /// The mandatory justification (may be empty — QA100 then fires).
    pub reason: String,
    /// 1-based line the comment sits on.
    pub line: usize,
    /// Span of the comment (diagnostics anchor).
    pub span: Span,
}

/// The marker every audit-control comment starts with.
pub const MARKER: &str = "quarry-audit:";

/// Collect every allow comment in a file. Returns `(allows, malformed)`
/// where `malformed` are `quarry-audit:` comments that did not parse as
/// `allow(CODE..., reason = "...")` — surfaced as QA100 findings.
pub fn collect_allows(file: &SourceFile) -> (Vec<Allow>, Vec<(Span, String)>) {
    let mut allows = Vec::new();
    let mut malformed = Vec::new();
    for tok in &file.tokens {
        if !tok.is_comment() {
            continue;
        }
        let body = tok
            .text
            .trim_start_matches('/')
            .trim_start_matches('*')
            .trim_end_matches('/')
            .trim_end_matches('*')
            .trim();
        let Some(rest) = body.strip_prefix(MARKER) else { continue };
        match parse_allow(rest.trim()) {
            Ok((codes, reason)) => allows.push(Allow {
                codes,
                reason,
                line: file.line_of(tok.span.start),
                span: tok.span,
            }),
            Err(why) => malformed.push((tok.span, why)),
        }
    }
    (allows, malformed)
}

/// Parse `allow(QA101, QA102, reason = "...")`.
fn parse_allow(s: &str) -> Result<(Vec<String>, String), String> {
    let Some(inner) = s.strip_prefix("allow(").and_then(|r| r.strip_suffix(')')) else {
        return Err(format!("expected `allow(CODE, reason = \"...\")`, found `{s}`"));
    };
    let mut codes = Vec::new();
    let mut reason = None;
    // Split on commas outside the reason string: the reason is always last
    // and quoted, so split the reason off first.
    let (head, tail) = match inner.find("reason") {
        Some(at) => (&inner[..at], Some(&inner[at..])),
        None => (inner, None),
    };
    for part in head.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        if !part.starts_with("QA")
            || part.len() != 5
            || !part[2..].bytes().all(|b| b.is_ascii_digit())
        {
            return Err(format!("`{part}` is not a QA rule code"));
        }
        codes.push(part.to_string());
    }
    if codes.is_empty() {
        return Err("allow lists no rule code".to_string());
    }
    if let Some(tail) = tail {
        let Some(eq) = tail.find('=') else {
            return Err("`reason` must be `reason = \"...\"`".to_string());
        };
        let val = tail[eq + 1..].trim().trim_end_matches(',').trim();
        let Some(text) = val.strip_prefix('"').and_then(|v| v.strip_suffix('"')) else {
            return Err("reason must be a quoted string".to_string());
        };
        reason = Some(text.to_string());
    }
    let reason = reason.unwrap_or_default();
    Ok((codes, reason))
}

/// Which allow (if any) covers a finding of `code` anchored at `line`.
/// Returns the index into `allows`.
pub fn matching_allow(allows: &[Allow], code: &str, line: usize) -> Option<usize> {
    allows
        .iter()
        .position(|a| (a.line == line || a.line + 1 == line) && a.codes.iter().any(|c| c == code))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::SourceFile;

    #[test]
    fn parses_codes_and_reason() {
        let (codes, reason) =
            parse_allow("allow(QA101, QA104, reason = \"checked above\")").unwrap();
        assert_eq!(codes, ["QA101", "QA104"]);
        assert_eq!(reason, "checked above");
    }

    #[test]
    fn missing_reason_parses_as_empty_for_qa100_to_flag() {
        let (codes, reason) = parse_allow("allow(QA101)").unwrap();
        assert_eq!(codes, ["QA101"]);
        assert!(reason.is_empty());
    }

    #[test]
    fn junk_is_malformed() {
        assert!(parse_allow("allow()").is_err());
        assert!(parse_allow("allow(QL001, reason = \"x\")").is_err());
        assert!(parse_allow("deny(QA101)").is_err());
        assert!(parse_allow("allow(QA101, reason = bare)").is_err());
    }

    #[test]
    fn allows_collect_with_lines() {
        let src = "fn f() {\n    // quarry-audit: allow(QA101, reason = \"peeked\")\n    x.unwrap();\n}\n// quarry-audit: nonsense\n";
        let f = SourceFile::parse("crates/demo/src/lib.rs", src);
        let (allows, malformed) = collect_allows(&f);
        assert_eq!(allows.len(), 1);
        assert_eq!(allows[0].line, 2);
        assert_eq!(malformed.len(), 1);
        assert_eq!(matching_allow(&allows, "QA101", 3), Some(0));
        assert_eq!(matching_allow(&allows, "QA101", 4), None);
        assert_eq!(matching_allow(&allows, "QA102", 3), None);
    }
}
