//! Heuristic workspace call graph, rooted at the serving layer.
//!
//! Resolution is *name-based*: a call site `foo(...)` or `x.foo(...)`
//! creates an edge to every workspace function named `foo`, in any crate.
//! That deliberately over-approximates — a `.get(...)` on a `HashMap`
//! also "reaches" every workspace `get` — because for a safety audit the
//! cheap failure mode must be a false *positive* (a finding you then
//! `allow` with a reason or baseline), never a panic site silently
//! considered unreachable. The under-approximations that remain are
//! dynamic dispatch through non-method paths (function pointers stored in
//! collections) and macros that synthesize calls; both are rare in this
//! workspace and covered by the rule fixtures.
//!
//! Roots are every non-test function in `crates/serve` — the wire surface
//! PR 5's manual panic audit covered by hand. Everything transitively
//! named from there is **serve-reachable** and subject to QA101/QA102.

use crate::index::SourceFile;
use std::collections::{HashMap, HashSet, VecDeque};

/// A function's global identity: (file index, fn index within the file).
pub type FnId = (usize, usize);

/// The workspace-wide graph over every indexed file.
pub struct CallGraph {
    /// Bare name → all functions carrying it.
    by_name: HashMap<String, Vec<FnId>>,
    /// Functions reachable from the serve roots (non-test only).
    reachable: HashSet<FnId>,
}

impl CallGraph {
    /// Build the graph and compute serve-reachability over `files`.
    pub fn build(files: &[SourceFile]) -> CallGraph {
        let mut by_name: HashMap<String, Vec<FnId>> = HashMap::new();
        for (fi, file) in files.iter().enumerate() {
            for (ii, item) in file.fns.iter().enumerate() {
                if !item.is_test {
                    by_name.entry(item.name.clone()).or_default().push((fi, ii));
                }
            }
        }

        let mut reachable: HashSet<FnId> = HashSet::new();
        let mut queue: VecDeque<FnId> = VecDeque::new();
        for (fi, file) in files.iter().enumerate() {
            if file.crate_name != "serve" {
                continue;
            }
            for (ii, item) in file.fns.iter().enumerate() {
                if !item.is_test && reachable.insert((fi, ii)) {
                    queue.push_back((fi, ii));
                }
            }
        }
        while let Some((fi, ii)) = queue.pop_front() {
            for (callee, _) in &files[fi].fns[ii].calls {
                if let Some(targets) = by_name.get(callee) {
                    for &t in targets {
                        if reachable.insert(t) {
                            queue.push_back(t);
                        }
                    }
                }
            }
        }
        CallGraph { by_name, reachable }
    }

    /// True when `id` is transitively callable from the serve roots.
    pub fn is_reachable(&self, id: FnId) -> bool {
        self.reachable.contains(&id)
    }

    /// All functions named `name` (non-test), for one-hop rule lookups.
    pub fn named(&self, name: &str) -> &[FnId] {
        self.by_name.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of reachable functions (used by the CLI summary).
    pub fn reachable_count(&self) -> usize {
        self.reachable.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn files() -> Vec<SourceFile> {
        vec![
            SourceFile::parse(
                "crates/serve/src/server.rs",
                "fn handle() { execute(); }\nfn execute() { run_query(); }",
            ),
            SourceFile::parse(
                "crates/query/src/engine.rs",
                "pub fn run_query() { deep(); }\npub fn deep() {}\npub fn island() {}",
            ),
            SourceFile::parse("crates/bench/src/lib.rs", "pub fn bench_only() { island(); }"),
        ]
    }

    #[test]
    fn serve_roots_reach_transitively() {
        let files = files();
        let g = CallGraph::build(&files);
        let id = |path: &str, name: &str| -> FnId {
            let fi = files.iter().position(|f| f.path == path).unwrap();
            let ii = files[fi].fns.iter().position(|f| f.name == name).unwrap();
            (fi, ii)
        };
        assert!(g.is_reachable(id("crates/serve/src/server.rs", "handle")));
        assert!(g.is_reachable(id("crates/query/src/engine.rs", "run_query")));
        assert!(g.is_reachable(id("crates/query/src/engine.rs", "deep")));
        // Not named from any serve-reachable body:
        assert!(!g.is_reachable(id("crates/query/src/engine.rs", "island")));
        assert!(!g.is_reachable(id("crates/bench/src/lib.rs", "bench_only")));
    }

    #[test]
    fn test_fns_are_neither_roots_nor_targets() {
        let files = vec![
            SourceFile::parse(
                "crates/serve/src/server.rs",
                "#[cfg(test)]\nmod tests { fn t() { hidden(); } }",
            ),
            SourceFile::parse("crates/query/src/lib.rs", "pub fn hidden() {}"),
        ];
        let g = CallGraph::build(&files);
        assert_eq!(g.reachable_count(), 0);
    }
}
