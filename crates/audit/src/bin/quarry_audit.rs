//! `quarry-audit` — check the workspace's safety invariants.
//!
//! ```text
//! quarry-audit [ROOT] [--deny] [--write-baseline] [--warnings] [--quiet]
//! ```
//!
//! ROOT defaults to the current directory and must contain `crates/`.
//! Reads `audit/lock-order.toml` (QA102 manifest) and
//! `audit/baseline.txt` (accepted debt) under ROOT.
//!
//! - default: print new error findings with caret renders, summarize the
//!   rest; exit 0.
//! - `--deny`: exit non-zero when any non-baselined error finding exists
//!   (the CI mode), printing how to regenerate the baseline.
//! - `--write-baseline`: accept every current error finding as debt and
//!   rewrite `audit/baseline.txt`.
//! - `--warnings`: also render warning-severity findings (QA101 indexing,
//!   QA105 unused allows) in full.

use quarry_audit::{audit_workspace, Baseline, Severity};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    deny: bool,
    write_baseline: bool,
    show_warnings: bool,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        deny: false,
        write_baseline: false,
        show_warnings: false,
        quiet: false,
    };
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--deny" => args.deny = true,
            "--write-baseline" => args.write_baseline = true,
            "--warnings" => args.show_warnings = true,
            "--quiet" => args.quiet = true,
            "--help" | "-h" => {
                println!(
                    "usage: quarry-audit [ROOT] [--deny] [--write-baseline] [--warnings] [--quiet]"
                );
                std::process::exit(0);
            }
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag}")),
            path => args.root = PathBuf::from(path),
        }
    }
    Ok(args)
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    let outcome = audit_workspace(&args.root)?;

    let baseline_path = args.root.join("audit/baseline.txt");
    if args.write_baseline {
        let error_keys: Vec<_> = outcome
            .findings
            .iter()
            .zip(&outcome.keys)
            .filter(|(f, _)| f.diagnostic.severity == Severity::Error)
            .map(|(_, k)| k.clone())
            .collect();
        std::fs::create_dir_all(baseline_path.parent().unwrap_or(&args.root))
            .map_err(|e| e.to_string())?;
        std::fs::write(&baseline_path, Baseline::render(&error_keys))
            .map_err(|e| format!("{}: {e}", baseline_path.display()))?;
        println!(
            "wrote {} entr{} to {}",
            error_keys.len(),
            if error_keys.len() == 1 { "y" } else { "ies" },
            baseline_path.display()
        );
        return Ok(true);
    }

    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => Baseline::parse(&text)?,
        Err(_) => Baseline::default(),
    };

    let new = outcome.new_findings(&baseline);
    let error_keys: Vec<_> = outcome
        .findings
        .iter()
        .zip(&outcome.keys)
        .filter(|(f, _)| f.diagnostic.severity == Severity::Error)
        .map(|(_, k)| k.clone())
        .collect();
    let baselined = error_keys.len() - new.len();
    let stale = baseline.stale(&error_keys);
    let warning_count = outcome.warnings().count();

    if !args.quiet {
        // Render new errors (and optionally warnings) with carets.
        let shown: Vec<quarry_audit::Finding> = outcome
            .findings
            .iter()
            .zip(&outcome.keys)
            .filter(|(f, k)| match f.diagnostic.severity {
                Severity::Error => !baseline.contains(k),
                Severity::Warning => args.show_warnings,
            })
            .map(|(f, _)| f.clone())
            .collect();
        for report in quarry_audit::reports(&outcome.files, &shown) {
            print!("{report}");
            println!();
        }
    }

    println!(
        "quarry-audit: {} file(s), {} serve-reachable fn(s); {} new error(s), {} baselined, {} stale baseline entr{}, {} warning(s)",
        outcome.files.len(),
        outcome.reachable_fns,
        new.len(),
        baselined,
        stale,
        if stale == 1 { "y" } else { "ies" },
        warning_count,
    );

    if !new.is_empty() && args.deny {
        println!(
            "\nnew findings fail --deny. Fix them, suppress each with\n\
             `// quarry-audit: allow(CODE, reason = \"...\")`, or accept as debt:\n\
             \n    cargo run -p quarry-audit -- --write-baseline\n\
             \nand commit the updated audit/baseline.txt."
        );
        return Ok(false);
    }
    Ok(true)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("quarry-audit: {msg}");
            ExitCode::FAILURE
        }
    }
}
