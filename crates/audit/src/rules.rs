//! The four QA rule families, plus the suppression-hygiene codes.
//!
//! | code  | severity | checks |
//! |-------|----------|--------|
//! | QA100 | error    | malformed `quarry-audit:` comment, or `allow` without a reason |
//! | QA101 | error    | `unwrap()`/`expect(`/`panic!`-family on a serve-reachable path |
//! | QA101 | warning  | indexing `[...]` with a non-literal index on a serve-reachable path |
//! | QA102 | error    | lock acquisitions violating `audit/lock-order.toml` (in-body and one call-graph hop) |
//! | QA103 | error    | per-crate forbidden constructs (`Mutex<Quarry>` in serve/cluster, `serde_json` on storage hot paths, nondeterminism in recovery/replay/replication/promotion) |
//! | QA104 | error    | `unsafe { ... }` block without a `// SAFETY:` comment |
//! | QA105 | warning  | `allow` comment that suppressed nothing |
//!
//! Rules work on the lexed token stream and the heuristic item index, so
//! text inside string literals and comments can never trip them — the
//! precision the old `! grep -rn 'Mutex<Quarry>'` CI step never had.

use crate::callgraph::CallGraph;
use crate::config::Manifest;
use crate::index::{FnItem, SourceFile};
use crate::lexer::TokKind;
use crate::suppress::{collect_allows, matching_allow};
use quarry_exec::diag::{Diagnostic, Severity, Span};

/// Rule codes, exported for tests and docs.
pub mod codes {
    /// Malformed or reason-less suppression comment.
    pub const BAD_ALLOW: &str = "QA100";
    /// Panic-capable construct on a serve-reachable path.
    pub const PANIC_REACHABLE: &str = "QA101";
    /// Lock acquisition violating the manifest order.
    pub const LOCK_ORDER: &str = "QA102";
    /// Per-crate forbidden construct.
    pub const FORBIDDEN: &str = "QA103";
    /// `unsafe` block without a SAFETY comment.
    pub const UNSAFE_UNDOCUMENTED: &str = "QA104";
    /// Suppression that suppressed nothing.
    pub const UNUSED_ALLOW: &str = "QA105";
}

/// One rule hit, carrying both its rendered diagnostic and the stable
/// identity fields the baseline keys on.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule code.
    pub code: &'static str,
    /// Workspace-relative file path.
    pub path: String,
    /// Qualified enclosing function, or `<file>` for file-scope findings.
    pub item: String,
    /// Raw source text of the flagged span.
    pub snippet: String,
    /// 1-based line of the span start (allow comments match on this).
    pub line: usize,
    /// The caret-renderable diagnostic.
    pub diagnostic: Diagnostic,
}

/// Macro names whose invocation is an unconditional (or arm-local) panic.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Idents that look like calls/indexees but are keywords.
const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "fn", "let",
    "mut", "ref", "move", "in", "as", "where", "impl", "dyn", "pub", "use", "mod", "struct",
    "enum", "trait", "type", "const", "static", "unsafe", "async", "await",
];

/// Run every rule over `files`, then apply `allow` suppressions. Returns
/// the active findings (suppressed ones removed, QA100/QA105 hygiene
/// findings added), sorted by (path, span, code).
pub fn run_all(files: &[SourceFile], graph: &CallGraph, manifest: &Manifest) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (fi, file) in files.iter().enumerate() {
        qa101_panic_reachability(file, fi, graph, &mut findings);
        qa102_lock_order(file, fi, files, graph, manifest, &mut findings);
        qa103_forbidden(file, &mut findings);
        qa104_unsafe_hygiene(file, &mut findings);
    }
    let mut out = Vec::new();
    for file in files {
        apply_suppressions(file, &mut findings, &mut out);
    }
    out.extend(findings);
    out.sort_by(|a, b| {
        (a.path.as_str(), a.diagnostic.span.start, a.code).cmp(&(
            b.path.as_str(),
            b.diagnostic.span.start,
            b.code,
        ))
    });
    out
}

/// Move `pending` findings for `file` into `out`, dropping suppressed
/// ones and appending QA100/QA105 hygiene findings.
fn apply_suppressions(file: &SourceFile, pending: &mut Vec<Finding>, out: &mut Vec<Finding>) {
    let (allows, malformed) = collect_allows(file);
    let mut used = vec![false; allows.len()];

    let mut rest = Vec::new();
    for f in pending.drain(..) {
        if f.path != file.path {
            rest.push(f);
            continue;
        }
        match matching_allow(&allows, f.code, f.line) {
            Some(i) if !allows[i].reason.is_empty() => used[i] = true,
            // A reason-less allow still suppresses its target — otherwise
            // the pair (finding + QA100) would double-report one site —
            // but QA100 below forces a reason to be written.
            Some(i) => used[i] = true,
            None => rest.push(f),
        }
    }
    *pending = rest;

    for (span, why) in malformed {
        out.push(file_finding(
            file,
            codes::BAD_ALLOW,
            span,
            format!("malformed quarry-audit comment: {why}"),
            Some("write `// quarry-audit: allow(QA101, reason = \"...\")`".to_string()),
            Severity::Error,
        ));
    }
    for (i, a) in allows.iter().enumerate() {
        if a.reason.is_empty() {
            out.push(file_finding(
                file,
                codes::BAD_ALLOW,
                a.span,
                "allow without a reason".to_string(),
                Some("suppressions must carry `reason = \"...\"`".to_string()),
                Severity::Error,
            ));
        } else if !used[i] {
            out.push(file_finding(
                file,
                codes::UNUSED_ALLOW,
                a.span,
                format!("allow({}) suppressed nothing", a.codes.join(", ")),
                Some("delete the stale suppression".to_string()),
                Severity::Warning,
            ));
        }
    }
}

fn file_finding(
    file: &SourceFile,
    code: &'static str,
    span: Span,
    message: String,
    help: Option<String>,
    severity: Severity,
) -> Finding {
    let snippet = file.src.get(span.start..span.end).unwrap_or("").to_string();
    let mut d = Diagnostic { code, severity, span, message, help: None };
    d.help = help;
    Finding {
        code,
        path: file.path.clone(),
        item: "<file>".to_string(),
        snippet,
        line: file.line_of(span.start),
        diagnostic: d,
    }
}

fn fn_finding(
    file: &SourceFile,
    item: &FnItem,
    code: &'static str,
    span: Span,
    message: String,
    help: &str,
    severity: Severity,
) -> Finding {
    let snippet = file.src.get(span.start..span.end).unwrap_or("").to_string();
    Finding {
        code,
        path: file.path.clone(),
        item: item.qual.clone(),
        snippet,
        line: file.line_of(span.start),
        diagnostic: Diagnostic {
            code,
            severity,
            span,
            message,
            help: if help.is_empty() { None } else { Some(help.to_string()) },
        },
    }
}

// ---------------------------------------------------------------- QA101

/// Panic-capable constructs in functions reachable from `quarry-serve`
/// request handling: a wire request must come back as a typed error, never
/// as a worker panic.
fn qa101_panic_reachability(
    file: &SourceFile,
    fi: usize,
    graph: &CallGraph,
    out: &mut Vec<Finding>,
) {
    for (ii, item) in file.fns.iter().enumerate() {
        if item.is_test || !graph.is_reachable((fi, ii)) || item.body.1 <= item.body.0 {
            continue;
        }
        let (from, to) = item.body;
        for i in from..to {
            let Some(t) = file.ct(i) else { continue };
            if t.kind != TokKind::Ident {
                // Indexing: `expr[ ... ]` with a non-literal index.
                if t.is_punct('[') && is_index_context(file, from, i) {
                    if let Some((end, literal)) = bracket_contents(file, i, to) {
                        if !literal {
                            let span = t.span.to(file.ct(end).map(|e| e.span).unwrap_or(t.span));
                            out.push(fn_finding(
                                file,
                                item,
                                codes::PANIC_REACHABLE,
                                span,
                                format!(
                                    "indexing with a non-literal index in serve-reachable `{}`",
                                    item.qual
                                ),
                                "prefer `.get(..)`, or document the bounds invariant with an allow",
                                Severity::Warning,
                            ));
                        }
                    }
                }
                continue;
            }
            // `.unwrap()` / `.expect(`
            if (t.text == "unwrap" || t.text == "expect")
                && i > from
                && file.ct(i - 1).is_some_and(|p| p.is_punct('.'))
                && file.ct(i + 1).is_some_and(|n| n.is_punct('('))
            {
                out.push(fn_finding(
                    file,
                    item,
                    codes::PANIC_REACHABLE,
                    t.span,
                    format!("`{}()` in serve-reachable `{}`", t.text, item.qual),
                    "return a typed error, or allow(QA101) with the infallibility argument",
                    Severity::Error,
                ));
            }
            // `panic!(` family
            if PANIC_MACROS.contains(&t.text.as_str())
                && file.ct(i + 1).is_some_and(|n| n.is_punct('!'))
            {
                out.push(fn_finding(
                    file,
                    item,
                    codes::PANIC_REACHABLE,
                    t.span,
                    format!("`{}!` in serve-reachable `{}`", t.text, item.qual),
                    "return a typed error, or allow(QA101) with the invariant that rules it out",
                    Severity::Error,
                ));
            }
        }
    }
}

/// Is the `[` at code index `i` an index expression? True when the
/// previous code token ends an expression (identifier that is not a
/// keyword, `)`, or `]`).
fn is_index_context(file: &SourceFile, from: usize, i: usize) -> bool {
    if i == from {
        return false;
    }
    match file.ct(i - 1) {
        Some(p) if p.kind == TokKind::Ident => !KEYWORDS.contains(&p.text.as_str()),
        Some(p) => p.is_punct(')') || p.is_punct(']'),
        None => false,
    }
}

/// Contents of the bracket group opening at `i`: returns
/// `(closing index, all_literal)` where `all_literal` means every token is
/// an integer literal or range punctuation — `[0]`, `[..4]`, `[0..=2]`.
fn bracket_contents(file: &SourceFile, i: usize, to: usize) -> Option<(usize, bool)> {
    let mut depth = 0i32;
    let mut literal = true;
    let mut any = false;
    for j in i..to {
        let t = file.ct(j)?;
        if t.is_punct('[') {
            depth += 1;
            continue;
        }
        if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return Some((j, literal && any));
            }
            continue;
        }
        any = true;
        let ok = t.kind == TokKind::Int || t.is_punct('.') || t.is_punct('=');
        if !ok {
            literal = false;
        }
    }
    None
}

// ---------------------------------------------------------------- QA102

/// One lock acquisition inside a function body.
#[derive(Debug, Clone)]
struct Acquisition {
    /// Field name (`tables`).
    name: String,
    /// Manifest rank.
    rank: usize,
    /// Code-token index of the field ident.
    at: usize,
    /// Code-token index where the guard is conservatively dropped: the
    /// closing brace of the innermost block containing the acquisition.
    /// (A temporary guard dies at the statement's `;`, earlier than
    /// this — treating it as block-scoped only widens the held window,
    /// which errs toward reporting, never toward missing.)
    scope_end: usize,
    /// Span of `name.lock()`-ish expression.
    span: Span,
}

/// Lock acquisitions in a body: `NAME.lock()`, `NAME.read()`,
/// `NAME.write()` with zero arguments, where NAME is ranked in the
/// manifest. Leaves (`manifest.lock_leaves`) are contractually never held
/// across another acquisition and do not participate.
fn acquisitions(file: &SourceFile, item: &FnItem, manifest: &Manifest) -> Vec<Acquisition> {
    let (from, to) = item.body;
    let mut out = Vec::new();
    for i in from..to {
        let Some(t) = file.ct(i) else { continue };
        let is_acq = matches!(t.text.as_str(), "lock" | "read" | "write")
            && t.kind == TokKind::Ident
            && file.ct(i + 1).is_some_and(|n| n.is_punct('('))
            && file.ct(i + 2).is_some_and(|n| n.is_punct(')'))
            && i >= from + 2
            && file.ct(i - 1).is_some_and(|p| p.is_punct('.'));
        if !is_acq {
            continue;
        }
        let Some(field) = file.ct(i - 2).filter(|f| f.kind == TokKind::Ident) else { continue };
        let Some(rank) = manifest.rank(&field.text) else { continue };
        let end_span = file.ct(i + 2).map(|e| e.span).unwrap_or(t.span);
        // Innermost enclosing block: first point where the running brace
        // counter dips below zero.
        let mut depth = 0i32;
        let mut scope_end = to;
        for j in i..to {
            match file.ct(j) {
                Some(b) if b.is_punct('{') => depth += 1,
                Some(b) if b.is_punct('}') => {
                    depth -= 1;
                    if depth < 0 {
                        scope_end = j;
                        break;
                    }
                }
                _ => {}
            }
        }
        out.push(Acquisition {
            name: field.text.clone(),
            rank,
            at: i,
            scope_end,
            span: field.span.to(end_span),
        });
    }
    out
}

/// Lock-order violations against the manifest, within each body and
/// across one heuristic call-graph hop.
fn qa102_lock_order(
    file: &SourceFile,
    fi: usize,
    files: &[SourceFile],
    graph: &CallGraph,
    manifest: &Manifest,
    out: &mut Vec<Finding>,
) {
    let _ = fi;
    for item in &file.fns {
        if item.is_test || item.body.1 <= item.body.0 {
            continue;
        }
        let acqs = acquisitions(file, item, manifest);

        // In-body: any later acquisition ranked *before* an earlier one
        // whose guard is still in scope.
        for (j, b) in acqs.iter().enumerate() {
            if let Some(a) = acqs[..j].iter().find(|a| a.rank > b.rank && a.scope_end > b.at) {
                out.push(fn_finding(
                    file,
                    item,
                    codes::LOCK_ORDER,
                    b.span,
                    format!(
                        "`{}` acquired after `{}` in `{}`, but the manifest orders `{}` first",
                        b.name, a.name, item.qual, b.name
                    ),
                    "reorder the acquisitions to match audit/lock-order.toml, or fix the manifest",
                    Severity::Error,
                ));
            }
        }

        // One hop: a call made after acquiring `a` whose callee directly
        // acquires something ranked before `a`.
        for (callee, pos) in &item.calls {
            let held: Vec<&Acquisition> =
                acqs.iter().filter(|a| a.at < *pos && a.scope_end > *pos).collect();
            if held.is_empty() {
                continue;
            }
            for &(cfi, cii) in graph.named(callee) {
                let cfile = &files[cfi];
                let citem = &cfile.fns[cii];
                for inner in acquisitions(cfile, citem, manifest) {
                    if let Some(a) = held.iter().find(|a| a.rank > inner.rank) {
                        let span = file.ct(*pos).map(|t| t.span).unwrap_or(item.name_span);
                        out.push(fn_finding(
                            file,
                            item,
                            codes::LOCK_ORDER,
                            span,
                            format!(
                                "`{}` calls `{}` (acquires `{}`) after acquiring `{}`; the manifest orders `{}` first",
                                item.qual, citem.qual, inner.name, a.name, inner.name
                            ),
                            "drop the held guard before the call, or fix audit/lock-order.toml",
                            Severity::Error,
                        ));
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------- QA103

/// Storage modules allowed to touch `serde_json`: the legacy-format
/// fallbacks (pre-paged snapshots/WAL records) and the error type that
/// wraps decode failures. Everything else in `crates/storage` is a hot
/// path and must stay on the binary codec.
const STORAGE_JSON_ALLOWED: &[&str] = &[
    "crates/storage/src/structured/recovery.rs",
    "crates/storage/src/snapshot.rs",
    "crates/storage/src/error.rs",
];

/// Idents whose presence in recovery/replay/replication code makes
/// replay (or a promotion decision) nondeterministic.
const NONDETERMINISM: &[&str] = &["SystemTime", "thread_rng", "random", "from_entropy"];

/// Per-crate forbidden constructs. Scans file-scope code (struct fields
/// included), skipping `#[cfg(test)]` regions.
fn qa103_forbidden(file: &SourceFile, out: &mut Vec<Finding>) {
    let scan = |i: usize| !file.in_test_region(i);

    if file.crate_name == "serve" || file.crate_name == "cluster" {
        // `Mutex<...Quarry...>`: one facade mutex serializing the serving
        // path is the PR-6 regression this rule locks out (previously the
        // `! grep -rn 'Mutex<Quarry>'` CI step). The cluster crate sits on
        // the same request path — the router and shard nodes must never
        // reintroduce the facade mutex either.
        for i in 0..file.code.len() {
            if !scan(i) {
                continue;
            }
            let Some(t) = file.ct(i) else { continue };
            if !t.is_ident("Mutex") || !file.ct(i + 1).is_some_and(|n| n.is_punct('<')) {
                continue;
            }
            let mut depth = 0i32;
            let mut j = i + 1;
            let mut hit: Option<Span> = None;
            while let Some(u) = file.ct(j) {
                if u.is_punct('<') {
                    depth += 1;
                } else if u.is_punct('>') {
                    // `->` inside generic args (fn pointer) is not a closer.
                    if !file.ct(j - 1).is_some_and(|p| p.is_punct('-')) {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                } else if u.is_ident("Quarry") {
                    hit = Some(u.span);
                }
                j += 1;
            }
            if let Some(qspan) = hit {
                out.push(file_finding(
                    file,
                    codes::FORBIDDEN,
                    t.span.to(qspan),
                    "`Mutex<Quarry>` in crates/serve: the facade mutex serializes every request"
                        .to_string(),
                    Some(
                        "reads go through SharedQuarry::snapshot(); writes through with_writer"
                            .to_string(),
                    ),
                    Severity::Error,
                ));
            }
        }
    }

    if file.crate_name == "storage" && !STORAGE_JSON_ALLOWED.contains(&file.path.as_str()) {
        for i in 0..file.code.len() {
            if !scan(i) {
                continue;
            }
            let Some(t) = file.ct(i) else { continue };
            if t.is_ident("serde_json") {
                out.push(file_finding(
                    file,
                    codes::FORBIDDEN,
                    t.span,
                    "serde_json on a storage hot path".to_string(),
                    Some(
                        "hot paths use quarry_storage::codec; JSON lives only in the legacy-fallback modules".to_string(),
                    ),
                    Severity::Error,
                ));
            }
        }
    }

    // Replication replay and promotion decisions are held to the same
    // standard as recovery: a replica's state must be a pure function of
    // the shipped bytes, and promotion must not consult clocks or
    // randomness (wall time on two nodes is not an ordering).
    let replay_code = (file.crate_name == "storage"
        && (file.path.contains("recovery")
            || file.path.contains("replication")
            || file.path.ends_with("/wal.rs")))
        || (file.crate_name == "serve" && file.path.contains("replication"))
        || (file.crate_name == "cluster"
            && (file.path.ends_with("/router.rs") || file.path.ends_with("/node.rs")));
    if replay_code {
        for i in 0..file.code.len() {
            if !scan(i) {
                continue;
            }
            let Some(t) = file.ct(i) else { continue };
            let named = t.kind == TokKind::Ident && NONDETERMINISM.contains(&t.text.as_str());
            let rand_path = t.is_ident("rand")
                && file.ct(i + 1).is_some_and(|a| a.is_punct(':'))
                && file.ct(i + 2).is_some_and(|b| b.is_punct(':'));
            if named || rand_path {
                out.push(file_finding(
                    file,
                    codes::FORBIDDEN,
                    t.span,
                    format!("nondeterministic `{}` in recovery/replay code", t.text),
                    Some("replay must be a pure function of the log bytes".to_string()),
                    Severity::Error,
                ));
            }
        }
    }
}

// ---------------------------------------------------------------- QA104

/// `unsafe { ... }` blocks must carry a `// SAFETY:` comment on the same
/// line or in the contiguous comment block directly above it.
fn qa104_unsafe_hygiene(file: &SourceFile, out: &mut Vec<Finding>) {
    // line -> (any comment on it, any SAFETY: comment on it)
    let mut comment_lines: std::collections::HashMap<usize, bool> =
        std::collections::HashMap::new();
    for c in file.tokens.iter().filter(|c| c.is_comment()) {
        let entry = comment_lines.entry(file.line_of(c.span.start)).or_insert(false);
        *entry |= c.text.contains("SAFETY:");
    }
    for i in 0..file.code.len() {
        let Some(t) = file.ct(i) else { continue };
        if !t.is_ident("unsafe") || !file.ct(i + 1).is_some_and(|n| n.is_punct('{')) {
            continue;
        }
        let line = file.line_of(t.span.start);
        // Same-line comment, or walk the unbroken run of comment lines
        // immediately above — a SAFETY: anywhere in it documents the block.
        let mut documented = comment_lines.get(&line).copied().unwrap_or(false);
        let mut l = line;
        while !documented && l > 1 {
            l -= 1;
            match comment_lines.get(&l) {
                Some(&safety) => documented = safety,
                None => break,
            }
        }
        if !documented {
            out.push(file_finding(
                file,
                codes::UNSAFE_UNDOCUMENTED,
                t.span,
                "unsafe block without a `// SAFETY:` comment".to_string(),
                Some(
                    "state the invariant that makes this sound directly above the block"
                        .to_string(),
                ),
                Severity::Error,
            ));
        }
    }
}

// -------------------------------------------------------------- helpers

/// Group findings per file into renderable reports (used by the CLI and
/// the golden tests).
pub fn reports(files: &[SourceFile], findings: &[Finding]) -> Vec<quarry_exec::diag::LintReport> {
    let mut out = Vec::new();
    for file in files {
        let ds: Vec<Diagnostic> =
            findings.iter().filter(|f| f.path == file.path).map(|f| f.diagnostic.clone()).collect();
        if !ds.is_empty() {
            out.push(quarry_exec::diag::LintReport::new(file.path.clone(), file.src.clone(), ds));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;

    fn run(sources: &[(&str, &str)]) -> Vec<Finding> {
        let manifest = Manifest::parse(
            "order = [\"writer\", \"tables\", \"active\", \"docs\"]\nleaves = [\"qcache\"]\n",
        )
        .unwrap();
        let files: Vec<SourceFile> = sources.iter().map(|(p, s)| SourceFile::parse(p, s)).collect();
        let graph = CallGraph::build(&files);
        run_all(&files, &graph, &manifest)
    }

    #[test]
    fn qa101_flags_reachable_unwrap_but_not_unreachable_or_test() {
        let fs = run(&[
            (
                "crates/serve/src/server.rs",
                "fn handle() { helper(); }\n#[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }",
            ),
            (
                "crates/query/src/lib.rs",
                "pub fn helper() { x.unwrap(); }\npub fn island_fn() { y.expect(\"no\"); }",
            ),
        ]);
        let q101: Vec<&Finding> = fs.iter().filter(|f| f.code == codes::PANIC_REACHABLE).collect();
        assert_eq!(q101.len(), 1, "{q101:#?}");
        assert_eq!(q101[0].item, "helper");
        assert_eq!(q101[0].snippet, "unwrap");
    }

    #[test]
    fn qa101_indexing_warns_on_non_literal_only() {
        let fs = run(&[(
            "crates/serve/src/server.rs",
            "fn handle(v: &[u8], i: usize) { let _ = v[i]; let _ = v[0]; let _ = &v[..4]; }",
        )]);
        let idx: Vec<&Finding> = fs
            .iter()
            .filter(|f| {
                f.code == codes::PANIC_REACHABLE && f.diagnostic.severity == Severity::Warning
            })
            .collect();
        assert_eq!(idx.len(), 1, "{idx:#?}");
        assert!(idx[0].snippet.contains('i'));
    }

    #[test]
    fn qa102_flags_inverted_order_in_body_and_across_a_hop() {
        let fs = run(&[(
            "crates/storage/src/lib.rs",
            "fn bad(&self) { let a = self.active.lock(); let t = self.tables.lock(); }\n\
             fn hop(&self) { let d = self.docs.lock(); inner_locker(); }\n\
             fn inner_locker() { STATE.tables.lock(); }\n\
             fn good(&self) { let t = self.tables.lock(); let a = self.active.lock(); }",
        )]);
        let q102: Vec<&Finding> = fs.iter().filter(|f| f.code == codes::LOCK_ORDER).collect();
        assert_eq!(q102.len(), 2, "{q102:#?}");
        assert!(q102.iter().any(|f| f.item == "bad"));
        assert!(q102.iter().any(|f| f.item == "hop" && f.snippet == "inner_locker"));
    }

    #[test]
    fn qa102_dropped_guard_does_not_order_later_acquisitions() {
        // The `active` guard dies at its block's closing brace, so the
        // later `tables` acquisition is not an inversion (the checkpoint
        // quiescence-check pattern).
        let fs = run(&[(
            "crates/storage/src/lib.rs",
            "fn ckpt(&self) {\n    { let a = self.active.lock(); if a.len() > 0 { return; } }\n    let t = self.tables.lock();\n}",
        )]);
        assert!(!fs.iter().any(|f| f.code == codes::LOCK_ORDER), "{fs:#?}");
    }

    #[test]
    fn qa103_mutex_quarry_fires_only_in_serve_and_not_in_strings() {
        let fs = run(&[
            (
                "crates/serve/src/state.rs",
                "struct S { q: Mutex<Quarry> }\nconst P: &str = \"Mutex<Quarry>\";",
            ),
            ("crates/core/src/lib.rs", "struct T { q: Mutex<Quarry> }"),
        ]);
        let q103: Vec<&Finding> = fs.iter().filter(|f| f.code == codes::FORBIDDEN).collect();
        assert_eq!(q103.len(), 1, "{q103:#?}");
        assert_eq!(q103[0].path, "crates/serve/src/state.rs");
    }

    #[test]
    fn qa103_mutex_quarry_also_covers_the_cluster_request_path() {
        let fs = run(&[("crates/cluster/src/router.rs", "struct R { q: Mutex<Quarry> }")]);
        let q103: Vec<&Finding> = fs.iter().filter(|f| f.code == codes::FORBIDDEN).collect();
        assert_eq!(q103.len(), 1, "{q103:#?}");
    }

    #[test]
    fn qa103_nondeterminism_in_replication_and_promotion_code() {
        // Promotion decisions and replay must not consult clocks or
        // randomness; Instant-based backoff lives outside these checks
        // because `Instant` is not on the NONDETERMINISM list.
        let fs = run(&[
            ("crates/serve/src/replication.rs", "fn pick() { let t = SystemTime::now(); }"),
            ("crates/cluster/src/node.rs", "fn promote() { let r = rand::random(); }"),
            ("crates/cluster/src/ring.rs", "fn ok() { let t = SystemTime::now(); }"),
        ]);
        let q103: Vec<&Finding> = fs.iter().filter(|f| f.code == codes::FORBIDDEN).collect();
        // serve/replication: 1; cluster/node: 2 (the `rand::` path and
        // `random`); ring.rs is not a decision path, so 0.
        assert_eq!(q103.len(), 3, "{q103:#?}");
        assert!(q103.iter().all(|f| !f.path.contains("ring")));
    }

    #[test]
    fn qa103_serde_json_respects_the_legacy_allowlist() {
        let fs = run(&[
            ("crates/storage/src/pager.rs", "use serde_json::to_vec;"),
            ("crates/storage/src/snapshot.rs", "use serde_json::to_vec;"),
        ]);
        let q103: Vec<&Finding> = fs.iter().filter(|f| f.code == codes::FORBIDDEN).collect();
        assert_eq!(q103.len(), 1);
        assert_eq!(q103[0].path, "crates/storage/src/pager.rs");
    }

    #[test]
    fn qa103_nondeterminism_in_replay_code() {
        let fs = run(&[(
            "crates/storage/src/structured/recovery.rs",
            "fn replay() { let t = SystemTime::now(); let r = rand::random(); }",
        )]);
        // SystemTime, the `rand::` path, and `random` each fire.
        let q103 = fs.iter().filter(|f| f.code == codes::FORBIDDEN).count();
        assert_eq!(q103, 3);
    }

    #[test]
    fn qa104_unsafe_needs_safety_comment() {
        let fs = run(&[(
            "crates/corpus/src/lib.rs",
            "fn a() { unsafe { x() } }\nfn b() {\n    // SAFETY: bytes stay ASCII\n    unsafe { y() }\n}",
        )]);
        let q104: Vec<&Finding> =
            fs.iter().filter(|f| f.code == codes::UNSAFE_UNDOCUMENTED).collect();
        assert_eq!(q104.len(), 1, "{q104:#?}");
        assert_eq!(q104[0].item, "<file>");
    }

    #[test]
    fn qa104_safety_anywhere_in_the_contiguous_comment_block_counts() {
        let fs = run(&[(
            "crates/corpus/src/lib.rs",
            "fn a() {\n    // SAFETY: only ASCII digits are written,\n    // so the buffer stays\n    // valid UTF-8.\n    unsafe { y() }\n}\nfn b() {\n    // SAFETY: too far away\n\n    unsafe { z() }\n}",
        )]);
        // `a` is documented (SAFETY: heads a contiguous comment run);
        // `b` is not (a blank line breaks the run).
        let q104 = fs.iter().filter(|f| f.code == codes::UNSAFE_UNDOCUMENTED).count();
        assert_eq!(q104, 1, "{fs:#?}");
    }

    #[test]
    fn allow_with_reason_suppresses_and_unused_allow_warns() {
        let fs = run(&[(
            "crates/serve/src/server.rs",
            "fn handle() {\n    // quarry-audit: allow(QA101, reason = \"length checked\")\n    x.unwrap();\n}\n// quarry-audit: allow(QA104, reason = \"stale\")\nfn other() {}\n",
        )]);
        assert!(!fs.iter().any(|f| f.code == codes::PANIC_REACHABLE), "{fs:#?}");
        let unused: Vec<&Finding> = fs.iter().filter(|f| f.code == codes::UNUSED_ALLOW).collect();
        assert_eq!(unused.len(), 1);
    }

    #[test]
    fn allow_without_reason_is_qa100_and_still_suppresses_its_target() {
        let fs = run(&[(
            "crates/serve/src/server.rs",
            "fn handle() {\n    // quarry-audit: allow(QA101)\n    x.unwrap();\n}\n",
        )]);
        assert_eq!(fs.iter().filter(|f| f.code == codes::BAD_ALLOW).count(), 1);
        assert!(!fs.iter().any(|f| f.code == codes::PANIC_REACHABLE));
    }
}
