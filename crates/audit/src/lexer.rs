//! A purpose-built Rust lexer: the token substrate for every QA rule.
//!
//! The container is offline, so the analyzer cannot lean on `syn` or
//! `proc-macro2`; instead this module tokenizes Rust source directly, the
//! same way the QDL front end owns its own lexer. Fidelity goals are those
//! of a *scanner*, not a compiler front end:
//!
//! - every token carries its byte [`Span`] so findings render through the
//!   shared caret renderer (`quarry_exec::diag`);
//! - string/char/byte literals (including raw strings with any `#` depth)
//!   are opaque single tokens, so `"unwrap()"` inside a string can never
//!   look like a call;
//! - comments are **kept** in the stream (`//`, `///`, `//!`, nested
//!   `/* */`) because two rule inputs live in comments: `// SAFETY:`
//!   justifications (QA104) and `// quarry-audit: allow(...)` suppressions;
//! - everything else is an `Ident`, a numeric literal, a lifetime, or a
//!   single-character `Punct`. Multi-character operators are left as
//!   adjacent puncts; rules that care (`::`, `->`) match pairs.
//!
//! Unterminated constructs do not abort the scan: the lexer closes them at
//! end of input so a half-edited file still produces a best-effort stream
//! (an audit tool must degrade, not crash, on weird input).

use quarry_exec::diag::Span;

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `unsafe`, `unwrap`, ...).
    Ident,
    /// Lifetime (`'a`) — distinguished from char literals.
    Lifetime,
    /// Integer literal (`42`, `0xFF`, `1_000u64`).
    Int,
    /// Float literal (`1.5`, `2e8`).
    Float,
    /// String, raw-string, byte-string, char, or byte literal — opaque.
    Literal,
    /// `// ...` comment (doc comments included), text without newline.
    LineComment,
    /// `/* ... */` comment, nesting handled.
    BlockComment,
    /// Any other single character (`{`, `.`, `#`, `<`, ...).
    Punct,
}

/// One lexeme with its location.
#[derive(Debug, Clone)]
pub struct Token {
    /// Classification.
    pub kind: TokKind,
    /// Byte range in the source.
    pub span: Span,
    /// The lexeme text (for `Punct`, a single character).
    pub text: String,
}

impl Token {
    /// True for an identifier with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True for a punct with exactly this character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }

    /// True for either comment kind.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }
}

/// Tokenize `src` into a full stream, comments included.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer { src: src.as_bytes(), pos: 0, out: Vec::new() }.run(src)
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    out: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn run(mut self, text: &str) -> Vec<Token> {
        while self.pos < self.src.len() {
            let start = self.pos;
            let b = self.src[self.pos];
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.pos += 1;
                }
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(text),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(text),
                b'r' if self.raw_string_ahead(0) => self.raw_string(text, 0),
                b'b' => match (self.peek(1), self.peek(2)) {
                    (Some(b'"'), _) => {
                        self.pos += 1;
                        self.quoted(text, b'"', start);
                    }
                    (Some(b'\''), _) => {
                        self.pos += 1;
                        self.quoted(text, b'\'', start);
                    }
                    (Some(b'r'), _) if self.raw_string_ahead(1) => self.raw_string(text, 1),
                    _ => self.ident(text),
                }, // `b"..."` / `b'x'` / `br#"..."#` byte literals
                b'"' => self.quoted(text, b'"', start),
                b'\'' => self.char_or_lifetime(text),
                b'0'..=b'9' => self.number(text),
                b'_' | b'a'..=b'z' | b'A'..=b'Z' => self.ident(text),
                _ => {
                    // One punct per char; multi-byte UTF-8 advances whole.
                    let ch_len = utf8_len(b);
                    self.pos = (self.pos + ch_len).min(self.src.len());
                    self.push(TokKind::Punct, start, text);
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokKind, start: usize, text: &str) {
        let span = Span::new(start, self.pos);
        self.out.push(Token { kind, span, text: text[start..self.pos].to_string() });
    }

    fn line_comment(&mut self, text: &str) {
        let start = self.pos;
        while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
            self.pos += 1;
        }
        self.push(TokKind::LineComment, start, text);
    }

    fn block_comment(&mut self, text: &str) {
        let start = self.pos;
        self.pos += 2;
        let mut depth = 1usize;
        while self.pos < self.src.len() && depth > 0 {
            if self.src[self.pos] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.pos += 2;
            } else if self.src[self.pos] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.pos += 2;
            } else {
                self.pos += 1;
            }
        }
        self.push(TokKind::BlockComment, start, text);
    }

    /// Is `r#*"` (any number of `#`s) at offset `ahead` from `pos`?
    fn raw_string_ahead(&self, ahead: usize) -> bool {
        let mut i = self.pos + ahead;
        if self.src.get(i) != Some(&b'r') {
            return false;
        }
        i += 1;
        while self.src.get(i) == Some(&b'#') {
            i += 1;
        }
        self.src.get(i) == Some(&b'"')
    }

    /// Lex `r"..."` / `r#"..."#` (with optional `b` prefix already counted
    /// in `r_at`): consume up to the matching `"#...#` of the same depth.
    fn raw_string(&mut self, text: &str, r_at: usize) {
        let start = self.pos;
        self.pos += r_at; // skip optional `b`, landing on `r`
        self.pos += 1; // `r`
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.pos += 1;
        }
        self.pos += 1; // opening quote
        while self.pos < self.src.len() {
            if self.src[self.pos] == b'"' {
                let mut ok = true;
                for k in 0..hashes {
                    if self.peek(1 + k) != Some(b'#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    self.pos += 1 + hashes;
                    break;
                }
            }
            self.pos += 1;
        }
        self.push(TokKind::Literal, start, text);
    }

    /// Lex a `"`- or `'`-delimited literal with `\` escapes; `start` is
    /// where the literal began (before any `b` prefix).
    fn quoted(&mut self, text: &str, delim: u8, start: usize) {
        self.pos += 1; // opening delimiter
        while self.pos < self.src.len() {
            match self.src[self.pos] {
                b'\\' => self.pos = (self.pos + 2).min(self.src.len()),
                b if b == delim => {
                    self.pos += 1;
                    break;
                }
                _ => self.pos += 1,
            }
        }
        self.push(TokKind::Literal, start, text);
    }

    /// `'` starts either a char literal (`'x'`, `'\n'`) or a lifetime
    /// (`'a`). Rust's own rule: it is a lifetime when the quote is followed
    /// by an identifier that is *not* closed by another quote.
    fn char_or_lifetime(&mut self, text: &str) {
        let start = self.pos;
        if self.peek(1) == Some(b'\\') {
            return self.quoted(text, b'\'', start);
        }
        let mut i = self.pos + 1;
        while self.src.get(i).is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'_') {
            i += 1;
        }
        if i > self.pos + 1 && self.src.get(i) != Some(&b'\'') {
            self.pos = i;
            self.push(TokKind::Lifetime, start, text);
        } else {
            self.quoted(text, b'\'', start);
        }
    }

    fn number(&mut self, text: &str) {
        let start = self.pos;
        let mut kind = TokKind::Int;
        if self.src[self.pos] == b'0' && matches!(self.peek(1), Some(b'x' | b'o' | b'b')) {
            self.pos += 2;
            while self.src.get(self.pos).is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'_') {
                self.pos += 1;
            }
            return self.push(TokKind::Int, start, text);
        }
        while self.src.get(self.pos).is_some_and(|b| b.is_ascii_digit() || *b == b'_') {
            self.pos += 1;
        }
        // `1.5` is a float; `1..4` keeps the int and leaves `..` alone.
        if self.peek(0) == Some(b'.') && self.peek(1).is_some_and(|b| b.is_ascii_digit()) {
            kind = TokKind::Float;
            self.pos += 1;
            while self.src.get(self.pos).is_some_and(|b| b.is_ascii_digit() || *b == b'_') {
                self.pos += 1;
            }
        }
        // Exponent / type suffix (`2e8`, `1u64`, `1.5f32`).
        if self.peek(0).is_some_and(|b| b.is_ascii_alphabetic()) {
            if matches!(self.peek(0), Some(b'e' | b'E'))
                && self.peek(1).is_some_and(|b| b.is_ascii_digit() || b == b'+' || b == b'-')
            {
                kind = TokKind::Float;
                self.pos += 1;
                if matches!(self.peek(0), Some(b'+' | b'-')) {
                    self.pos += 1;
                }
            }
            while self.src.get(self.pos).is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'_') {
                self.pos += 1;
            }
        }
        self.push(kind, start, text);
    }

    fn ident(&mut self, text: &str) {
        let start = self.pos;
        while self.src.get(self.pos).is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'_') {
            self.pos += 1;
        }
        self.push(TokKind::Ident, start, text);
    }
}

fn utf8_len(b: u8) -> usize {
    match b {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn strings_are_opaque_to_rules() {
        let toks = kinds(r#"let s = "x.unwrap()"; s"#);
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Literal && t.contains("unwrap")));
        // No Ident token named unwrap leaked out of the string.
        assert!(!toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "unwrap"));
    }

    #[test]
    fn raw_strings_with_hashes_and_byte_literals() {
        let toks = kinds(r##"let a = r#"quote " inside"#; let b = br"raw"; let c = b'x';"##);
        let lits: Vec<&str> =
            toks.iter().filter(|(k, _)| *k == TokKind::Literal).map(|(_, t)| t.as_str()).collect();
        assert_eq!(lits, [r##"r#"quote " inside"#"##, r#"br"raw""#, "b'x'"]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'y'; let n = '\\n'; }");
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).count(), 2);
        let lits: Vec<&str> =
            toks.iter().filter(|(k, _)| *k == TokKind::Literal).map(|(_, t)| t.as_str()).collect();
        assert_eq!(lits, ["'y'", "'\\n'"]);
    }

    #[test]
    fn comments_survive_with_text() {
        let toks = lex("// SAFETY: fine\n/* block /* nested */ done */ fn f() {}");
        assert_eq!(toks[0].kind, TokKind::LineComment);
        assert!(toks[0].text.contains("SAFETY:"));
        assert_eq!(toks[1].kind, TokKind::BlockComment);
        assert!(toks[1].text.ends_with("done */"));
        assert!(toks[2].is_ident("fn"));
    }

    #[test]
    fn numbers_ranges_and_indexing_shapes() {
        let toks = kinds("a[0..4]; b[i]; 1.5; 0xFF; 2e8; 1_000u64");
        let ints: Vec<&str> =
            toks.iter().filter(|(k, _)| *k == TokKind::Int).map(|(_, t)| t.as_str()).collect();
        assert_eq!(ints, ["0", "4", "0xFF", "1_000u64"]);
        let floats: Vec<&str> =
            toks.iter().filter(|(k, _)| *k == TokKind::Float).map(|(_, t)| t.as_str()).collect();
        assert_eq!(floats, ["1.5", "2e8"]);
    }

    #[test]
    fn unterminated_constructs_do_not_hang_or_panic() {
        for src in ["\"open", "/* open", "r#\"open", "'", "b\"open"] {
            let toks = lex(src);
            assert!(!toks.is_empty(), "no tokens for {src:?}");
        }
    }

    #[test]
    fn spans_cover_the_source_exactly() {
        let src = "fn main() { x.lock(); } // tail";
        for t in lex(src) {
            assert_eq!(&src[t.span.start..t.span.end], t.text);
        }
    }
}
