//! Audit configuration: the lock-order manifest and rule scoping tables.
//!
//! The lock order lives in `audit/lock-order.toml` — the machine-readable
//! form of what docs/concurrency.md used to state only in prose, so the
//! doc and the check cannot drift. The parser here is a tiny hand-rolled
//! reader for the one shape the manifest uses (the container is offline;
//! no toml crate): `key = [ "a", "b", ... ]` arrays, `#` comments, and
//! ignored `[section]` headers.

use std::collections::HashMap;

/// Parsed audit manifest.
#[derive(Debug, Clone, Default)]
pub struct Manifest {
    /// Lock names in acquisition order, outermost first. Rank = index.
    pub lock_order: Vec<String>,
    /// Lock names exempt from ordering (leaves that are never held across
    /// another acquisition by contract).
    pub lock_leaves: Vec<String>,
}

impl Manifest {
    /// Parse the manifest text. Unknown keys are ignored so the file can
    /// grow without breaking older binaries.
    pub fn parse(text: &str) -> Result<Manifest, String> {
        let arrays = parse_string_arrays(text)?;
        Ok(Manifest {
            lock_order: arrays.get("order").cloned().unwrap_or_default(),
            lock_leaves: arrays.get("leaves").cloned().unwrap_or_default(),
        })
    }

    /// Rank of a lock name in the manifest order (lower = acquire first).
    /// `None` for unlisted names and for leaves.
    pub fn rank(&self, name: &str) -> Option<usize> {
        self.lock_order.iter().position(|n| n == name)
    }

    /// True when `name` participates in lock tracking at all.
    pub fn tracks(&self, name: &str) -> bool {
        self.rank(name).is_some() || self.lock_leaves.iter().any(|n| n == name)
    }
}

/// Extract every `key = [ "...", ... ]` binding, tolerating multi-line
/// arrays, trailing commas, `#` comments, and `[section]` headers.
fn parse_string_arrays(text: &str) -> Result<HashMap<String, Vec<String>>, String> {
    let mut out = HashMap::new();
    let mut lines = text.lines().enumerate().peekable();
    while let Some((ln, raw)) = lines.next() {
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() || line.starts_with('[') {
            continue;
        }
        let Some((key, rest)) = line.split_once('=') else {
            return Err(format!("line {}: expected `key = [...]`", ln + 1));
        };
        let key = key.trim().to_string();
        let mut body = rest.trim().to_string();
        if !body.starts_with('[') {
            return Err(format!("line {}: `{key}` is not an array", ln + 1));
        }
        while !body.contains(']') {
            let Some((_, more)) = lines.next() else {
                return Err(format!("line {}: unterminated array for `{key}`", ln + 1));
            };
            body.push(' ');
            body.push_str(strip_comment(more).trim());
        }
        let inner = body.trim_start_matches('[').split(']').next().unwrap_or("");
        let mut items = Vec::new();
        for part in inner.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let unq = part.trim_matches('"');
            if unq.len() + 2 != part.len() {
                return Err(format!("line {}: `{part}` is not a quoted string", ln + 1));
            }
            items.push(unq.to_string());
        }
        out.insert(key, items);
    }
    Ok(out)
}

fn strip_comment(line: &str) -> &str {
    // `#` starts a comment outside quotes; the manifest never quotes `#`.
    line.split('#').next().unwrap_or("")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_multiline_arrays_with_comments() {
        let m = Manifest::parse(
            "# The lock order\norder = [\n  \"writer\",   # outermost\n  \"tables\",\n  \"active\",\n]\n\n[readstate]\nleaves = [\"qcache\", \"check\"]\n",
        )
        .unwrap();
        assert_eq!(m.lock_order, ["writer", "tables", "active"]);
        assert_eq!(m.lock_leaves, ["qcache", "check"]);
        assert_eq!(m.rank("tables"), Some(1));
        assert_eq!(m.rank("qcache"), None);
        assert!(m.tracks("qcache"));
        assert!(!m.tracks("unrelated"));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(Manifest::parse("order = oops").is_err());
        assert!(Manifest::parse("order = [ bare ]").is_err());
        assert!(Manifest::parse("order = [\n \"open\n").is_err());
    }
}
