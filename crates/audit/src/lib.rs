//! `quarry-audit` — the workspace invariant checker.
//!
//! The paper's thesis is that unstructured artifacts become manageable
//! once you impose structure and check it mechanically. PR 3 applied that
//! to QDL programs (QL/QQ lints); this crate applies it to the Rust
//! workspace's *own* safety invariants, which until now lived in prose
//! and in people's heads:
//!
//! - PR 5's manual panic audit of server-reachable paths → **QA101**
//!   panic-reachability over a heuristic call graph rooted in
//!   `crates/serve`;
//! - docs/concurrency.md's lock-order prose → **QA102**, checked against
//!   the machine-readable manifest `audit/lock-order.toml`;
//! - the `! grep -rn 'Mutex<Quarry>'` CI step (and its unwritten
//!   siblings) → **QA103** per-crate forbidden constructs;
//! - unsafe-block hygiene → **QA104** `// SAFETY:` enforcement.
//!
//! Findings render as rustc-style caret diagnostics through
//! [`quarry_exec::diag`] — the same renderer the QDL and query linters
//! use. Suppression needs a written reason
//! (`// quarry-audit: allow(QA101, reason = "...")`); pre-existing debt
//! is tracked in a checked-in baseline (`audit/baseline.txt`) so only
//! *new* findings fail CI. See docs/audit.md for the catalogue.

#![forbid(unsafe_code)]

pub mod baseline;
pub mod callgraph;
pub mod config;
pub mod index;
pub mod lexer;
pub mod rules;
pub mod suppress;

pub use baseline::{keys_for, Baseline, Key};
pub use callgraph::CallGraph;
pub use config::Manifest;
pub use index::SourceFile;
pub use quarry_exec::diag::{Diagnostic, LintReport, Severity, Span};
pub use rules::{codes, reports, run_all, Finding};

use std::path::Path;

/// Everything one audit pass produced.
pub struct Outcome {
    /// The indexed files, in scan order.
    pub files: Vec<SourceFile>,
    /// Active findings (suppressions already applied), sorted.
    pub findings: Vec<Finding>,
    /// Baseline keys parallel to `findings`.
    pub keys: Vec<Key>,
    /// Number of functions reachable from the serve roots.
    pub reachable_fns: usize,
}

impl Outcome {
    /// Findings not covered by `baseline`, with their keys.
    pub fn new_findings<'a>(&'a self, baseline: &Baseline) -> Vec<(&'a Finding, &'a Key)> {
        self.findings
            .iter()
            .zip(&self.keys)
            .filter(|(f, k)| f.diagnostic.severity == Severity::Error && !baseline.contains(k))
            .collect()
    }

    /// Warning-severity findings (never deny, never baselined).
    pub fn warnings(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.diagnostic.severity == Severity::Warning)
    }

    /// Error-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.diagnostic.severity == Severity::Error)
    }
}

/// Audit an in-memory file set (used by every test fixture): `sources`
/// are `(workspace-relative path, text)` pairs.
pub fn audit_sources(sources: Vec<(String, String)>, manifest: &Manifest) -> Outcome {
    let files: Vec<SourceFile> = sources.iter().map(|(p, s)| SourceFile::parse(p, s)).collect();
    let graph = CallGraph::build(&files);
    let findings = run_all(&files, &graph, manifest);
    let keys = keys_for(&findings);
    Outcome { reachable_fns: graph.reachable_count(), files, findings, keys }
}

/// Enumerate the workspace's auditable sources under `root`: every `.rs`
/// file below `crates/*/src` and the facade's `src/`. `shims/` (vendored
/// stand-ins for external crates) and test/fixture trees are out of
/// scope — the audit governs this workspace's own code.
pub fn load_workspace(root: &Path) -> Result<Vec<(String, String)>, String> {
    let mut sources = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<std::path::PathBuf> = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("{}: {e}", crates_dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        collect_rs(&dir.join("src"), root, &mut sources)?;
    }
    collect_rs(&root.join("src"), root, &mut sources)?;
    if sources.is_empty() {
        return Err(format!("no .rs sources under {}", root.display()));
    }
    Ok(sources)
}

fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<(String, String)>) -> Result<(), String> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|e| e.to_string())?
                .to_string_lossy()
                .replace('\\', "/");
            let text =
                std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
            out.push((rel, text));
        }
    }
    Ok(())
}

/// Run the full audit over an on-disk workspace root, loading the
/// manifest from `audit/lock-order.toml` (missing file = empty manifest).
pub fn audit_workspace(root: &Path) -> Result<Outcome, String> {
    let manifest_path = root.join("audit/lock-order.toml");
    let manifest = match std::fs::read_to_string(&manifest_path) {
        Ok(text) => {
            Manifest::parse(&text).map_err(|e| format!("{}: {e}", manifest_path.display()))?
        }
        Err(_) => Manifest::default(),
    };
    Ok(audit_sources(load_workspace(root)?, &manifest))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn audit_sources_end_to_end() {
        let manifest = Manifest::parse("order = [\"tables\", \"active\"]").unwrap();
        let out = audit_sources(
            vec![(
                "crates/serve/src/server.rs".to_string(),
                "fn handle() { x.unwrap(); }".to_string(),
            )],
            &manifest,
        );
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.keys.len(), 1);
        assert_eq!(out.findings[0].code, codes::PANIC_REACHABLE);
        assert_eq!(out.reachable_fns, 1);
        let empty = Baseline::default();
        assert_eq!(out.new_findings(&empty).len(), 1);
        let accepted = Baseline::parse(&Baseline::render(&out.keys)).unwrap();
        assert_eq!(out.new_findings(&accepted).len(), 0);
    }
}
