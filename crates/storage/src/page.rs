//! Fixed-size storage pages.
//!
//! Every paged file (checkpoint images today; see [`crate::pager`]) is an
//! array of [`PAGE_SIZE`]-byte pages. A page is self-verifying: its header
//! carries a CRC-32 over everything after the checksum field, so a torn
//! write, a zero-filled tail, or bit rot inside any single page is caught
//! at read time as [`StorageError::Corrupt`] rather than silently decoded.
//!
//! Header layout (16 bytes, little-endian):
//!
//! ```text
//! offset  size  field
//!      0     4  crc32 over bytes [4..4096]
//!      4     1  page type (Free / Meta / Directory / Heap)
//!      5     1  flags (reserved, must be 0)
//!      6     2  record count starting in this page (informational)
//!      8     2  payload length in bytes (0..=4080)
//!     10     4  next page id in the chain (0 = none)
//!     14     2  reserved (must be 0)
//! ```
//!
//! The remaining [`PAGE_CAPACITY`] bytes are payload. Records are *not*
//! constrained to a page: long records span a chain of pages linked by
//! `next`, and readers concatenate payloads before decoding (the
//! [`crate::codec`] framing is self-delimiting). An all-zero page never
//! verifies because the CRC of 4092 zero bytes is non-zero.

use crate::error::StorageError;
use crate::wal::crc32;
use crate::Result;

/// Size of every page on disk, header included.
pub const PAGE_SIZE: usize = 4096;
/// Header bytes reserved at the start of each page.
pub const PAGE_HEADER: usize = 16;
/// Payload bytes available per page.
pub const PAGE_CAPACITY: usize = PAGE_SIZE - PAGE_HEADER;
/// Page id `0` is the pager's meta page, so `0` doubles as "no page" in
/// chain links and the freelist.
pub const NO_PAGE: u32 = 0;

/// What a page holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageType {
    /// On the freelist, available for reuse.
    Free,
    /// The pager's metadata page (always page 0).
    Meta,
    /// Table directory: schemas plus chain heads / tree roots.
    Directory,
    /// Table heap: encoded `(row_id, row)` records.
    Heap,
    /// B-tree leaf: sorted key/value entries; `next` links the right
    /// sibling for range scans (see [`crate::btree`]).
    BtreeLeaf,
    /// B-tree interior node: child pointers separated by keys.
    BtreeInner,
    /// Overflow chain holding one oversized B-tree key or value.
    Overflow,
}

impl PageType {
    fn tag(self) -> u8 {
        match self {
            PageType::Free => 0,
            PageType::Meta => 1,
            PageType::Directory => 2,
            PageType::Heap => 3,
            PageType::BtreeLeaf => 4,
            PageType::BtreeInner => 5,
            PageType::Overflow => 6,
        }
    }

    fn from_tag(tag: u8) -> Result<PageType> {
        Ok(match tag {
            0 => PageType::Free,
            1 => PageType::Meta,
            2 => PageType::Directory,
            3 => PageType::Heap,
            4 => PageType::BtreeLeaf,
            5 => PageType::BtreeInner,
            6 => PageType::Overflow,
            other => {
                return Err(StorageError::Corrupt(format!("unknown page type {other}")));
            }
        })
    }
}

/// An in-memory page image.
#[derive(Debug, Clone)]
pub struct Page {
    /// Page type.
    pub ptype: PageType,
    /// Records starting in this page (informational; chains may split one
    /// record across pages).
    pub count: u16,
    /// Used payload bytes.
    pub len: u16,
    /// Next page in this chain (heap chain, directory chain, or freelist);
    /// [`NO_PAGE`] terminates.
    pub next: u32,
    /// Payload, `PAGE_CAPACITY` bytes; only `len` of them are meaningful.
    pub data: Box<[u8; PAGE_CAPACITY]>,
}

impl Page {
    /// A fresh, empty page of the given type.
    pub fn new(ptype: PageType) -> Page {
        Page { ptype, count: 0, len: 0, next: NO_PAGE, data: Box::new([0u8; PAGE_CAPACITY]) }
    }

    /// Payload bytes currently in use.
    pub fn payload(&self) -> &[u8] {
        &self.data[..self.len as usize]
    }

    /// Serialize into a `PAGE_SIZE` image, computing the checksum.
    pub fn encode(&self) -> [u8; PAGE_SIZE] {
        let mut buf = [0u8; PAGE_SIZE];
        buf[4] = self.ptype.tag();
        // buf[5] (flags) stays 0.
        buf[6..8].copy_from_slice(&self.count.to_le_bytes());
        buf[8..10].copy_from_slice(&self.len.to_le_bytes());
        buf[10..14].copy_from_slice(&self.next.to_le_bytes());
        // buf[14..16] (reserved) stays 0.
        buf[PAGE_HEADER..].copy_from_slice(&self.data[..]);
        let crc = crc32(&buf[4..]);
        buf[0..4].copy_from_slice(&crc.to_le_bytes());
        buf
    }

    /// Parse and verify a `PAGE_SIZE` image.
    pub fn decode(buf: &[u8]) -> Result<Page> {
        if buf.len() != PAGE_SIZE {
            return Err(StorageError::Corrupt(format!(
                "page image is {} bytes, want {PAGE_SIZE}",
                buf.len()
            )));
        }
        let stored = u32::from_le_bytes(buf[0..4].try_into().unwrap());
        let actual = crc32(&buf[4..]);
        if stored != actual {
            return Err(StorageError::Corrupt(format!(
                "page checksum mismatch: stored {stored:#010x}, computed {actual:#010x}"
            )));
        }
        let ptype = PageType::from_tag(buf[4])?;
        if buf[5] != 0 || buf[14] != 0 || buf[15] != 0 {
            return Err(StorageError::Corrupt("page reserved bytes are non-zero".into()));
        }
        let count = u16::from_le_bytes(buf[6..8].try_into().unwrap());
        let len = u16::from_le_bytes(buf[8..10].try_into().unwrap());
        if len as usize > PAGE_CAPACITY {
            return Err(StorageError::Corrupt(format!("page payload length {len} > capacity")));
        }
        let next = u32::from_le_bytes(buf[10..14].try_into().unwrap());
        let mut data = Box::new([0u8; PAGE_CAPACITY]);
        data.copy_from_slice(&buf[PAGE_HEADER..]);
        Ok(Page { ptype, count, len, next, data })
    }

    /// Append payload bytes; returns how many fit.
    pub fn push(&mut self, bytes: &[u8]) -> usize {
        let room = PAGE_CAPACITY - self.len as usize;
        let n = room.min(bytes.len());
        self.data[self.len as usize..self.len as usize + n].copy_from_slice(&bytes[..n]);
        self.len += n as u16;
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let mut p = Page::new(PageType::Heap);
        p.count = 3;
        p.next = 17;
        assert_eq!(p.push(b"hello page"), 10);
        let img = p.encode();
        let q = Page::decode(&img).unwrap();
        assert_eq!(q.ptype, PageType::Heap);
        assert_eq!(q.count, 3);
        assert_eq!(q.next, 17);
        assert_eq!(q.payload(), b"hello page");
    }

    #[test]
    fn push_spills_at_capacity() {
        let mut p = Page::new(PageType::Heap);
        let big = vec![0xAB; PAGE_CAPACITY + 100];
        assert_eq!(p.push(&big), PAGE_CAPACITY);
        assert_eq!(p.push(b"more"), 0);
        assert_eq!(p.len as usize, PAGE_CAPACITY);
    }

    #[test]
    fn bad_crc_is_corrupt() {
        let img = Page::new(PageType::Directory).encode();
        let mut bad = img;
        bad[100] ^= 0x01; // flip one payload bit
        assert!(matches!(Page::decode(&bad), Err(StorageError::Corrupt(_))));
    }

    #[test]
    fn zero_filled_page_is_corrupt() {
        // A torn multi-page write can leave a tail of zero pages; they must
        // not verify (crc32 of the zero body is non-zero, so stored 0 != it).
        let zeros = [0u8; PAGE_SIZE];
        assert!(matches!(Page::decode(&zeros), Err(StorageError::Corrupt(_))));
    }

    #[test]
    fn wrong_size_and_bad_type_are_corrupt() {
        assert!(Page::decode(&[0u8; 100]).is_err());
        let mut p = Page::new(PageType::Heap).encode();
        p[4] = 9; // bogus type tag
        let crc = crate::wal::crc32(&p[4..]);
        p[0..4].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(Page::decode(&p), Err(StorageError::Corrupt(_))));
    }
}
